"""Quickstart: optimize critical-path timing on one benchmark.

Runs the full pipeline on a synthetic ISPD'08-style instance:

1. generate the benchmark (deterministic per name);
2. global-route it and build the initial layer assignment;
3. release the 0.5% most critical nets and run the paper's SDP-based
   incremental layer assignment (CPLA);
4. print the before/after timing, via, and runtime summary.

Usage::

    python examples/quickstart.py [benchmark-name] [scale]
"""

import sys

import repro
from repro.analysis.report import Table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adaptec1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"preparing {name} (scale {scale}) ...")
    bench = repro.prepare(name, scale=scale)
    print(
        f"  {bench.num_nets} nets on a {bench.grid.nx_tiles}x"
        f"{bench.grid.ny_tiles}x{bench.stack.num_layers} grid, "
        f"{bench.grid.total_vias()} vias after initial assignment"
    )

    print("running CPLA (SDP relaxation, 0.5% released) ...")
    report = repro.run_method(bench, "sdp", critical_ratio=0.005)

    table = Table(["metric", "initial", "final", "change"])
    table.add_row(
        "Avg(Tcp)",
        report.initial_avg_tcp,
        report.final_avg_tcp,
        f"{100 * report.avg_improvement:+.1f}%",
    )
    table.add_row(
        "Max(Tcp)",
        report.initial_max_tcp,
        report.final_max_tcp,
        f"{100 * report.max_improvement:+.1f}%",
    )
    table.add_row(
        "via overflow", report.initial_via_overflow, report.final_via_overflow, ""
    )
    table.add_row("via count", report.initial_vias, report.final_vias, "")
    print()
    print(f"{len(report.critical_net_ids)} nets released; "
          f"{len(report.iterations)} optimizer iterations")
    print(table.render())
    print(f"\nruntime: {report.runtime:.2f}s")
    print(report.clock.report())


if __name__ == "__main__":
    main()
