"""Compare TILA (baseline), exact ILP, and the SDP relaxation head-to-head.

Reproduces the paper's central comparison on one benchmark: all three
methods start from the identical initial routing/assignment and release the
same critical nets; the script prints a Table-2-style row per method plus
the Fig.-1-style pin-delay histograms.

Usage::

    python examples/compare_baselines.py [benchmark-name] [ratio-%] [scale]
"""

import sys

import repro
from repro.analysis.histogram import delay_histogram, render_histogram
from repro.analysis.metrics import MethodMetrics, ratio_row
from repro.analysis.report import Table
from repro.core.engine import CPLAConfig


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adaptec1"
    ratio = float(sys.argv[2]) / 100.0 if len(sys.argv) > 2 else 0.005
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.5

    reports = {}
    for method in ("tila", "ilp", "sdp"):
        bench = repro.prepare(name, scale=scale)
        print(f"running {method} ...")
        reports[method] = repro.run_method(
            bench, method, critical_ratio=ratio,
            cpla_config=CPLAConfig() if method in ("ilp", "sdp") else None,
        )

    table = Table(["method", "Avg(Tcp)", "Max(Tcp)", "OV#", "via#", "CPU(s)"])
    rows = {m: MethodMetrics.from_report(r) for m, r in reports.items()}
    for method, m in rows.items():
        table.add_row(method, m.avg_tcp, m.max_tcp, m.via_overflow, m.vias, m.cpu_seconds)
    ratios = ratio_row(rows["sdp"], rows["tila"])
    table.add_row(
        "sdp/tila",
        ratios["avg_tcp"], ratios["max_tcp"],
        ratios["via_overflow"], ratios["vias"], ratios["cpu_seconds"],
    )
    print()
    print(table.render())

    # Fig. 1: pin-delay distribution of the released nets, per method.
    all_delays = [
        d for r in reports.values() for d in r.final_pin_delays
    ]
    lo, hi = min(all_delays), max(all_delays)
    for method, rep in reports.items():
        edges, counts = delay_histogram(rep.final_pin_delays, bins=12, lo=lo, hi=hi)
        print()
        print(render_histogram(edges, counts, title=f"{method}: sink-pin delays"))


if __name__ == "__main__":
    main()
