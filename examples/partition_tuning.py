"""Explore the self-adaptive partitioning (Figs. 3(b), 4 and 8).

Shows the data structures behind the paper's speed-up machinery:

1. the routing-density map motivating *self-adaptive* (rather than uniform
   K x K) partitioning — Fig. 3(b);
2. the quadtree leaves produced for the released critical segments at a few
   segment limits, with their size distribution — Fig. 4;
3. a mini Fig. 8: quality and runtime of the SDP method across partition
   granularities.

Usage::

    python examples/partition_tuning.py [benchmark-name] [scale]
"""

import sys
from collections import Counter

import repro
from repro.analysis.congestion import congestion_stats, hotspots
from repro.analysis.report import Table, density_map_text
from repro.core.engine import CPLAConfig
from repro.core.partition import self_adaptive_partition
from repro.timing.critical import CriticalitySelector
from repro.timing.elmore import ElmoreEngine


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "adaptec1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    bench = repro.prepare(name, scale=scale)

    print(f"routing density of {name} (Fig. 3(b) style):\n")
    print(density_map_text(bench.grid.density_map()))

    stats = congestion_stats(bench.grid)
    print(f"\ncongestion: {stats.summary()}")
    print("hotspots:")
    for edge, layer, util in hotspots(bench.grid, top=5):
        print(f"  {edge} layer {layer}: {100 * util:.0f}% utilized")

    engine = ElmoreEngine(bench.stack)
    critical, _ = CriticalitySelector(engine).select(bench.nets, 0.005)
    keyed = [
        ((net.id, seg.id), seg)
        for net in critical
        for seg in net.topology.segments
    ]
    print(f"\n{len(critical)} released nets, {len(keyed)} critical segments")

    print("\nquadtree leaves per segment limit (Fig. 4):")
    table = Table(["max segs", "leaves", "sizes (count x size)"])
    for limit in (5, 10, 20, 40):
        leaves = self_adaptive_partition(
            bench.grid.nx_tiles, bench.grid.ny_tiles, keyed, k=5, max_segments=limit
        )
        sizes = Counter(len(keys) for _, keys in leaves)
        dist = " ".join(f"{n}x{s}" for s, n in sorted(sizes.items()))
        table.add_row(limit, len(leaves), dist)
    print(table.render())

    print("\nmini Fig. 8: SDP quality/runtime vs partition size:")
    sweep = Table(["max segs", "Avg(Tcp)", "Max(Tcp)", "CPU(s)"])
    for limit in (5, 10, 40):
        fresh = repro.prepare(name, scale=scale)
        report = repro.run_method(
            fresh, "sdp",
            cpla_config=CPLAConfig(
                method="sdp", max_iterations=3, max_segments_per_partition=limit
            ),
        )
        sweep.add_row(limit, report.final_avg_tcp, report.final_max_tcp, report.runtime)
    print(sweep.render())


if __name__ == "__main__":
    main()
