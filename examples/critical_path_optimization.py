"""Domain scenario: incremental timing ECO on a routed design.

Models the flow the paper's introduction motivates: a design is already
globally routed and layer-assigned (sign-off in progress) when timing
analysis flags a set of nets whose worst paths violate budget.  Re-routing
is too disruptive at this stage — instead, CPLA incrementally re-assigns
only those nets' segments across the metal stack.

This example works from an ISPD'08 file on disk (pass a path) or generates
one first, so it also demonstrates the benchmark I/O round trip:

    python examples/critical_path_optimization.py [path.gr | benchmark-name]
"""

import os
import sys

import repro
from repro.analysis.report import Table
from repro.ispd.parser import parse_ispd08
from repro.ispd.suite import spec_for
from repro.ispd.synthetic import generate
from repro.ispd.writer import write_ispd08
from repro.timing.budget import BudgetPolicy
from repro.timing.elmore import ElmoreEngine


def load(arg: str):
    if os.path.exists(arg):
        print(f"parsing ISPD'08 file {arg} ...")
        return parse_ispd08(arg, name=os.path.basename(arg))
    print(f"generating {arg} and writing ISPD'08 file ...")
    bench = generate(spec_for(arg, scale=0.5))
    path = f"/tmp/{arg}.gr"
    write_ispd08(bench, path)
    print(f"  wrote {path}; re-parsing it (round trip) ...")
    return parse_ispd08(path, name=arg)


def main() -> None:
    arg = sys.argv[1] if len(sys.argv) > 1 else "bigblue1"
    bench = load(arg)

    print("routing and building the initial layer assignment ...")
    repro.prepare(bench)

    # Budget: the ECO targets the worst tail — nets whose worst path
    # exceeds 60% of the current worst path delay.
    engine = ElmoreEngine(bench.stack)
    tcps = sorted(
        engine.analyze(net).critical_delay
        for net in bench.nets
        if net.sinks
    )
    budget = 0.6 * tcps[-1]
    policy = BudgetPolicy(budget=budget, min_ratio=0.002, max_ratio=0.05)
    violators, tns = policy.summarize(engine, bench.nets)
    ratio = policy.release_ratio(engine, bench.nets)
    print(
        f"timing budget {budget:.0f}: {violators} nets violate "
        f"(TNS {tns:.0f}) -> releasing top {100 * ratio:.2f}% for the ECO"
    )

    report = repro.run_method(bench, "sdp", critical_ratio=ratio)

    table = Table(["metric", "before ECO", "after ECO"])
    table.add_row("Avg(Tcp) released", report.initial_avg_tcp, report.final_avg_tcp)
    table.add_row("Max(Tcp) released", report.initial_max_tcp, report.final_max_tcp)
    table.add_row("via overflow", report.initial_via_overflow, report.final_via_overflow)
    print()
    print(table.render())

    remaining = sum(
        1
        for net in bench.nets
        if net.id in report.critical_net_ids
        and engine.analyze(net).critical_delay > budget
    )
    print(
        f"\nbudget violations remaining among released nets: "
        f"{remaining} of {len(report.critical_net_ids)}"
    )
    print(f"wire overflow after ECO: {bench.grid.total_wire_overflow()} "
          "(the ECO never overfills edges)")


if __name__ == "__main__":
    main()
