"""Setuptools shim.

Kept so ``pip install -e .`` works on offline machines without the ``wheel``
package (legacy ``--no-use-pep517`` editable installs need a setup.py).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
