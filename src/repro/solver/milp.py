"""Typed mixed-integer linear programming front-end over HiGHS.

The paper solves formulation (4) with GUROBI; offline we target
:func:`scipy.optimize.milp` (the bundled HiGHS branch-and-bound).  This
module provides the small amount of modelling sugar the CPLA ILP needs:
named variables, linear expressions as coefficient dicts, and <=/==
constraints — nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

LinExpr = Dict[str, float]


@dataclass
class MilpResult:
    """Outcome of a solve: variable values keyed by name."""

    status: str
    objective: float
    values: Dict[str, float]

    @property
    def ok(self) -> bool:
        return self.status == "optimal"

    def value(self, name: str) -> float:
        return self.values[name]


@dataclass
class _Constraint:
    expr: LinExpr
    lower: float
    upper: float


class MilpModel:
    """A minimal MILP builder.

    >>> m = MilpModel()
    >>> x = m.add_binary("x")
    >>> y = m.add_binary("y")
    >>> m.add_le({"x": 1, "y": 1}, 1)
    >>> m.set_objective({"x": -2.0, "y": -1.0})
    >>> m.solve().values["x"]
    1.0
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._integrality: List[int] = []
        self._lower: List[float] = []
        self._upper: List[float] = []
        self._objective: LinExpr = {}
        self._constraints: List[_Constraint] = []

    # -- variables -----------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = np.inf,
        integer: bool = False,
    ) -> str:
        if name in self._index:
            raise ValueError(f"duplicate variable {name!r}")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._integrality.append(1 if integer else 0)
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        return name

    def add_binary(self, name: str) -> str:
        return self.add_variable(name, 0.0, 1.0, integer=True)

    def add_continuous(self, name: str, lower: float = 0.0, upper: float = np.inf) -> str:
        return self.add_variable(name, lower, upper, integer=False)

    @property
    def num_variables(self) -> int:
        return len(self._names)

    # -- constraints & objective -----------------------------------------------

    def set_objective(self, expr: LinExpr) -> None:
        """Minimize ``expr`` (a name -> coefficient mapping)."""
        unknown = set(expr) - set(self._index)
        if unknown:
            raise KeyError(f"objective references unknown variables {sorted(unknown)}")
        self._objective = dict(expr)

    def add_le(self, expr: LinExpr, bound: float) -> None:
        self._add(expr, -np.inf, float(bound))

    def add_ge(self, expr: LinExpr, bound: float) -> None:
        self._add(expr, float(bound), np.inf)

    def add_eq(self, expr: LinExpr, value: float) -> None:
        self._add(expr, float(value), float(value))

    def _add(self, expr: LinExpr, lower: float, upper: float) -> None:
        unknown = set(expr) - set(self._index)
        if unknown:
            raise KeyError(f"constraint references unknown variables {sorted(unknown)}")
        self._constraints.append(_Constraint(dict(expr), lower, upper))

    # -- solve --------------------------------------------------------------------

    def solve(self, time_limit: Optional[float] = None) -> MilpResult:
        """Run HiGHS; returns variable values (empty on infeasibility)."""
        n = self.num_variables
        if n == 0:
            return MilpResult(status="optimal", objective=0.0, values={})
        c = np.zeros(n)
        for name, coeff in self._objective.items():
            c[self._index[name]] = coeff

        constraints = []
        if self._constraints:
            rows, cols, data = [], [], []
            lo, hi = [], []
            for k, con in enumerate(self._constraints):
                for name, coeff in con.expr.items():
                    rows.append(k)
                    cols.append(self._index[name])
                    data.append(coeff)
                lo.append(con.lower)
                hi.append(con.upper)
            a = csr_matrix((data, (rows, cols)), shape=(len(self._constraints), n))
            constraints.append(LinearConstraint(a, lo, hi))

        options: Dict[str, float] = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        res = milp(
            c,
            integrality=np.asarray(self._integrality),
            bounds=Bounds(np.asarray(self._lower), np.asarray(self._upper)),
            constraints=constraints,
            options=options or None,
        )
        if res.x is None:
            return MilpResult(status=_status_name(res.status), objective=np.nan, values={})
        values = {name: float(res.x[i]) for i, name in enumerate(self._names)}
        return MilpResult(
            status=_status_name(res.status),
            objective=float(res.fun),
            values=values,
        )


def _status_name(code: int) -> str:
    return {
        0: "optimal",
        1: "iteration_limit",
        2: "infeasible",
        3: "unbounded",
        4: "numerical",
    }.get(code, f"status_{code}")
