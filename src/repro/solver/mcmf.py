"""Min-cost max-flow via successive shortest augmenting paths.

Classic Johnson-potential implementation: an initial Bellman–Ford pass
admits negative edge costs, after which every augmentation runs Dijkstra on
reduced costs.  Integral capacities give integral optimal flows — exactly
what the per-edge track-assignment subproblems of the TILA baseline need.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

_INF = float("inf")


@dataclass
class _Arc:
    to: int
    capacity: float
    cost: float
    rev: int  # index of the reverse arc in adj[to]
    is_forward: bool


class MinCostFlow:
    """A directed flow network with costs.

    >>> g = MinCostFlow(4)
    >>> _ = g.add_edge(0, 1, 2, 1.0)
    >>> _ = g.add_edge(0, 2, 1, 2.0)
    >>> _ = g.add_edge(1, 3, 1, 1.0)
    >>> _ = g.add_edge(2, 3, 2, 1.0)
    >>> _ = g.add_edge(1, 2, 1, 0.5)
    >>> g.min_cost_flow(0, 3)
    (3.0, 7.5)
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("network needs at least one node")
        self.num_nodes = num_nodes
        self._adj: List[List[_Arc]] = [[] for _ in range(num_nodes)]
        self._edges: List[Tuple[int, int]] = []  # (node, arc index) per edge id

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self.num_nodes:
            raise ValueError(f"node {v} out of range 0..{self.num_nodes - 1}")

    def add_edge(self, u: int, v: int, capacity: float, cost: float) -> int:
        """Add a directed edge; returns an edge id for :meth:`flow_on`."""
        self._check_node(u)
        self._check_node(v)
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        forward = _Arc(v, capacity, cost, len(self._adj[v]), True)
        backward = _Arc(u, 0.0, -cost, len(self._adj[u]), False)
        self._adj[u].append(forward)
        self._adj[v].append(backward)
        edge_id = len(self._edges)
        self._edges.append((u, len(self._adj[u]) - 1))
        return edge_id

    def flow_on(self, edge_id: int) -> float:
        """Flow currently routed through the given edge."""
        u, idx = self._edges[edge_id]
        arc = self._adj[u][idx]
        rev = self._adj[arc.to][arc.rev]
        return rev.capacity  # residual backward capacity == pushed flow

    # -- shortest-path machinery ------------------------------------------

    def _bellman_ford(self, s: int) -> List[float]:
        dist = [_INF] * self.num_nodes
        dist[s] = 0.0
        for _ in range(self.num_nodes - 1):
            changed = False
            for u in range(self.num_nodes):
                if dist[u] == _INF:
                    continue
                for arc in self._adj[u]:
                    if arc.capacity > 0 and dist[u] + arc.cost < dist[arc.to] - 1e-12:
                        dist[arc.to] = dist[u] + arc.cost
                        changed = True
            if not changed:
                break
        return dist

    def _dijkstra(
        self, s: int, potential: List[float]
    ) -> Tuple[List[float], List[Optional[Tuple[int, int]]]]:
        dist = [_INF] * self.num_nodes
        prev: List[Optional[Tuple[int, int]]] = [None] * self.num_nodes
        dist[s] = 0.0
        heap = [(0.0, s)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] + 1e-12:
                continue
            for idx, arc in enumerate(self._adj[u]):
                if arc.capacity <= 0 or potential[u] == _INF:
                    continue
                reduced = arc.cost + potential[u] - potential[arc.to]
                nd = d + reduced
                if nd < dist[arc.to] - 1e-12:
                    dist[arc.to] = nd
                    prev[arc.to] = (u, idx)
                    heapq.heappush(heap, (nd, arc.to))
        return dist, prev

    # -- main entry point ----------------------------------------------------

    def min_cost_flow(
        self, source: int, sink: int, max_flow: float = _INF
    ) -> Tuple[float, float]:
        """Push up to ``max_flow`` units at minimum total cost.

        Returns ``(flow, cost)``.  The flow is the maximum feasible up to the
        cap; edge flows are then available through :meth:`flow_on`.
        """
        self._check_node(source)
        self._check_node(sink)
        if source == sink:
            raise ValueError("source and sink must differ")
        potential = self._bellman_ford(source)
        total_flow = 0.0
        total_cost = 0.0
        while total_flow < max_flow:
            dist, prev = self._dijkstra(source, potential)
            if dist[sink] == _INF:
                break
            for v in range(self.num_nodes):
                if dist[v] < _INF and potential[v] < _INF:
                    potential[v] += dist[v]
            # Find bottleneck along the augmenting path.
            push = max_flow - total_flow
            v = sink
            while prev[v] is not None:
                u, idx = prev[v]
                push = min(push, self._adj[u][idx].capacity)
                v = u
            v = sink
            while prev[v] is not None:
                u, idx = prev[v]
                arc = self._adj[u][idx]
                arc.capacity -= push
                self._adj[arc.to][arc.rev].capacity += push
                total_cost += push * arc.cost
                v = u
            total_flow += push
        return total_flow, total_cost
