"""Symmetric-matrix utilities: svec/smat and the PSD projection.

``svec`` packs the upper triangle of a symmetric matrix into a vector with
off-diagonal entries scaled by sqrt(2), so Frobenius inner products become
plain dot products — the coordinate system the ADMM SDP solver's affine
projection works in.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

_SQRT2 = math.sqrt(2.0)


def svec_dim(n: int) -> int:
    """Length of the svec of an ``n x n`` symmetric matrix."""
    return n * (n + 1) // 2


def svec_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Row/column indices of the packed upper triangle, in svec order."""
    rows, cols = np.triu_indices(n)
    return rows, cols


def svec(matrix: np.ndarray) -> np.ndarray:
    """Pack a symmetric matrix into its svec (isometric) representation."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected square matrix, got shape {m.shape}")
    n = m.shape[0]
    rows, cols = svec_indices(n)
    out = m[rows, cols].copy()
    out[rows != cols] *= _SQRT2
    return out


def smat(vector: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`svec`."""
    v = np.asarray(vector, dtype=np.float64)
    if v.shape != (svec_dim(n),):
        raise ValueError(f"expected length {svec_dim(n)}, got {v.shape}")
    rows, cols = svec_indices(n)
    m = np.zeros((n, n), dtype=np.float64)
    vals = v.copy()
    off = rows != cols
    vals[off] /= _SQRT2
    m[rows, cols] = vals
    m[cols, rows] = vals
    return m


def entry_svec_index(n: int, i: int, j: int) -> int:
    """Position of entry (i, j) (i <= j after swap) within the svec."""
    if i > j:
        i, j = j, i
    if not 0 <= i <= j < n:
        raise IndexError(f"({i}, {j}) outside {n}x{n}")
    # Entries are laid out row-major over the upper triangle.
    return i * n - i * (i - 1) // 2 + (j - i)


def project_psd(matrix: np.ndarray) -> np.ndarray:
    """Euclidean (Frobenius) projection onto the PSD cone.

    Symmetrizes the input, then clips negative eigenvalues to zero.
    """
    m = np.asarray(matrix, dtype=np.float64)
    sym = (m + m.T) / 2.0
    vals, vecs = np.linalg.eigh(sym)
    if vals[0] >= 0:
        return sym
    clipped = np.clip(vals, 0.0, None)
    return (vecs * clipped) @ vecs.T


def is_psd(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True when the symmetric part of ``matrix`` is PSD up to ``tol``."""
    sym = (matrix + matrix.T) / 2.0
    vals = np.linalg.eigvalsh(sym)
    return bool(vals[0] >= -tol)
