"""Symmetric-matrix utilities: svec/smat and the PSD projection.

``svec`` packs the upper triangle of a symmetric matrix into a vector with
off-diagonal entries scaled by sqrt(2), so Frobenius inner products become
plain dot products — the coordinate system the ADMM SDP solver's affine
projection works in.

The free functions recompute their index bookkeeping per call, which is fine
for one-shot conversions but dominated the ADMM profile (tens of thousands
of projections per partition solve).  :class:`SymmetricOps` hoists the
indices, masks, scratch matrix, and LAPACK eigendecomposition workspace
sizing out of the loop — one instance per matrix order serves every
iteration of every solve at that order.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised through SymmetricOps
    from scipy.linalg import lapack as _lapack
except ImportError:  # pragma: no cover
    _lapack = None

_SQRT2 = math.sqrt(2.0)


def svec_dim(n: int) -> int:
    """Length of the svec of an ``n x n`` symmetric matrix."""
    return n * (n + 1) // 2


def svec_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Row/column indices of the packed upper triangle, in svec order."""
    rows, cols = np.triu_indices(n)
    return rows, cols


def svec(matrix: np.ndarray) -> np.ndarray:
    """Pack a symmetric matrix into its svec (isometric) representation."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected square matrix, got shape {m.shape}")
    n = m.shape[0]
    rows, cols = svec_indices(n)
    out = m[rows, cols].copy()
    out[rows != cols] *= _SQRT2
    return out


def smat(vector: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`svec`."""
    v = np.asarray(vector, dtype=np.float64)
    if v.shape != (svec_dim(n),):
        raise ValueError(f"expected length {svec_dim(n)}, got {v.shape}")
    rows, cols = svec_indices(n)
    m = np.zeros((n, n), dtype=np.float64)
    vals = v.copy()
    off = rows != cols
    vals[off] /= _SQRT2
    m[rows, cols] = vals
    m[cols, rows] = vals
    return m


def entry_svec_index(n: int, i: int, j: int) -> int:
    """Position of entry (i, j) (i <= j after swap) within the svec."""
    if i > j:
        i, j = j, i
    if not 0 <= i <= j < n:
        raise IndexError(f"({i}, {j}) outside {n}x{n}")
    # Entries are laid out row-major over the upper triangle.
    return i * n - i * (i - 1) // 2 + (j - i)


def project_psd(matrix: np.ndarray) -> np.ndarray:
    """Euclidean (Frobenius) projection onto the PSD cone.

    Symmetrizes the input, then clips negative eigenvalues to zero.
    """
    m = np.asarray(matrix, dtype=np.float64)
    sym = (m + m.T) / 2.0
    vals, vecs = np.linalg.eigh(sym)
    if vals[0] >= 0:
        return sym
    clipped = np.clip(vals, 0.0, None)
    return (vecs * clipped) @ vecs.T


def is_psd(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True when the symmetric part of ``matrix`` is PSD up to ``tol``."""
    sym = (matrix + matrix.T) / 2.0
    vals = np.linalg.eigvalsh(sym)
    return bool(vals[0] >= -tol)


class SymmetricOps:
    """Precomputed svec/smat/PSD-projection machinery for one matrix order.

    Holds the packed-triangle index arrays, the off-diagonal scaling masks,
    an ``n x n`` scratch matrix reused by every :meth:`smat`, and the
    LAPACK ``dsyevr`` workspace sizes queried once at construction — so the
    per-projection cost is the eigendecomposition itself, not the
    bookkeeping around it.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("matrix order must be >= 1")
        self.n = n
        self.rows, self.cols = np.triu_indices(n)
        self.off = self.rows != self.cols
        # Lifetime projection counters (two int increments next to an
        # eigendecomposition — structurally free).  The ADMM solver reads
        # deltas around a solve to report what fraction of PSD projections
        # were identities (iterate already in the cone), a cheap convergence
        # signal surfaced by repro.obs.convergence.
        self.projection_count = 0
        self.identity_count = 0
        self._scratch = np.zeros((n, n), dtype=np.float64)
        self._lwork: Optional[Tuple[int, int]] = None
        if _lapack is not None:
            try:
                lwork, liwork = _lapack.dsyevr_lwork(n)[:2]
                self._lwork = (int(lwork), int(liwork))
            except Exception:  # pragma: no cover - lapack probe failure
                self._lwork = None

    # -- conversions ------------------------------------------------------

    def svec(self, matrix: np.ndarray) -> np.ndarray:
        """:func:`svec` without re-deriving the triangle indices."""
        out = matrix[self.rows, self.cols]
        out[self.off] *= _SQRT2
        return out

    def smat(self, vector: np.ndarray) -> np.ndarray:
        """:func:`smat` into the shared scratch matrix.

        The returned array is reused by the next :meth:`smat` call — copy it
        to keep it beyond that.
        """
        vals = vector.copy()
        vals[self.off] /= _SQRT2
        m = self._scratch
        m[self.rows, self.cols] = vals
        m[self.cols, self.rows] = vals
        return m

    # -- eigendecomposition ------------------------------------------------

    def eigh(self, sym: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition of a symmetric matrix (destroys ``sym``).

        Uses ``dsyevr`` with the workspace sizes queried at construction
        (plain ``eigh`` re-queries LAPACK for them on every call); falls
        back to numpy when scipy's LAPACK bindings are unavailable.
        """
        if self._lwork is not None:
            lwork, liwork = self._lwork
            w, z, _, _, info = _lapack.dsyevr(
                sym, compute_v=1, lower=0, lwork=lwork, liwork=liwork,
                overwrite_a=1,
            )
            if info == 0:
                return w[: self.n], z
        return np.linalg.eigh(sym)

    def project_psd_svec(self, v: np.ndarray) -> np.ndarray:
        """PSD-cone projection acting directly in svec coordinates.

        Equivalent to ``svec(project_psd(smat(v, n)))``; when the matrix is
        already PSD the input vector is returned as-is (the projection is
        the identity), skipping the reconstruction entirely.
        """
        self.projection_count += 1
        vals, vecs = self.eigh(self.smat(v))
        if vals[0] >= 0.0:
            self.identity_count += 1
            return v
        np.clip(vals, 0.0, None, out=vals)
        return self.svec((vecs * vals) @ vecs.T)
