"""Optimization substrates built from scratch for this reproduction.

The paper uses GUROBI (ILP), CSDP (SDP), and min-cost-flow machinery (inside
the TILA baseline).  None of those are available offline, so:

- :mod:`repro.solver.milp` wraps :func:`scipy.optimize.milp` (HiGHS) behind
  a small typed model builder — the GUROBI stand-in;
- :mod:`repro.solver.sdp` + :mod:`repro.solver.psd` implement a consensus
  ADMM semidefinite-programming solver — the CSDP stand-in;
- :mod:`repro.solver.mcmf` is a successive-shortest-path min-cost max-flow
  — the flow engine used by the TILA baseline's per-edge assignment mode.
"""

from repro.solver.mcmf import MinCostFlow
from repro.solver.milp import MilpModel, MilpResult
from repro.solver.psd import is_psd, project_psd, smat, svec, svec_dim
from repro.solver.sdp import (
    ADMMSDPSolver,
    SDPProblem,
    SDPResult,
    SDPSettings,
)

__all__ = [
    "MinCostFlow",
    "MilpModel",
    "MilpResult",
    "is_psd",
    "project_psd",
    "smat",
    "svec",
    "svec_dim",
    "ADMMSDPSolver",
    "SDPProblem",
    "SDPResult",
    "SDPSettings",
]
