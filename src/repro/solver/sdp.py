"""A consensus-ADMM semidefinite-programming solver.

Solves the standard-form SDP the CPLA relaxation produces::

    minimize    <C, X>
    subject to  <A_k, X> = b_k      (k = 1..m)
                L <= X <= U         (elementwise, optional)
                X  is PSD

by operator splitting over three simple sets — the affine subspace, the box,
and the PSD cone — each of which has a cheap exact projection (sparse-free
dense linear solve, clipping, and one eigendecomposition respectively).
Consensus ADMM (Boyd et al. 2011, §7.2) alternates the projections until the
copies agree.

Partition problems in this repo produce matrices of order n ≈ 20–150 with a
few hundred constraints, where this solver converges in a few hundred
iterations — the CSDP replacement documented in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.linalg as sla

from repro.obs import convergence
from repro.solver.psd import SymmetricOps, entry_svec_index, smat, svec, svec_dim
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class SDPSettings:
    """ADMM hyper-parameters."""

    rho: float = 1.0
    max_iterations: int = 3000
    tolerance: float = 1e-5
    check_every: int = 10
    adaptive_rho: bool = True
    rho_scale_limit: float = 1e4

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.tolerance <= 0:
            raise ValueError("rho and tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


@dataclass
class SDPResult:
    """Solution report of one SDP solve."""

    X: np.ndarray
    objective: float
    iterations: int
    primal_residual: float
    dual_residual: float
    converged: bool
    max_constraint_violation: float


@dataclass
class SDPProblem:
    """Problem container with incremental constraint construction.

    ``add_entry_constraint`` is the workhorse: it expresses
    ``sum(coeff * X[i, j]) == value`` without materializing a dense A_k —
    CPLA's assignment/capacity rows touch only a handful of entries each.
    """

    n: int
    cost: np.ndarray = field(default=None)  # type: ignore[assignment]
    _rows: List[Dict[int, float]] = field(default_factory=list)
    _values: List[float] = field(default_factory=list)
    box_lower: Optional[np.ndarray] = None
    box_upper: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("matrix order must be >= 1")
        if self.cost is None:
            self.cost = np.zeros((self.n, self.n))
        self.cost = np.asarray(self.cost, dtype=np.float64)
        if self.cost.shape != (self.n, self.n):
            raise ValueError(f"cost must be {self.n}x{self.n}")
        if not np.allclose(self.cost, self.cost.T, atol=1e-12):
            raise ValueError("cost matrix must be symmetric")
        # Dense (A, b) cache — the affine projection and every violation()
        # call want the same assembled view; rebuilt only after new rows.
        self._dense: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- constraint construction -----------------------------------------

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    def add_constraint(self, matrix: np.ndarray, value: float) -> None:
        """Add ``<matrix, X> == value`` for a full symmetric ``matrix``."""
        row_vec = svec(matrix)
        row = {int(i): float(v) for i, v in enumerate(row_vec) if v != 0.0}
        self._rows.append(row)
        self._values.append(float(value))
        self._dense = None

    def add_entry_constraint(
        self, entries: Sequence[Tuple[int, int]], coefficients: Sequence[float], value: float
    ) -> None:
        """Add ``sum(c * X[i, j]) == value`` over the given entries.

        X is symmetric, so an off-diagonal entry (i, j) names the single
        value ``X[i, j] == X[j, i]``; the constraint contributes ``c`` times
        that value once (the sqrt(2) svec scaling is handled internally).
        """
        if len(entries) != len(coefficients):
            raise ValueError("entries and coefficients must align")
        row: Dict[int, float] = {}
        for (i, j), coeff in zip(entries, coefficients):
            idx = entry_svec_index(self.n, i, j)
            scale = 1.0 if i == j else 1.0 / np.sqrt(2.0)
            row[idx] = row.get(idx, 0.0) + float(coeff) * scale
        self._rows.append(row)
        self._values.append(float(value))
        self._dense = None

    def set_box(self, lower: float, upper: float) -> None:
        """Bound every matrix entry elementwise (CPLA uses [0, 1])."""
        self.box_lower = np.full((self.n, self.n), float(lower))
        self.box_upper = np.full((self.n, self.n), float(upper))

    def set_entry_bounds(self, i: int, j: int, lower: float, upper: float) -> None:
        if self.box_lower is None or self.box_upper is None:
            self.box_lower = np.full((self.n, self.n), -np.inf)
            self.box_upper = np.full((self.n, self.n), np.inf)
        self.box_lower[i, j] = self.box_lower[j, i] = float(lower)
        self.box_upper[i, j] = self.box_upper[j, i] = float(upper)

    # -- assembled views -----------------------------------------------------

    def constraint_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense (A, b) in svec coordinates (cached until rows change)."""
        if self._dense is None:
            d = svec_dim(self.n)
            A = np.zeros((len(self._rows), d))
            for k, row in enumerate(self._rows):
                for idx, coeff in row.items():
                    A[k, idx] = coeff
            self._dense = (A, np.asarray(self._values, dtype=np.float64))
        return self._dense

    def violation(self, X: np.ndarray) -> float:
        """Max absolute equality-constraint violation at ``X``."""
        if not self._rows:
            return 0.0
        A, b = self.constraint_matrix()
        return float(np.abs(A @ svec(X) - b).max()) if len(b) else 0.0


class ADMMSDPSolver:
    """Consensus-ADMM solver for :class:`SDPProblem` instances.

    The solver is stateless with respect to problems but keeps a
    :class:`~repro.solver.psd.SymmetricOps` workspace per matrix order —
    partition leaves of the same size (the common case across engine
    iterations) reuse the index arrays and eigendecomposition sizing
    instead of re-deriving them on every projection.
    """

    def __init__(self, settings: Optional[SDPSettings] = None) -> None:
        self.settings = settings or SDPSettings()
        self._ops: Dict[int, SymmetricOps] = {}

    def _ops_for(self, n: int) -> SymmetricOps:
        ops = self._ops.get(n)
        if ops is None:
            ops = self._ops[n] = SymmetricOps(n)
        return ops

    def solve(
        self, problem: SDPProblem, warm_start: Optional[np.ndarray] = None
    ) -> SDPResult:
        cfg = self.settings
        n = problem.n
        d = svec_dim(n)
        ops = self._ops_for(n)
        c = ops.svec(problem.cost)
        # Normalizing the cost keeps rho meaningful across instances.
        c_scale = float(np.linalg.norm(c))
        c_hat = c / c_scale if c_scale > 0 else c

        projections = [ops.project_psd_svec]
        if problem.num_constraints:
            projections.append(self._make_affine_projection(problem, d))
        box = self._make_box_projection(problem, n)
        if box is not None:
            projections.append(box)
        m_sets = len(projections)

        rho = cfg.rho
        x = svec(warm_start) if warm_start is not None else np.zeros(d)
        z = [x.copy() for _ in range(m_sets)]
        u = [np.zeros(d) for _ in range(m_sets)]

        # Convergence recorder: OFF means one flag check before the loop and
        # two dead branches per iteration; ON samples the residual checks and
        # times the projection block (repro.obs.convergence).
        recording = convergence.is_enabled()
        samples: List[Dict[str, float]] = []
        proj_seconds = 0.0
        solve_start = time.perf_counter() if recording else 0.0
        proj_base = ops.projection_count
        ident_base = ops.identity_count

        iterations = 0
        primal = dual = np.inf
        converged = False
        for iterations in range(1, cfg.max_iterations + 1):
            x_prev = x
            x = sum(zi - ui for zi, ui in zip(z, u)) / m_sets - c_hat / (m_sets * rho)
            if recording:
                proj_start = time.perf_counter()
            for i, proj in enumerate(projections):
                v = x + u[i]
                z[i] = proj(v)
                u[i] = v - z[i]
            if recording:
                proj_seconds += time.perf_counter() - proj_start

            if iterations % cfg.check_every == 0 or iterations == cfg.max_iterations:
                primal = max(float(np.linalg.norm(x - zi)) for zi in z)
                dual = float(rho * np.sqrt(m_sets) * np.linalg.norm(x - x_prev))
                if recording:
                    samples.append({
                        "iteration": iterations,
                        "objective": float(c @ x),
                        "primal": primal,
                        "dual": dual,
                        "rho": rho,
                    })
                scale = max(1.0, float(np.linalg.norm(x)))
                if primal <= cfg.tolerance * scale and dual <= cfg.tolerance * scale:
                    converged = True
                    break
                if cfg.adaptive_rho:
                    rho = self._adapt_rho(rho, primal, dual, u)

        # Report the PSD copy: it is exactly feasible for the cone.
        X = smat(z[0], n)
        objective = float(np.tensordot(problem.cost, X))
        result = SDPResult(
            X=X,
            objective=objective,
            iterations=iterations,
            primal_residual=primal,
            dual_residual=dual,
            converged=converged,
            max_constraint_violation=problem.violation(X),
        )
        if recording:
            num_proj = ops.projection_count - proj_base
            convergence.record_solve(convergence.SolveRecord(
                solver="sdp",
                matrix_order=n,
                num_constraints=problem.num_constraints,
                warm_start=warm_start is not None,
                iterations=iterations,
                converged=converged,
                objective=objective,
                primal_residual=primal,
                dual_residual=dual,
                solve_seconds=time.perf_counter() - solve_start,
                projection_seconds=proj_seconds,
                psd_identity_fraction=(
                    (ops.identity_count - ident_base) / num_proj
                    if num_proj else 0.0
                ),
                samples=samples,
            ))
        if not converged:
            log.debug(
                "SDP stopped at max_iterations=%d (primal=%.2e dual=%.2e)",
                iterations, primal, dual,
            )
        return result

    # -- projections ------------------------------------------------------

    @staticmethod
    def _make_affine_projection(problem: SDPProblem, d: int):
        A, b = problem.constraint_matrix()
        gram = A @ A.T
        # Ridge guards against duplicated (rank-deficient) constraint rows.
        gram[np.diag_indices_from(gram)] += 1e-10
        factor = sla.cho_factor(gram, check_finite=False)

        def proj(v: np.ndarray) -> np.ndarray:
            resid = A @ v - b
            return v - A.T @ sla.cho_solve(factor, resid, check_finite=False)

        return proj

    @staticmethod
    def _make_box_projection(problem: SDPProblem, n: int):
        if problem.box_lower is None or problem.box_upper is None:
            return None
        lower = svec(problem.box_lower)
        upper = svec(problem.box_upper)
        # svec scales off-diagonals by sqrt(2); infinities stay infinite.
        lower = np.nan_to_num(lower, neginf=-np.inf)
        upper = np.nan_to_num(upper, posinf=np.inf)

        def proj(v: np.ndarray) -> np.ndarray:
            return np.clip(v, lower, upper)

        return proj

    def _adapt_rho(self, rho: float, primal: float, dual: float, u: List[np.ndarray]) -> float:
        cfg = self.settings
        if primal > 10 * dual and rho < cfg.rho * cfg.rho_scale_limit:
            for ui in u:
                ui /= 2.0
            return rho * 2.0
        if dual > 10 * primal and rho > cfg.rho / cfg.rho_scale_limit:
            for ui in u:
                ui *= 2.0
            return rho / 2.0
        return rho
