"""A consensus-ADMM semidefinite-programming solver.

Solves the standard-form SDP the CPLA relaxation produces::

    minimize    <C, X>
    subject to  <A_k, X> = b_k      (k = 1..m)
                L <= X <= U         (elementwise, optional)
                X  is PSD

by operator splitting over three simple sets — the affine subspace, the box,
and the PSD cone — each of which has a cheap exact projection (sparse-free
dense linear solve, clipping, and one eigendecomposition respectively).
Consensus ADMM (Boyd et al. 2011, §7.2) alternates the projections until the
copies agree.

Partition problems in this repo produce matrices of order n ≈ 20–150 with a
few hundred constraints, where this solver converges in a few hundred
iterations — the CSDP replacement documented in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batchsolve.kernels import (
    AdmmOptions,
    MemberResult,
    MemberSetup,
    build_member,
    run_admm,
)
from repro.obs import convergence
from repro.solver.psd import SymmetricOps, entry_svec_index, smat, svec, svec_dim
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class SDPSettings:
    """ADMM hyper-parameters."""

    rho: float = 1.0
    max_iterations: int = 3000
    tolerance: float = 1e-5
    check_every: int = 10
    adaptive_rho: bool = True
    rho_scale_limit: float = 1e4

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.tolerance <= 0:
            raise ValueError("rho and tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


@dataclass
class SDPResult:
    """Solution report of one SDP solve."""

    X: np.ndarray
    objective: float
    iterations: int
    primal_residual: float
    dual_residual: float
    converged: bool
    max_constraint_violation: float


@dataclass
class SDPProblem:
    """Problem container with incremental constraint construction.

    ``add_entry_constraint`` is the workhorse: it expresses
    ``sum(coeff * X[i, j]) == value`` without materializing a dense A_k —
    CPLA's assignment/capacity rows touch only a handful of entries each.
    """

    n: int
    cost: np.ndarray = field(default=None)  # type: ignore[assignment]
    _rows: List[Dict[int, float]] = field(default_factory=list)
    _values: List[float] = field(default_factory=list)
    box_lower: Optional[np.ndarray] = None
    box_upper: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("matrix order must be >= 1")
        if self.cost is None:
            self.cost = np.zeros((self.n, self.n))
        self.cost = np.asarray(self.cost, dtype=np.float64)
        if self.cost.shape != (self.n, self.n):
            raise ValueError(f"cost must be {self.n}x{self.n}")
        if not np.allclose(self.cost, self.cost.T, atol=1e-12):
            raise ValueError("cost matrix must be symmetric")
        # Dense (A, b) cache — the affine projection and every violation()
        # call want the same assembled view; rebuilt only after new rows.
        self._dense: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- constraint construction -----------------------------------------

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    def add_constraint(self, matrix: np.ndarray, value: float) -> None:
        """Add ``<matrix, X> == value`` for a full symmetric ``matrix``."""
        row_vec = svec(matrix)
        row = {int(i): float(v) for i, v in enumerate(row_vec) if v != 0.0}
        self._rows.append(row)
        self._values.append(float(value))
        self._dense = None

    def add_entry_constraint(
        self, entries: Sequence[Tuple[int, int]], coefficients: Sequence[float], value: float
    ) -> None:
        """Add ``sum(c * X[i, j]) == value`` over the given entries.

        X is symmetric, so an off-diagonal entry (i, j) names the single
        value ``X[i, j] == X[j, i]``; the constraint contributes ``c`` times
        that value once (the sqrt(2) svec scaling is handled internally).
        """
        if len(entries) != len(coefficients):
            raise ValueError("entries and coefficients must align")
        row: Dict[int, float] = {}
        for (i, j), coeff in zip(entries, coefficients):
            idx = entry_svec_index(self.n, i, j)
            scale = 1.0 if i == j else 1.0 / np.sqrt(2.0)
            row[idx] = row.get(idx, 0.0) + float(coeff) * scale
        self._rows.append(row)
        self._values.append(float(value))
        self._dense = None

    def set_box(self, lower: float, upper: float) -> None:
        """Bound every matrix entry elementwise (CPLA uses [0, 1])."""
        self.box_lower = np.full((self.n, self.n), float(lower))
        self.box_upper = np.full((self.n, self.n), float(upper))

    def set_entry_bounds(self, i: int, j: int, lower: float, upper: float) -> None:
        if self.box_lower is None or self.box_upper is None:
            self.box_lower = np.full((self.n, self.n), -np.inf)
            self.box_upper = np.full((self.n, self.n), np.inf)
        self.box_lower[i, j] = self.box_lower[j, i] = float(lower)
        self.box_upper[i, j] = self.box_upper[j, i] = float(upper)

    # -- assembled views -----------------------------------------------------

    def constraint_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense (A, b) in svec coordinates (cached until rows change)."""
        if self._dense is None:
            d = svec_dim(self.n)
            A = np.zeros((len(self._rows), d))
            for k, row in enumerate(self._rows):
                for idx, coeff in row.items():
                    A[k, idx] = coeff
            self._dense = (A, np.asarray(self._values, dtype=np.float64))
        return self._dense

    def violation(self, X: np.ndarray) -> float:
        """Max absolute equality-constraint violation at ``X``."""
        if not self._rows:
            return 0.0
        A, b = self.constraint_matrix()
        return float(np.abs(A @ svec(X) - b).max()) if len(b) else 0.0


class ADMMSDPSolver:
    """Consensus-ADMM solver for :class:`SDPProblem` instances.

    The numerical loop lives in :func:`repro.batchsolve.kernels.run_admm`;
    this class is its batch-size-1 front end.  That sharing is the batched
    backend's correctness story: ``--exec batch`` stacks the very same
    members and runs the very same kernel, so scalar and batched solves
    are bit-identical by construction.

    The solver is stateless with respect to problems but keeps a
    :class:`~repro.solver.psd.SymmetricOps` workspace per matrix order —
    partition leaves of the same size (the common case across engine
    iterations) reuse the index arrays, and the lifetime PSD-projection
    counters aggregate across backends.
    """

    def __init__(self, settings: Optional[SDPSettings] = None) -> None:
        self.settings = settings or SDPSettings()
        self._ops: Dict[int, SymmetricOps] = {}

    def _ops_for(self, n: int) -> SymmetricOps:
        ops = self._ops.get(n)
        if ops is None:
            ops = self._ops[n] = SymmetricOps(n)
        return ops

    def admm_options(self) -> AdmmOptions:
        """The kernel-facing view of :class:`SDPSettings`."""
        cfg = self.settings
        return AdmmOptions(
            rho=cfg.rho,
            max_iterations=cfg.max_iterations,
            tolerance=cfg.tolerance,
            check_every=cfg.check_every,
            adaptive_rho=cfg.adaptive_rho,
            rho_scale_limit=cfg.rho_scale_limit,
        )

    def prepare_member(
        self, problem: SDPProblem, warm_start: Optional[np.ndarray] = None
    ) -> MemberSetup:
        """Build the kernel member for one problem (shared with ``batch``).

        Normalizing the cost keeps rho meaningful across instances; the
        box bounds get the svec sqrt(2) off-diagonal scaling with
        infinities kept infinite.
        """
        n = problem.n
        ops = self._ops_for(n)
        c = ops.svec(problem.cost)
        A = b = None
        if problem.num_constraints:
            A, b = problem.constraint_matrix()
        lower = upper = None
        if problem.box_lower is not None and problem.box_upper is not None:
            lower = np.nan_to_num(svec(problem.box_lower), neginf=-np.inf)
            upper = np.nan_to_num(svec(problem.box_upper), posinf=np.inf)
        x0 = svec(warm_start) if warm_start is not None else np.zeros(svec_dim(n))
        return build_member(
            n, c, x0, A=A, b=b, lower=lower, upper=upper,
            warm=warm_start is not None,
        )

    def finish(
        self, problem: SDPProblem, member_result: MemberResult
    ) -> SDPResult:
        """Turn one kernel member result into an :class:`SDPResult`.

        Reports the PSD consensus copy (exactly feasible for the cone) and
        folds the member's projection counters into the per-order
        :class:`~repro.solver.psd.SymmetricOps` lifetime counts.
        """
        n = problem.n
        ops = self._ops_for(n)
        ops.projection_count += member_result.projections
        ops.identity_count += member_result.identities
        X = smat(member_result.z_psd, n)
        objective = float(np.tensordot(problem.cost, X))
        return SDPResult(
            X=X,
            objective=objective,
            iterations=member_result.iterations,
            primal_residual=member_result.primal,
            dual_residual=member_result.dual,
            converged=member_result.converged,
            max_constraint_violation=problem.violation(X),
        )

    @staticmethod
    def make_solve_record(
        problem: SDPProblem,
        member: MemberSetup,
        member_result: MemberResult,
        result: SDPResult,
        solve_seconds: float,
        projection_seconds: float,
    ) -> convergence.SolveRecord:
        """The convergence record of one member solve (any backend)."""
        return convergence.SolveRecord(
            solver="sdp",
            matrix_order=problem.n,
            num_constraints=problem.num_constraints,
            warm_start=member.warm,
            iterations=result.iterations,
            converged=result.converged,
            objective=result.objective,
            primal_residual=result.primal_residual,
            dual_residual=result.dual_residual,
            solve_seconds=solve_seconds,
            projection_seconds=projection_seconds,
            psd_identity_fraction=(
                member_result.identities / member_result.projections
                if member_result.projections else 0.0
            ),
            samples=member_result.samples,
        )

    def solve(
        self, problem: SDPProblem, warm_start: Optional[np.ndarray] = None
    ) -> SDPResult:
        # Convergence recorder: OFF means one flag check before the solve;
        # ON samples the residual checks and times the projection block
        # (repro.obs.convergence).
        recording = convergence.is_enabled()
        solve_start = time.perf_counter() if recording else 0.0
        member = self.prepare_member(problem, warm_start)
        member_results, stats = run_admm(
            [member], self.admm_options(), recording=recording
        )
        member_result = member_results[0]
        result = self.finish(problem, member_result)
        if recording:
            convergence.record_solve(self.make_solve_record(
                problem, member, member_result, result,
                solve_seconds=time.perf_counter() - solve_start,
                projection_seconds=stats.projection_seconds,
            ))
        if not result.converged:
            log.debug(
                "SDP stopped at max_iterations=%d (primal=%.2e dual=%.2e)",
                result.iterations, result.primal_residual, result.dual_residual,
            )
        return result
