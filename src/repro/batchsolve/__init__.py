"""Batched tensor SDP backend (``--exec batch``).

Vectorized consensus-ADMM over shape-bucketed partition stacks: leaf SDPs
of the same shape are stacked into contiguous tensors and iterated in
lockstep with batched eigendecompositions, batched affine projections, and
batched box clipping — one Python-level iteration loop per bucket instead
of one per problem.

The scalar :class:`~repro.solver.sdp.ADMMSDPSolver` routes through the
same kernels at batch size 1, so the batched backend produces bit-identical
iterates (and therefore bit-identical assignment digests) by construction
— there is no separate "fast path" numeric code to drift.
"""

from repro.batchsolve.buckets import bucket_members
from repro.batchsolve.kernels import (
    AdmmOptions,
    BatchStats,
    MemberResult,
    MemberSetup,
    build_member,
    run_admm,
)


def __getattr__(name):
    # BatchLeafSolver pulls in the partition solver, which imports the
    # scalar ADMM solver, which imports the kernels above — loading it
    # eagerly here would close an import cycle, so it resolves lazily.
    if name == "BatchLeafSolver":
        from repro.batchsolve.solver import BatchLeafSolver

        return BatchLeafSolver
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdmmOptions",
    "BatchLeafSolver",
    "BatchStats",
    "MemberResult",
    "MemberSetup",
    "bucket_members",
    "build_member",
    "run_admm",
]
