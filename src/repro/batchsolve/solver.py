"""The ``--exec batch`` leaf solver: bucket, stack, and solve in lockstep.

:class:`BatchLeafSolver` replaces the per-leaf Python solve loop of one
engine iteration with a handful of kernel calls: every partition problem
is lifted to its SDP and prepared into a kernel member exactly as the
scalar path would (same construction code, same warm-start lookup), the
members are grouped by shape (:mod:`repro.batchsolve.buckets`), and each
bucket runs :func:`repro.batchsolve.kernels.run_admm` once.

Contract parity with the other backends:

- warm starts read and advance the *same* parent-owned store on the
  :class:`~repro.core.sdp_relaxation.SdpPartitionSolver`, so a batch run
  interleaves transparently with pool/dist/sequential runs of the same
  engine;
- every member's result is finished through the scalar solver's
  :meth:`~repro.solver.sdp.ADMMSDPSolver.finish`, so the extracted layer
  weights — and therefore the sha256 assignment digests — are
  bit-identical to a pool or ``--exec seq`` solve of the same snapshot;
- per-solve metrics and convergence records are emitted per member, with
  bucket-level :class:`~repro.obs.convergence.BucketRecord` entries and
  ``batch.*`` counters layered on top.

Per-member wall clock inside a bucket is not separable (the bucket
iterates as one), so each member's reported ``solve_seconds`` is the
bucket's wall clock apportioned by the member's share of iterations —
documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batchsolve.buckets import DEFAULT_MAX_MEMBERS, bucket_members
from repro.batchsolve.kernels import MemberSetup, run_admm
from repro.core.problem import PartitionProblem
from repro.core.sdp_relaxation import SdpPartitionSolver, SdpSolveInfo
from repro.obs import convergence, metrics, tracer
from repro.utils import get_logger

log = get_logger(__name__)


class _Pending:
    """One non-empty problem prepared for its bucket."""

    __slots__ = ("problem", "sdp", "offsets", "mode", "signature", "member")

    def __init__(self, problem, sdp, offsets, mode, signature, member):
        self.problem = problem
        self.sdp = sdp
        self.offsets = offsets
        self.mode = mode
        self.signature = signature
        self.member = member


class BatchLeafSolver:
    """Vectorized in-process leaf solver (engine backend ``batch``).

    Satisfies the close() lifecycle of the engine's pool slot and exposes
    :meth:`stats_snapshot` for the run report's scheduler channel, like
    the dist fabric does.
    """

    def __init__(
        self,
        partition_solver: SdpPartitionSolver,
        max_bucket_members: int = DEFAULT_MAX_MEMBERS,
    ) -> None:
        if not isinstance(partition_solver, SdpPartitionSolver):
            raise ValueError(
                "the batch backend requires the SDP partition solver "
                "(method='sdp'); the ILP solver has no batched kernels"
            )
        self._solver = partition_solver
        self.max_bucket_members = max_bucket_members
        # Potential member-iterations (members x lockstep span per bucket);
        # the denominator of the cumulative frozen fraction.
        self._potential_iterations = 0
        self.stats: Dict[str, Any] = {
            "backend": "batch",
            "bucket_solves": 0,       # kernel calls (chunked buckets)
            "members": 0,             # problems solved through the kernels
            "batched_iterations": 0,  # lockstep iterations across buckets
            "member_iterations": 0,   # sum of per-member iterations
            "max_bucket": 0,          # largest bucket stacked so far
            "frozen_fraction": 0.0,   # member-iterations saved by freezing
        }

    # -- lifecycle (pool-slot contract) -----------------------------------

    def close(self) -> None:
        """Nothing to release — the backend is in-process."""

    def stats_snapshot(self) -> Dict[str, Any]:
        """Scheduler-channel counters for the run ledger (JSON-able)."""
        return dict(self.stats)

    # -- solving -----------------------------------------------------------

    def solve_many(
        self, problems: Sequence[PartitionProblem], leaf_mask=None
    ) -> List[Tuple[List[np.ndarray], SdpSolveInfo, float]]:
        """Solve every problem; returns (x_values, info, seconds) per input.

        Results are in input order.  ``seconds`` is the member's
        iteration-weighted share of its bucket's wall clock (the
        engine feeds it to the same leaf-latency histogram the other
        backends fill).  ``leaf_mask`` (indices into ``problems``)
        restricts the solve to a sparse leaf subset: masked-out positions
        stay ``None`` in the output (the ECO path leaves clean leaves as
        unextracted placeholders).
        """
        solver = self._solver
        admm = solver.admm
        masked = set(leaf_mask) if leaf_mask is not None else None
        outputs: List[Optional[Tuple[List[np.ndarray], SdpSolveInfo, float]]]
        outputs = [None] * len(problems)
        pending: List[Tuple[int, _Pending]] = []
        for index, problem in enumerate(problems):
            if masked is not None and index not in masked:
                continue
            if problem.num_vars == 0:
                outputs[index] = ([], SdpSolveInfo(0, 0, 0, True, 0.0, "empty"), 0.0)
                continue
            sdp, offsets, mode = solver.build_sdp(problem)
            signature = solver.warm_key(problem)
            warm = solver.lookup_warm(signature, sdp.n)
            member = admm.prepare_member(sdp, warm)
            pending.append(
                (index, _Pending(problem, sdp, offsets, mode, signature, member))
            )

        if not pending:
            return outputs  # type: ignore[return-value]

        chunks = bucket_members(
            [(index, item.member) for index, item in pending],
            self.max_bucket_members,
        )
        by_index = dict(pending)
        options = admm.admm_options()
        recording = convergence.is_enabled()
        metrics.inc("batch.buckets", len(chunks))
        for chunk in chunks:
            indices = [index for index, _ in chunk]
            members: List[MemberSetup] = [member for _, member in chunk]
            order = members[0].n
            # Constraint counts vary within a bucket (the kernel subgroups
            # its affine projection); the records carry the largest.
            max_constraints = max(m.num_constraints for m in members)
            with tracer.span(
                "solver.batch",
                order=order,
                constraints=max_constraints,
                members=len(members),
            ):
                results, stats = run_admm(members, options, recording=recording)
            self._note_bucket(order, max_constraints, stats, recording)
            # Apportion the bucket's wall clock by iteration share; exact
            # per-member timing does not exist inside a lockstep bucket.
            total_iters = max(stats.member_iterations, 1)
            for index, member_result in zip(indices, results):
                item = by_index[index]
                share = member_result.iterations / total_iters
                outputs[index] = self._finish(
                    item,
                    member_result,
                    solve_seconds=stats.solve_seconds * share,
                    projection_seconds=stats.projection_seconds * share,
                    recording=recording,
                )
        return outputs  # type: ignore[return-value]

    def _finish(
        self, item: _Pending, member_result, solve_seconds: float,
        projection_seconds: float, recording: bool,
    ) -> Tuple[List[np.ndarray], SdpSolveInfo, float]:
        solver = self._solver
        result = solver.admm.finish(item.sdp, member_result)
        solver.store_warm(item.signature, result.X, item.member.warm)
        x_values = solver._extract(item.problem, item.offsets, result.X)
        info = SdpSolveInfo(
            matrix_order=item.sdp.n,
            num_constraints=item.sdp.num_constraints,
            iterations=result.iterations,
            converged=result.converged,
            objective=result.objective,
            mode=item.mode,
            warm_start=item.member.warm,
        )
        solver.note_solve(result, item.sdp.n)
        if recording:
            convergence.record_solve(solver.admm.make_solve_record(
                item.sdp, item.member, member_result, result,
                solve_seconds=solve_seconds,
                projection_seconds=projection_seconds,
            ))
        return x_values, info, solve_seconds

    def _note_bucket(self, order, max_constraints, stats, recording: bool) -> None:
        s = self.stats
        s["bucket_solves"] += 1
        s["members"] += stats.members
        s["batched_iterations"] += stats.iterations
        s["member_iterations"] += stats.member_iterations
        s["max_bucket"] = max(s["max_bucket"], stats.members)
        self._potential_iterations += stats.members * stats.iterations
        s["frozen_fraction"] = round(self._frozen_fraction(), 4)
        metrics.inc("batch.iters", stats.iterations)
        metrics.inc("batch.member_iters", stats.member_iterations)
        metrics.set_gauge("batch.frozen_fraction", s["frozen_fraction"])
        metrics.observe(
            "batch.bucket_members", stats.members,
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        if recording:
            convergence.record_bucket(convergence.BucketRecord(
                matrix_order=order,
                num_constraints=max_constraints,
                members=stats.members,
                iterations=stats.iterations,
                member_iterations=stats.member_iterations,
                converged=stats.converged,
                frozen_fraction=round(stats.frozen_fraction, 4),
                solve_seconds=round(stats.solve_seconds, 6),
            ))

    def _frozen_fraction(self) -> float:
        """Cumulative fraction of member-iterations saved by freezing."""
        potential = self._potential_iterations
        return (
            1.0 - self.stats["member_iterations"] / potential
            if potential else 0.0
        )
