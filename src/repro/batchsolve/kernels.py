"""Shared batched consensus-ADMM kernels.

One kernel serves every execution backend: the scalar
:class:`~repro.solver.sdp.ADMMSDPSolver` calls :func:`run_admm` with a
single member, the batched backend with a whole shape bucket.  All float
operations therefore run through the same code for every backend, and the
batched path is bit-identical to the scalar path as long as the stacked
primitives are slice-independent — which numpy's gufuncs (``linalg.eigh``
over ``(B, n, n)``, batched ``matmul``, ``einsum`` row reductions, boolean
row gathers) are.

State layout per bucket of ``B`` members over svec dimension ``d``:

- ``X``: the consensus iterate, ``(B, d)``;
- ``Z_st``/``U_st``: the copy/dual pairs of every projection set (PSD
  cone, affine subspace, box) stacked into single ``(m_sets, B, d)``
  tensors, so the elementwise half of each iteration (consensus
  accumulation, ``V = X + U``, ``U = V - Z``, residual differences) is
  one ufunc dispatch over all sets instead of one per set.  The fused
  reductions are left folds (``np.add.reduce`` / ``np.maximum.reduce``
  over the sets axis), bitwise equal to the sequential per-set loop;
- constraint stacks ``A (B, m, d)``, ``inv_gram (B, m, m)``, ``b (B, m, 1)``
  precomputed per member by :func:`build_member`.

Early-converged members are *compacted out*: their rows are gathered away
and their final state frozen, so the remaining members keep iterating on a
smaller stack.  Compaction (a boolean row gather) does not perturb the
surviving members' floats, and every member sees exactly the iterate
sequence it would have seen alone — the freeze is observational, not
numerical.

The affine projection uses a per-member precomputed ``inv(gram)`` (built
with the 2-D LAPACK inverse in :func:`build_member`, before any stacking)
so the in-loop work is a plain batched matmul; likewise residual norms are
``einsum`` row reductions rather than BLAS ``nrm2``, because the former
are bitwise independent of the batch size.

This module deliberately imports nothing from :mod:`repro.solver` — the
dependency points the other way (the scalar solver builds members and
calls the kernel), keeping the import graph acyclic.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batchsolve.xp import get_namespace

# Hot-loop fast paths (numpy only): the public ``np.linalg.eigh`` and
# ``np.clip`` spend most of their per-call time in Python-level argument
# handling, which dominates at the small matrix orders CPLA produces.
# Both resolve to the very gufunc/ufunc the public wrappers dispatch to,
# so results are bitwise unchanged; on import failure (older/newer numpy
# layouts) the kernel falls back to the public API.
try:  # pragma: no cover - layout varies across numpy versions
    from numpy.linalg._umath_linalg import eigh_lo as _EIGH_LO
except Exception:  # pragma: no cover
    _EIGH_LO = None
try:  # pragma: no cover
    from numpy._core.umath import clip as _CLIP  # numpy >= 2
except Exception:  # pragma: no cover
    try:
        from numpy.core.umath import clip as _CLIP  # numpy 1.x
    except Exception:
        _CLIP = None

_SQRT2 = math.sqrt(2.0)

# Packed-triangle indices per matrix order:
# (rows, cols, off-diagonal mask, svec scale).  The scale vector carries
# 1.0 on diagonal entries and sqrt(2) off-diagonal, so the svec <-> matrix
# conversions are whole-vector divides/multiplies instead of masked
# fancy-indexing — bitwise identical (x / 1.0 == x * 1.0 == x) and
# measurably cheaper in the per-iteration hot loop.
_INDEX_CACHE: Dict[
    int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
] = {}


def triu_cache(
    n: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Upper-triangle index arrays for order ``n`` (cached per order)."""
    cached = _INDEX_CACHE.get(n)
    if cached is None:
        rows, cols = np.triu_indices(n)
        off = rows != cols
        scale = np.where(off, _SQRT2, 1.0)
        cached = _INDEX_CACHE[n] = (rows, cols, off, scale)
    return cached


@dataclass
class AdmmOptions:
    """Iteration controls of one kernel run (mirrors ``SDPSettings``)."""

    rho: float = 1.0
    max_iterations: int = 3000
    tolerance: float = 1e-5
    check_every: int = 10
    adaptive_rho: bool = True
    rho_scale_limit: float = 1e4


@dataclass
class MemberSetup:
    """One SDP instance prepared for the stacked kernel.

    ``bucket_key`` groups members whose stacked tensors are
    shape-compatible: same matrix order and same projection cascade.
    Constraint *counts* may differ within a bucket — the expensive PSD
    projection only cares about the matrix order, and the affine
    projection subgroups rows by constraint count internally — which is
    what keeps real workloads (many leaves of equal order but varied
    constraint counts) from fragmenting into singleton buckets.  Members
    of one :func:`run_admm` call must share the key.
    """

    n: int
    d: int
    c: np.ndarray                           # svec cost (objective samples)
    c_hat: np.ndarray                       # cost normalized by its norm
    x0: np.ndarray                          # start iterate (svec)
    A: Optional[np.ndarray] = None          # (m, d) constraint rows
    inv_gram: Optional[np.ndarray] = None   # (m, m) inverse of ridged A A^T
    b: Optional[np.ndarray] = None          # (m,) right-hand sides
    lower: Optional[np.ndarray] = None      # (d,) box bounds in svec coords
    upper: Optional[np.ndarray] = None
    warm: bool = False

    @property
    def num_constraints(self) -> int:
        return 0 if self.b is None else int(self.b.shape[0])

    @property
    def bucket_key(self) -> Tuple[int, bool, bool]:
        return (self.n, self.b is not None, self.lower is not None)


@dataclass
class MemberResult:
    """Final state of one member after its bucket's kernel run."""

    z_psd: np.ndarray       # the PSD consensus copy (exactly cone-feasible)
    iterations: int
    primal: float
    dual: float
    converged: bool
    projections: int        # PSD projections attempted for this member
    identities: int         # ... of which were identities (already PSD)
    samples: List[Dict[str, float]] = field(default_factory=list)


@dataclass
class BatchStats:
    """Bucket-level accounting of one :func:`run_admm` call."""

    members: int
    iterations: int          # lockstep iterations the bucket ran
    member_iterations: int   # sum of per-member iterations at freeze
    converged: int
    projection_seconds: float
    solve_seconds: float

    @property
    def frozen_fraction(self) -> float:
        """Fraction of member-iterations saved by freezing early convergers."""
        potential = self.members * self.iterations
        if potential <= 0:
            return 0.0
        return 1.0 - self.member_iterations / potential


def build_member(
    n: int,
    cost_svec: np.ndarray,
    x0: np.ndarray,
    A: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
    warm: bool = False,
) -> MemberSetup:
    """Precompute the per-member state shared by scalar and batched runs.

    All member-local numerics (cost normalization, the ridged Gram inverse
    of the affine projection) happen here, on 2-D arrays, *before* any
    stacking — so they cannot depend on which bucket the member later
    lands in.
    """
    c = np.ascontiguousarray(cost_svec, dtype=np.float64)
    c_scale = float(np.linalg.norm(c))
    c_hat = c / c_scale if c_scale > 0 else c
    member = MemberSetup(
        n=n,
        d=int(c.shape[0]),
        c=c,
        c_hat=c_hat,
        x0=np.ascontiguousarray(x0, dtype=np.float64),
        warm=warm,
    )
    if A is not None and b is not None and len(b):
        A = np.ascontiguousarray(A, dtype=np.float64)
        gram = A @ A.T
        # Ridge guards against duplicated (rank-deficient) constraint rows.
        gram[np.diag_indices_from(gram)] += 1e-10
        member.A = A
        member.inv_gram = np.linalg.inv(gram)
        member.b = np.asarray(b, dtype=np.float64)
    if lower is not None and upper is not None:
        member.lower = np.asarray(lower, dtype=np.float64)
        member.upper = np.asarray(upper, dtype=np.float64)
    return member


def run_admm(
    members: Sequence[MemberSetup],
    options: Optional[AdmmOptions] = None,
    recording: bool = False,
) -> Tuple[List[MemberResult], BatchStats]:
    """Run consensus ADMM over one shape bucket until every member exits.

    Residuals are checked every ``check_every`` iterations (and at the
    iteration cap); converged members freeze — their rows are compacted out
    and their final state recorded — while the rest keep iterating.  With
    ``recording`` the per-member residual/objective samples are collected
    at each check, mirroring the scalar solver's convergence curves.
    """
    if not members:
        return [], BatchStats(0, 0, 0, 0, 0.0, 0.0)
    cfg = options or AdmmOptions()
    xp = get_namespace()
    first = members[0]
    for member in members[1:]:
        if member.bucket_key != first.bucket_key:
            raise ValueError(
                f"bucket members must share a shape key: "
                f"{member.bucket_key} != {first.bucket_key}"
            )
    n, d = first.n, first.d
    batch = len(members)
    has_affine = first.b is not None
    has_box = first.lower is not None
    m_sets = 1 + int(has_affine) + int(has_box)
    rows, cols, off, svec_scale = triu_cache(n)

    solve_start = time.perf_counter()
    X = xp.stack([m.x0 for m in members])
    C_hat = xp.stack([m.c_hat for m in members])
    C = xp.stack([m.c for m in members]) if recording else None
    rho = xp.full(batch, cfg.rho, dtype=np.float64)
    # All projection-set state lives in two (m_sets, B, d) tensors so the
    # elementwise updates below are one ufunc call across every set.
    Z_st = xp.stack([X] * m_sets)
    U_st = xp.zeros((m_sets, batch, d), dtype=np.float64)
    if has_affine:
        # Constraint counts vary within a bucket; the affine projection
        # runs per constraint-count subgroup: (row indices into the
        # current stack, stacked A, A^T, inv(gram), b).  Each subgroup's
        # batched matmuls are bitwise slice-independent, so subgrouping
        # cannot perturb any member relative to its solo (B=1) run.
        affine_groups: List[List] = []
        by_m: Dict[int, List[int]] = {}
        for row, member in enumerate(members):
            by_m.setdefault(member.num_constraints, []).append(row)
        for rows_m in by_m.values():
            A_st = xp.stack([members[r].A for r in rows_m])
            affine_groups.append([
                np.asarray(rows_m, dtype=np.intp),
                A_st,
                xp.ascontiguousarray(xp.swapaxes(A_st, 1, 2)),
                xp.stack([members[r].inv_gram for r in rows_m]),
                xp.stack([members[r].b for r in rows_m])[:, :, None],
            ])
    if has_box:
        lower_st = xp.stack([m.lower for m in members])
        upper_st = xp.stack([m.upper for m in members])

    # ``active[row]`` is the original member index living in stack row
    # ``row``; compaction gathers it alongside the state tensors.
    active = np.arange(batch)
    results: List[Optional[MemberResult]] = [None] * batch
    # PSD identity counts, compacted in lockstep with the state tensors
    # (every iteration attempts one PSD projection per member, so the
    # projection count at freeze is simply the iteration count).
    ident_counts = np.zeros(batch, dtype=np.int64)
    # Scratch buffers, allocated once at the full batch size and sliced
    # down as members freeze out.  All writes into them go through ufunc
    # ``out=`` parameters, which apply the identical float operation —
    # reuse only removes allocator traffic from the lockstep loop.
    # M_buf is zero-initialized because project_psd only scatters the
    # lower triangle (all eigh paths below read UPLO='L' exclusively);
    # the never-read upper half must still hold finite values.
    M_buf = np.zeros((batch, n, n), dtype=np.float64)
    vals_buf = np.empty((batch, d), dtype=np.float64)
    diff_buf = np.empty((m_sets, batch, d), dtype=np.float64)
    V_buf = np.empty((m_sets, batch, d), dtype=np.float64)
    samples: List[List[Dict[str, float]]] = [[] for _ in range(batch)]
    member_iterations = 0
    converged_count = 0
    proj_seconds = 0.0
    rho_hi = cfg.rho * cfg.rho_scale_limit
    rho_lo = cfg.rho / cfg.rho_scale_limit

    if xp is np and _EIGH_LO is not None:
        def eigh(M):
            # Non-convergence of the underlying dsyevd surfaces as the
            # default invalid-value RuntimeWarning (NaN output) instead of
            # LinAlgError; the public wrapper's only other work is
            # argument validation the kernel has already guaranteed.
            return _EIGH_LO(M, signature="d->dd")
    else:
        eigh = xp.linalg.eigh
    clip = _CLIP if (xp is np and _CLIP is not None) else xp.clip

    def row_norms(Y):
        return xp.sqrt(xp.einsum("bd,bd->b", Y, Y))

    def project_psd(V, out):
        """Stacked Frobenius projection onto the PSD cone, in svec coords."""
        nonlocal ident_counts
        vals = np.divide(V, svec_scale, out=vals_buf[: V.shape[0]])
        # One lower-triangle scatter suffices: every eigh path here reads
        # UPLO='L' only (the direct dsyevd gufunc and the public wrapper's
        # default alike), so the upper half is never referenced.
        M = M_buf[: V.shape[0]]
        M[:, cols, rows] = vals
        w, Q = eigh(M)
        neg = w[:, 0] < 0.0
        ident_counts += ~neg
        np.copyto(out, V)
        if neg.any():
            w_neg = xp.maximum(w[neg], 0.0)
            R = (Q[neg] * w_neg[:, None, :]) @ xp.swapaxes(Q[neg], 1, 2)
            out[neg] = R[:, rows, cols] * svec_scale

    def project_affine(V, out):
        if len(affine_groups) == 1 and affine_groups[0][0].size == V.shape[0]:
            _, A_st, At_st, inv_gram_st, b_st = affine_groups[0]
            resid = A_st @ V[:, :, None]
            resid -= b_st
            np.subtract(V, (At_st @ (inv_gram_st @ resid))[:, :, 0], out=out)
            return
        np.copyto(out, V)
        for idx, A_st, At_st, inv_gram_st, b_st in affine_groups:
            Vs = V[idx]
            resid = A_st @ Vs[:, :, None]
            resid -= b_st
            out[idx] = Vs - (At_st @ (inv_gram_st @ resid))[:, :, 0]

    def project_box(V, out):
        clip(V, lower_st, upper_st, out=out)

    projections = [project_psd]
    if has_affine:
        projections.append(project_affine)
    if has_box:
        projections.append(project_box)

    # The cost-drift term of the consensus update only changes when rho
    # adapts or the stack compacts, so it is cached across iterations —
    # the cached array holds exactly the value the inline expression
    # would produce.
    drift = C_hat / (m_sets * rho)[:, None]

    iterations = 0
    for iterations in range(1, cfg.max_iterations + 1):
        X_prev = X
        B = X.shape[0]
        # add.reduce over the sets axis is the same left fold as the
        # per-set accumulation loop, so the consensus mean is bitwise
        # unchanged; X must be a fresh array (X_prev keeps the old one).
        D = np.subtract(Z_st, U_st, out=diff_buf[:, :B])
        X = np.add.reduce(D, axis=0)
        X = np.divide(X, m_sets, out=X)
        X -= drift

        if recording:
            proj_start = time.perf_counter()
        V_all = np.add(X, U_st, out=V_buf[:, :B])
        for i, project in enumerate(projections):
            project(V_all[i], Z_st[i])
        # Old U_st is dead once V_all is formed; one fused subtract.
        np.subtract(V_all, Z_st, out=U_st)
        if recording:
            proj_seconds += time.perf_counter() - proj_start

        if iterations % cfg.check_every == 0 or iterations == cfg.max_iterations:
            DXZ = np.subtract(X, Z_st, out=diff_buf[:, :B])
            sq = xp.einsum("sbd,sbd->sb", DXZ, DXZ)
            # sqrt-then-max over sets matches the per-set row_norms fold.
            primal = np.maximum.reduce(xp.sqrt(sq), axis=0)
            dual = (rho * math.sqrt(m_sets)) * row_norms(X - X_prev)
            if recording:
                objective = xp.einsum("bd,bd->b", C, X)
                for row, orig in enumerate(active):
                    samples[orig].append({
                        "iteration": iterations,
                        "objective": float(objective[row]),
                        "primal": float(primal[row]),
                        "dual": float(dual[row]),
                        "rho": float(rho[row]),
                    })
            scale = xp.maximum(1.0, row_norms(X))
            tol = cfg.tolerance * scale
            done = (primal <= tol) & (dual <= tol)
            at_cap = iterations == cfg.max_iterations
            if done.any() or at_cap:
                exiting = done | at_cap
                for row in np.nonzero(exiting)[0]:
                    orig = int(active[row])
                    results[orig] = MemberResult(
                        z_psd=np.array(Z_st[0, row], dtype=np.float64),
                        iterations=iterations,
                        primal=float(primal[row]),
                        dual=float(dual[row]),
                        converged=bool(done[row]),
                        projections=iterations,
                        identities=int(ident_counts[row]),
                        samples=samples[orig],
                    )
                    member_iterations += iterations
                    converged_count += int(done[row])
                keep = ~exiting
                if not keep.any():
                    break
                X = X[keep]
                X_prev = X_prev[keep]
                Z_st = Z_st[:, keep]
                U_st = U_st[:, keep]
                C_hat = C_hat[keep]
                if recording:
                    C = C[keep]
                rho = rho[keep]
                primal = primal[keep]
                dual = dual[keep]
                active = active[keep]
                ident_counts = ident_counts[keep]
                # Row gather == recompute: the drift is elementwise in the
                # batch dimension.
                drift = drift[keep]
                if has_affine:
                    # Remap each subgroup's row indices into the compacted
                    # stack and drop its frozen members' constraint blocks.
                    old_to_new = np.cumsum(keep) - 1
                    surviving = []
                    for idx, A_st, At_st, inv_gram_st, b_st in affine_groups:
                        sub_keep = keep[idx]
                        if not sub_keep.any():
                            continue
                        surviving.append([
                            old_to_new[idx[sub_keep]],
                            A_st[sub_keep],
                            At_st[sub_keep],
                            inv_gram_st[sub_keep],
                            b_st[sub_keep],
                        ])
                    affine_groups = surviving
                if has_box:
                    lower_st = lower_st[keep]
                    upper_st = upper_st[keep]
            if cfg.adaptive_rho and active.size:
                # Mirrors the scalar schedule: x2 when primal dominates, /2
                # when dual dominates, duals rescaled to keep u = y / rho.
                up = (primal > 10.0 * dual) & (rho < rho_hi)
                down = (dual > 10.0 * primal) & (rho > rho_lo)
                if up.any() or down.any():
                    U_st[:, up] /= 2.0
                    U_st[:, down] *= 2.0
                    rho = rho.copy()
                    rho[up] *= 2.0
                    rho[down] /= 2.0
                    drift = C_hat / (m_sets * rho)[:, None]

    stats = BatchStats(
        members=batch,
        iterations=iterations,
        member_iterations=member_iterations,
        converged=converged_count,
        projection_seconds=proj_seconds,
        solve_seconds=time.perf_counter() - solve_start,
    )
    return list(results), stats  # type: ignore[arg-type]
