"""Shape bucketing: group prepared members into stackable batches.

Members stack only when their tensors agree in every dimension, so the
bucket key is ``(matrix order, constraint count, has box)`` — the
:attr:`~repro.batchsolve.kernels.MemberSetup.bucket_key`.  Partition
leaves cluster naturally around the segment-per-partition cap, so a
typical engine iteration yields a handful of well-filled buckets plus a
tail of singletons (run ``repro obs show`` on a batch ledger entry, or
see the fragmentation walkthrough in docs/OBSERVABILITY.md, to inspect
the split).

Buckets are additionally chunked to ``max_members`` rows: the dominant
stack is the constraint tensor at ``B x m x d`` doubles, and capping B
bounds peak memory without affecting results — members never exchange
information, so chunk boundaries are invisible to the math.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.batchsolve.kernels import MemberSetup

#: Default cap on members per kernel call.  At the repo's typical leaf
#: shapes (n ~ 40-120, m ~ n, d = n(n+1)/2) 64 members keep the constraint
#: stack under ~0.5 GB at the extreme end and far below that typically.
DEFAULT_MAX_MEMBERS = 64


def bucket_members(
    members: Sequence[Tuple[int, MemberSetup]],
    max_members: int = DEFAULT_MAX_MEMBERS,
) -> List[List[Tuple[int, MemberSetup]]]:
    """Group ``(index, member)`` pairs into shape-compatible chunks.

    Input order is preserved within each bucket (first-seen bucket order
    overall), so the caller can map results back by the carried index.
    """
    if max_members < 1:
        raise ValueError("max_members must be >= 1")
    grouped: Dict[Tuple[int, int, bool], List[Tuple[int, MemberSetup]]] = {}
    for index, member in members:
        grouped.setdefault(member.bucket_key, []).append((index, member))
    chunks: List[List[Tuple[int, MemberSetup]]] = []
    for bucket in grouped.values():
        for start in range(0, len(bucket), max_members):
            chunks.append(bucket[start:start + max_members])
    return chunks
