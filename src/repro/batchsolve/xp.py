"""Array-namespace seam of the batched kernels.

Every tensor operation in :mod:`repro.batchsolve.kernels` goes through the
namespace returned by :func:`get_namespace` — numpy by default.  A GPU
drop-in (cupy, or torch behind an adapter exposing ``stack``/``zeros``/
``clip``/``linalg.eigh``/``matmul`` with numpy semantics) is therefore a
backend swap, not a kernel rewrite.

Digest guarantees only hold for the numpy namespace: the bit-identity of
``--exec batch`` against the scalar path relies on numpy's gufuncs being
slice-independent.  An alternative namespace trades that guarantee for
throughput, which is why swapping is an explicit opt-in and never inferred.
"""

from __future__ import annotations

import numpy

_namespace = numpy


def get_namespace():
    """The active array namespace (numpy unless a caller swapped it)."""
    return _namespace


def set_namespace(namespace) -> None:
    """Install a numpy-compatible array namespace (e.g. cupy).

    The caller owns host/device transfers and accepts that assignment
    digests are only guaranteed bit-identical under numpy.
    """
    global _namespace
    _namespace = namespace


def reset_namespace() -> None:
    """Restore the default numpy namespace."""
    global _namespace
    _namespace = numpy
