"""Programmatic versions of every experiment in the paper's evaluation.

Each function runs one table/figure end to end and returns a structured
result with the raw reports, the derived series, and a rendered text view.
The pytest benches in ``benchmarks/`` and the CLI both delegate here, so
the experiments are equally usable from a notebook or script::

    from repro.experiments import run_table2

    result = run_table2(["adaptec1", "bigblue1"], scale=0.5)
    print(result.rendered)
    print(result.ratios["avg_tcp"])
"""

from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.figures import (
    Fig1Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    run_fig1,
    run_fig7,
    run_fig8,
    run_fig9,
)

__all__ = [
    "Table2Result",
    "run_table2",
    "Fig1Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "run_fig1",
    "run_fig7",
    "run_fig8",
    "run_fig9",
]
