"""Figures 1, 7, 8, 9 of the paper as programmatic experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.histogram import delay_histogram, render_histogram, tail_mass
from repro.analysis.report import Table
from repro.analysis.runreport import RunReport
from repro.core.engine import CPLAConfig
from repro.ispd.suite import SMALL_CASES
from repro.pipeline import ComparisonResult, compare, prepare, run_method
from repro.utils import get_logger

log = get_logger(__name__)


# ---------------------------------------------------------------- Fig. 1 --


@dataclass
class Fig1Result:
    """Pin-delay distributions of the released nets, TILA vs ours."""

    comparison: ComparisonResult
    tail_threshold: float = 0.0
    tila_tail: int = 0
    ours_tail: int = 0
    rendered: str = ""


def run_fig1(
    benchmark: str = "adaptec1",
    ratio: float = 0.005,
    scale: float = 1.0,
    bins: int = 14,
    compare_fn=None,
) -> Fig1Result:
    if compare_fn is not None:
        comparison = compare_fn(benchmark, ratio)
    else:
        comparison = compare(benchmark, critical_ratio=ratio, scale=scale)
    tila, ours = comparison.baseline, comparison.ours

    all_delays = tila.final_pin_delays + ours.final_pin_delays
    lo, hi = min(all_delays), max(all_delays)
    lines = []
    for rep in (tila, ours):
        edges, counts = delay_histogram(rep.final_pin_delays, bins=bins, lo=lo, hi=hi)
        lines.append(render_histogram(
            edges, counts,
            title=f"{rep.method}: sink-pin delays of released nets (log2 bars)",
        ))
        lines.append("")

    threshold = float(np.quantile(tila.initial_pin_delays, 0.9))
    result = Fig1Result(
        comparison=comparison,
        tail_threshold=threshold,
        tila_tail=tail_mass(tila.final_pin_delays, threshold),
        ours_tail=tail_mass(ours.final_pin_delays, threshold),
        rendered="\n".join(lines),
    )
    return result


# ---------------------------------------------------------------- Fig. 7 --


@dataclass
class Fig7Result:
    """ILP vs SDP on the small cases: quality parity, runtimes as measured."""

    reports: Dict[str, Dict[str, RunReport]] = field(default_factory=dict)
    rendered: str = ""

    def quality_ratio(self, metric: str = "avg") -> float:
        """Aggregate SDP/ILP ratio over the cases (avg or max Tcp)."""
        attr = f"final_{metric}_tcp"
        sdp = sum(getattr(per["sdp"], attr) for per in self.reports.values())
        ilp = sum(getattr(per["ilp"], attr) for per in self.reports.values())
        return sdp / ilp if ilp else float("nan")


def run_fig7(
    benchmarks: Sequence[str] = SMALL_CASES,
    ratio: float = 0.005,
    scale: float = 1.0,
    max_iterations: int = 4,
) -> Fig7Result:
    result = Fig7Result()
    for name in benchmarks:
        log.info("fig7: running %s", name)
        per: Dict[str, RunReport] = {}
        for method in ("ilp", "sdp"):
            bench = prepare(name, scale=scale)
            per[method] = run_method(
                bench, method, critical_ratio=ratio,
                cpla_config=CPLAConfig(method=method, max_iterations=max_iterations),
            )
        result.reports[name] = per

    table = Table(
        ["bench", "ILP Avg", "SDP Avg", "ILP Max", "SDP Max", "ILP CPU", "SDP CPU"]
    )
    for name, per in result.reports.items():
        table.add_row(
            name,
            per["ilp"].final_avg_tcp, per["sdp"].final_avg_tcp,
            per["ilp"].final_max_tcp, per["sdp"].final_max_tcp,
            per["ilp"].runtime, per["sdp"].runtime,
        )
    result.rendered = table.render()
    return result


# ---------------------------------------------------------------- Fig. 8 --


@dataclass
class Fig8Result:
    """Partition-size sweep: quality flatness and the runtime valley."""

    reports: Dict[Tuple[str, int], RunReport] = field(default_factory=dict)
    cases: Tuple[str, ...] = ()
    limits: Tuple[int, ...] = ()
    rendered: str = ""

    def series(self, case: str, attr: str) -> List[float]:
        return [getattr(self.reports[(case, l)], attr) for l in self.limits]


def run_fig8(
    benchmarks: Sequence[str] = ("adaptec1", "adaptec2", "bigblue1"),
    limits: Sequence[int] = (5, 10, 20, 40, 80),
    ratio: float = 0.005,
    scale: float = 1.0,
    max_iterations: int = 3,
) -> Fig8Result:
    result = Fig8Result(cases=tuple(benchmarks), limits=tuple(limits))
    for name in benchmarks:
        for limit in limits:
            log.info("fig8: %s limit=%d", name, limit)
            bench = prepare(name, scale=scale)
            result.reports[(name, limit)] = run_method(
                bench, "sdp", critical_ratio=ratio,
                cpla_config=CPLAConfig(
                    method="sdp",
                    max_iterations=max_iterations,
                    max_segments_per_partition=limit,
                ),
            )
    table = Table(["bench", "seg limit", "Avg(Tcp)", "Max(Tcp)", "CPU(s)"])
    for (name, limit), report in result.reports.items():
        table.add_row(
            name, limit, report.final_avg_tcp, report.final_max_tcp, report.runtime
        )
    result.rendered = table.render()
    return result


# ---------------------------------------------------------------- Fig. 9 --


@dataclass
class Fig9Result:
    """Critical-ratio sweep, TILA vs SDP."""

    comparisons: Dict[float, ComparisonResult] = field(default_factory=dict)
    ratios: Tuple[float, ...] = ()
    rendered: str = ""

    def series(self, side: str, attr: str) -> List[float]:
        reports = [
            getattr(self.comparisons[r], side) for r in self.ratios
        ]
        return [getattr(rep, attr) for rep in reports]


def run_fig9(
    benchmark: str = "adaptec1",
    ratios: Sequence[float] = (0.005, 0.010, 0.015, 0.020, 0.025),
    scale: float = 1.0,
    compare_fn=None,
) -> Fig9Result:
    result = Fig9Result(ratios=tuple(ratios))
    for ratio in ratios:
        log.info("fig9: ratio=%.3f", ratio)
        if compare_fn is not None:
            result.comparisons[ratio] = compare_fn(benchmark, ratio)
        else:
            result.comparisons[ratio] = compare(
                benchmark, critical_ratio=ratio, scale=scale
            )
    table = Table([
        "ratio %", "TILA Avg", "SDP Avg", "TILA Max", "SDP Max",
        "TILA CPU", "SDP CPU", "#released",
    ])
    for ratio in ratios:
        r = result.comparisons[ratio]
        table.add_row(
            100 * ratio,
            r.baseline.final_avg_tcp, r.ours.final_avg_tcp,
            r.baseline.final_max_tcp, r.ours.final_max_tcp,
            r.baseline.runtime, r.ours.runtime,
            len(r.ours.critical_net_ids),
        )
    result.rendered = table.render()
    return result
