"""Plot-data export for the reproduced figures.

Writes plain ``.dat`` series plus matching gnuplot scripts, so the actual
figures of the paper can be regenerated with stock tooling (no matplotlib
dependency)::

    result = run_fig9("adaptec1")
    export_fig9(result, "plots/")
    # then:  gnuplot plots/fig9.gp

Every exporter returns the list of files written.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

from repro.analysis.histogram import delay_histogram
from repro.experiments.figures import Fig1Result, Fig7Result, Fig8Result, Fig9Result
from repro.experiments.table2 import Table2Result


def _write(path: str, text: str) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def _series(path: str, header: str, rows) -> str:
    lines = [f"# {header}"]
    for row in rows:
        lines.append(" ".join(str(v) for v in row))
    return _write(path, "\n".join(lines) + "\n")


def export_table2(result: Table2Result, directory: str) -> List[str]:
    """CSV of the full table (one row per benchmark, both methods)."""
    lines = [
        "bench,tila_avg,tila_max,tila_ov,tila_via,tila_cpu,"
        "sdp_avg,sdp_max,sdp_ov,sdp_via,sdp_cpu"
    ]
    for t, s in zip(result.tila_rows, result.sdp_rows):
        lines.append(
            f"{t.benchmark},{t.avg_tcp:.4f},{t.max_tcp:.4f},{t.via_overflow},"
            f"{t.vias},{t.cpu_seconds:.4f},{s.avg_tcp:.4f},{s.max_tcp:.4f},"
            f"{s.via_overflow},{s.vias},{s.cpu_seconds:.4f}"
        )
    return [_write(os.path.join(directory, "table2.csv"), "\n".join(lines) + "\n")]


def export_fig1(result: Fig1Result, directory: str, bins: int = 14) -> List[str]:
    """Histogram series per method plus a log2-y gnuplot script (Fig. 1)."""
    tila = result.comparison.baseline
    ours = result.comparison.ours
    all_delays = tila.final_pin_delays + ours.final_pin_delays
    lo, hi = min(all_delays), max(all_delays)
    files = []
    for rep, tag in ((tila, "tila"), (ours, "ours")):
        edges, counts = delay_histogram(rep.final_pin_delays, bins=bins, lo=lo, hi=hi)
        centers = (np.asarray(edges[:-1]) + np.asarray(edges[1:])) / 2
        files.append(_series(
            os.path.join(directory, f"fig1_{tag}.dat"),
            "delay_bin_center pin_count",
            zip(centers, counts),
        ))
    gp = (
        'set logscale y 2\nset xlabel "Delay Distribution"\n'
        'set ylabel "Pin #"\nset style data histeps\n'
        f'plot "fig1_tila.dat" title "TILA", "fig1_ours.dat" title "ours"\n'
    )
    files.append(_write(os.path.join(directory, "fig1.gp"), gp))
    return files


def export_fig7(result: Fig7Result, directory: str) -> List[str]:
    rows = []
    for idx, (name, per) in enumerate(result.reports.items()):
        rows.append((
            idx, name,
            per["ilp"].final_avg_tcp, per["sdp"].final_avg_tcp,
            per["ilp"].final_max_tcp, per["sdp"].final_max_tcp,
            per["ilp"].runtime, per["sdp"].runtime,
        ))
    files = [_series(
        os.path.join(directory, "fig7.dat"),
        "idx bench ilp_avg sdp_avg ilp_max sdp_max ilp_cpu sdp_cpu",
        rows,
    )]
    gp = (
        'set style data histogram\nset style fill solid 0.6\n'
        'set xlabel "benchmark"\n'
        'plot "fig7.dat" using 3:xtic(2) title "ILP Avg(Tcp)", '
        '"" using 4 title "SDP Avg(Tcp)"\n'
    )
    files.append(_write(os.path.join(directory, "fig7.gp"), gp))
    return files


def export_fig8(result: Fig8Result, directory: str) -> List[str]:
    files = []
    for case in result.cases:
        rows = zip(
            result.limits,
            result.series(case, "final_avg_tcp"),
            result.series(case, "final_max_tcp"),
            result.series(case, "runtime"),
        )
        files.append(_series(
            os.path.join(directory, f"fig8_{case}.dat"),
            "segment_limit avg_tcp max_tcp cpu_s",
            rows,
        ))
    plots = ", ".join(
        f'"fig8_{case}.dat" using 1:4 with linespoints title "{case}"'
        for case in result.cases
    )
    gp = (
        'set logscale y\nset xlabel "Segment# in each partition"\n'
        f'set ylabel "Runtime (s)"\nplot {plots}\n'
    )
    files.append(_write(os.path.join(directory, "fig8.gp"), gp))
    return files


def export_fig9(result: Fig9Result, directory: str) -> List[str]:
    rows = zip(
        [100 * r for r in result.ratios],
        result.series("baseline", "final_avg_tcp"),
        result.series("ours", "final_avg_tcp"),
        result.series("baseline", "final_max_tcp"),
        result.series("ours", "final_max_tcp"),
        result.series("baseline", "runtime"),
        result.series("ours", "runtime"),
    )
    files = [_series(
        os.path.join(directory, "fig9.dat"),
        "ratio_pct tila_avg sdp_avg tila_max sdp_max tila_cpu sdp_cpu",
        rows,
    )]
    gp = (
        'set xlabel "Critical Ratio (%)"\nset ylabel "Avg(Tcp)"\n'
        'plot "fig9.dat" using 1:2 with linespoints title "TILA", '
        '"fig9.dat" using 1:3 with linespoints title "SDP"\n'
    )
    files.append(_write(os.path.join(directory, "fig9.gp"), gp))
    return files
