"""Table 2: TILA vs SDP across the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import MethodMetrics, average_row, ratio_row
from repro.analysis.report import Table
from repro.core.engine import CPLAConfig
from repro.pipeline import ComparisonResult, compare
from repro.tila.engine import TILAConfig
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class Table2Result:
    """One full Table-2 run."""

    comparisons: Dict[str, ComparisonResult] = field(default_factory=dict)
    tila_rows: List[MethodMetrics] = field(default_factory=list)
    sdp_rows: List[MethodMetrics] = field(default_factory=list)
    tila_average: Optional[MethodMetrics] = None
    sdp_average: Optional[MethodMetrics] = None
    ratios: Dict[str, float] = field(default_factory=dict)
    rendered: str = ""

    @property
    def sdp_wins_avg(self) -> int:
        """Benchmarks where SDP's Avg(Tcp) beats TILA's."""
        return sum(
            1
            for t, s in zip(self.tila_rows, self.sdp_rows)
            if s.avg_tcp < t.avg_tcp
        )


def run_table2(
    benchmarks: Sequence[str],
    ratio: float = 0.005,
    scale: float = 1.0,
    cpla_config: Optional[CPLAConfig] = None,
    tila_config: Optional[TILAConfig] = None,
    compare_fn=None,
) -> Table2Result:
    """Run the paired comparison on every benchmark and assemble the table.

    ``compare_fn(name, ratio)`` may be supplied to share/cache comparison
    runs with other experiments (the pytest benches do this); it defaults
    to :func:`repro.pipeline.compare`.
    """
    result = Table2Result()
    for name in benchmarks:
        log.info("table2: running %s", name)
        if compare_fn is not None:
            comparison = compare_fn(name, ratio)
        else:
            comparison = compare(
                name,
                critical_ratio=ratio,
                scale=scale,
                cpla_config=cpla_config,
                tila_config=tila_config,
            )
        result.comparisons[name] = comparison
        result.tila_rows.append(MethodMetrics.from_report(comparison.baseline))
        result.sdp_rows.append(MethodMetrics.from_report(comparison.ours))

    result.tila_average = average_row(result.tila_rows, "tila")
    result.sdp_average = average_row(result.sdp_rows, "sdp")
    result.ratios = ratio_row(result.sdp_average, result.tila_average)
    result.rendered = _render(result)
    return result


def _render(result: Table2Result) -> str:
    table = Table([
        "bench",
        "TILA Avg", "TILA Max", "TILA OV#", "TILA via#", "TILA CPU",
        "SDP Avg", "SDP Max", "SDP OV#", "SDP via#", "SDP CPU",
    ])
    for t, s in zip(result.tila_rows, result.sdp_rows):
        table.add_row(
            t.benchmark,
            t.avg_tcp, t.max_tcp, t.via_overflow, t.vias, t.cpu_seconds,
            s.avg_tcp, s.max_tcp, s.via_overflow, s.vias, s.cpu_seconds,
        )
    t_avg, s_avg = result.tila_average, result.sdp_average
    assert t_avg is not None and s_avg is not None
    table.add_row(
        "average",
        t_avg.avg_tcp, t_avg.max_tcp, t_avg.via_overflow, t_avg.vias, t_avg.cpu_seconds,
        s_avg.avg_tcp, s_avg.max_tcp, s_avg.via_overflow, s_avg.vias, s_avg.cpu_seconds,
    )
    table.add_row(
        "ratio", 1.0, 1.0, 1.0, 1.0, 1.0,
        result.ratios["avg_tcp"], result.ratios["max_tcp"],
        result.ratios["via_overflow"], result.ratios["vias"],
        result.ratios["cpu_seconds"],
    )
    return table.render()
