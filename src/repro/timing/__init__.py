"""Elmore-delay timing engine (Section 2.2 of the paper).

- :mod:`repro.timing.rc` — industrial-style per-layer RC tables (higher
  layers wider/less resistive, as in the paper's Oracle settings).
- :mod:`repro.timing.elmore` — segment delay (Eqn. 2), via delay (Eqn. 3),
  bottom-up downstream capacitances, per-sink path delays.
- :mod:`repro.timing.critical` — per-net critical path ``Tcp``, release of
  the top ``ratio`` critical nets, and pin-delay distributions (Fig. 1).
"""

from repro.timing.rc import industrial_rc, RCProfile
from repro.timing.elmore import ElmoreEngine, NetTiming, TimingConfig
from repro.timing.critical import (
    CriticalitySelector,
    critical_path_stats,
    pin_delay_distribution,
)

__all__ = [
    "industrial_rc",
    "RCProfile",
    "ElmoreEngine",
    "NetTiming",
    "TimingConfig",
    "CriticalitySelector",
    "critical_path_stats",
    "pin_delay_distribution",
]
