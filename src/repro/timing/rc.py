"""Per-layer RC tables.

The paper uses resistance/capacitance values "from industrial settings"
(Oracle).  Those numbers are proprietary; what the experiments rely on is the
*structure* stated in the introduction: higher metal layers are wider with
lower resistance, lower layers are thinner with higher resistance, and via
resistance is significant enough that gratuitous layer hopping hurts.

:func:`industrial_rc` reproduces that structure.  Layers come in tiers of two
(1x/2x/4x... width classes, as in contemporary BEOL stacks): resistance
halves per tier while capacitance per unit length stays within a narrow band,
slightly decreasing with height.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RCProfile:
    """Unit-length RC values per layer plus per-cut via resistance.

    Units are arbitrary-but-consistent: resistances in ohms per G-cell pitch,
    capacitances in femtofarads per G-cell pitch; delays come out in ohm*fF
    units, matching the paper's reporting of dimensionless delay numbers.
    """

    unit_resistance: Tuple[float, ...]
    unit_capacitance: Tuple[float, ...]
    via_resistance: Tuple[float, ...]
    via_capacitance: Tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.unit_resistance)
        if n == 0:
            raise ValueError("profile needs at least one layer")
        if len(self.unit_capacitance) != n:
            raise ValueError("R and C tables must have equal length")
        if len(self.via_resistance) != n - 1 or len(self.via_capacitance) != n - 1:
            raise ValueError("via tables must have length L-1")

    @property
    def num_layers(self) -> int:
        return len(self.unit_resistance)


def industrial_rc(
    num_layers: int,
    *,
    base_resistance: float = 8.0,
    tier_shrink: float = 0.5,
    base_capacitance: float = 1.0,
    cap_tier_drift: float = -0.04,
    via_cut_resistance: float = 4.0,
    via_cut_capacitance: float = 0.0,
) -> RCProfile:
    """Build an :class:`RCProfile` with the industrial structure.

    ``tier_shrink`` is the resistance multiplier applied per two-layer tier
    (0.5 halves resistance per tier, the typical doubling of wire width).
    ``cap_tier_drift`` nudges capacitance per tier; the default slight
    decrease models taller-but-farther-from-substrate wiring.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if not 0 < tier_shrink <= 1:
        raise ValueError("tier_shrink must be in (0, 1]")
    res = []
    cap = []
    for layer in range(1, num_layers + 1):
        tier = (layer - 1) // 2
        res.append(base_resistance * (tier_shrink**tier))
        cap.append(max(base_capacitance + cap_tier_drift * tier, 0.1))
    vias = [via_cut_resistance] * (num_layers - 1)
    via_caps = [via_cut_capacitance] * (num_layers - 1)
    return RCProfile(
        unit_resistance=tuple(res),
        unit_capacitance=tuple(cap),
        via_resistance=tuple(vias),
        via_capacitance=tuple(via_caps),
    )
