"""Critical-net selection and critical-path statistics.

The paper "releases" a percentage of the most critical nets (0.5%–2.5% in
the experiments); released nets are the ones whose segments the incremental
optimizers may move.  Criticality of a net is its worst source→sink Elmore
path delay ``Tcp`` under the current assignment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.route.net import Net
from repro.timing.elmore import ElmoreEngine, NetTiming


@dataclass
class CriticalitySelector:
    """Ranks nets by ``Tcp`` and releases the top fraction."""

    engine: ElmoreEngine

    def select(
        self, nets: Sequence[Net], ratio: float
    ) -> Tuple[List[Net], Dict[int, NetTiming]]:
        """Return (released nets, timing of *all* nets).

        ``ratio`` is a fraction (0.005 == the paper's "0.5%").  At least one
        net is released whenever any net has sinks.
        """
        if not 0 < ratio <= 1:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        timings = self.engine.analyze_all(nets)
        eligible = [n for n in nets if timings[n.id].sink_delays]
        eligible.sort(key=lambda n: (-timings[n.id].critical_delay, n.id))
        count = min(len(eligible), max(1, math.ceil(ratio * len(nets))))
        return eligible[:count], timings


def critical_path_stats(
    timings: Dict[int, NetTiming], critical_nets: Iterable[Net]
) -> Tuple[float, float]:
    """``(Avg(Tcp), Max(Tcp))`` over the released nets — the two quality
    columns of Table 2."""
    delays = [timings[n.id].critical_delay for n in critical_nets]
    if not delays:
        return 0.0, 0.0
    return sum(delays) / len(delays), max(delays)


def pin_delay_distribution(
    timings: Dict[int, NetTiming], critical_nets: Iterable[Net]
) -> List[float]:
    """All sink-pin path delays of the released nets (Fig. 1's population)."""
    delays: List[float] = []
    for net in critical_nets:
        delays.extend(timings[net.id].sink_delays.values())
    return delays
