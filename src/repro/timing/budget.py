"""Timing-budget utilities.

The paper releases a fixed *ratio* of the most critical nets; production
flows more often release by *violation*: every net whose worst path exceeds
its required time.  This module provides both views over the same Elmore
engine, plus slack bookkeeping:

- :func:`net_slacks` — required time minus worst arrival, per net;
- :func:`select_by_budget` — the violating nets, worst first;
- :class:`BudgetPolicy` — turns a budget into the ``critical_ratio`` the
  engines consume, with a floor so the optimizer always has work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.route.net import Net
from repro.timing.elmore import ElmoreEngine

BudgetLike = Union[float, Callable[[Net], float]]


def _required_time(budget: BudgetLike, net: Net) -> float:
    if callable(budget):
        return float(budget(net))
    return float(budget)


def net_slacks(
    engine: ElmoreEngine, nets: Sequence[Net], budget: BudgetLike
) -> Dict[int, float]:
    """Slack per net id: ``required - Tcp`` (negative = violating).

    ``budget`` is either one required time for every net or a callable
    mapping a net to its own required time (e.g. per clock group).
    Local nets with no sinks are skipped.
    """
    slacks: Dict[int, float] = {}
    for net in nets:
        timing = engine.analyze(net)
        if not timing.sink_delays:
            continue
        slacks[net.id] = _required_time(budget, net) - timing.critical_delay
    return slacks


def select_by_budget(
    engine: ElmoreEngine, nets: Sequence[Net], budget: BudgetLike
) -> List[Net]:
    """Nets violating their budget, most negative slack first."""
    slacks = net_slacks(engine, nets, budget)
    violating = [n for n in nets if slacks.get(n.id, 0.0) < 0.0]
    violating.sort(key=lambda n: (slacks[n.id], n.id))
    return violating


def total_negative_slack(
    engine: ElmoreEngine, nets: Sequence[Net], budget: BudgetLike
) -> float:
    """TNS: the sum of negative slacks (a standard sign-off metric, <= 0)."""
    slacks = net_slacks(engine, nets, budget)
    return sum(s for s in slacks.values() if s < 0.0)


@dataclass
class BudgetPolicy:
    """Converts a timing budget into an engine release ratio.

    ``min_ratio``/``max_ratio`` bound the released fraction: too few nets
    gives the optimizer nothing to trade, too many explodes runtime.
    """

    budget: BudgetLike
    min_ratio: float = 0.002
    max_ratio: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.min_ratio <= self.max_ratio <= 1:
            raise ValueError("need 0 < min_ratio <= max_ratio <= 1")

    def release_ratio(self, engine: ElmoreEngine, nets: Sequence[Net]) -> float:
        violating = select_by_budget(engine, nets, self.budget)
        if not nets:
            return self.min_ratio
        ratio = len(violating) / len(nets)
        return min(max(ratio, self.min_ratio), self.max_ratio)

    def summarize(
        self, engine: ElmoreEngine, nets: Sequence[Net]
    ) -> Tuple[int, float]:
        """(violating net count, total negative slack)."""
        violating = select_by_budget(engine, nets, self.budget)
        return len(violating), total_negative_slack(engine, nets, self.budget)
