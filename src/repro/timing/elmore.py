"""Elmore-delay computation over segment trees.

Implements the paper's timing model exactly:

- Eqn. (2): segment delay ``ts(i, l) = Re(l) * (Ce(l)/2 + Cd(i))`` where the
  resistance and self-capacitance scale with the segment's length in G-cells
  and ``Cd(i)`` is the downstream capacitance beyond segment *i*;
- Eqn. (3): via delay ``tv = sum(Rv(l), l = j..q-1) * min(Cd(i), Cd(p))`` for
  a via joining segment *i* on layer *j* with segment *p* on layer *q*;
- downstream capacitances accumulate sinks-to-source ("bottom-to-up"), so
  every segment's delay reflects the layer assignment of the whole subtree
  it drives.

Path delay to a sink is the sum of the segment and via delays along the
source→sink path, plus the via stack down to the pin layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.grid.layers import LayerStack
from repro.obs import metrics, tracer
from repro.route.net import Net, Pin
from repro.route.tree import NetTopology


@dataclass
class TimingConfig:
    """Options of the Elmore engine.

    ``via_load`` selects the capacitive load of Eqn. (3): ``"paper"`` uses
    ``min(Cd(i), Cd(p))`` verbatim; ``"subtree"`` uses the child's full
    subtree capacitance (wire included), the more physical variant — kept as
    an ablation knob.
    """

    driver_resistance: float = 0.0
    via_load: str = "paper"

    def __post_init__(self) -> None:
        if self.via_load not in ("paper", "subtree"):
            raise ValueError(f"unknown via_load mode {self.via_load!r}")
        if self.driver_resistance < 0:
            raise ValueError("driver_resistance must be >= 0")


@dataclass
class NetTiming:
    """Timing results of one net under its current layer assignment."""

    net_id: int
    sink_delays: Dict[Pin, float] = field(default_factory=dict)
    segment_delays: Dict[int, float] = field(default_factory=dict)
    downstream_caps: Dict[int, float] = field(default_factory=dict)
    total_capacitance: float = 0.0

    @property
    def critical_delay(self) -> float:
        """``Tcp``: the worst source→sink path delay of the net."""
        if not self.sink_delays:
            return 0.0
        return max(self.sink_delays.values())

    @property
    def critical_sink(self) -> Optional[Pin]:
        if not self.sink_delays:
            return None
        return max(self.sink_delays, key=self.sink_delays.get)

    def critical_path_segments(self, topo: NetTopology) -> List[int]:
        """Segment ids on the path from the source to the critical sink."""
        sink = self.critical_sink
        if sink is None:
            return []
        carrier = _segment_feeding_tile(topo, sink.tile)
        if carrier is None:
            return []
        return topo.path_to_segment(carrier)


def _segment_feeding_tile(topo: NetTopology, tile) -> Optional[int]:
    """The segment whose child endpoint delivers the signal to ``tile``."""
    if tile == topo.root_tile:
        return None
    return topo.carrier_segment(tile)


class ElmoreEngine:
    """Computes :class:`NetTiming` for routed, layer-assigned nets.

    Timing is cached per net, keyed by the net's layer-assignment
    fingerprint (the tuple of its segment layers): a net's Elmore delays
    depend only on its own topology, pin loads, and layer assignment, none
    of which other nets can change.  ``analyze_all`` therefore re-analyzes
    only the nets whose layers actually moved since the last refresh —
    callers that mutate layers may :meth:`mark_dirty` explicitly, but the
    fingerprint check alone already guarantees exactness.  Hit/miss counts
    are exported through ``repro.obs.metrics`` (``elmore.cache_hits`` /
    ``elmore.cache_misses``).
    """

    def __init__(
        self,
        stack: LayerStack,
        config: Optional[TimingConfig] = None,
        incremental: bool = True,
    ) -> None:
        self.stack = stack
        self.config = config or TimingConfig()
        self.incremental = incremental
        # net id -> (topology identity, layer fingerprint, timing)
        self._cache: Dict[int, Tuple[NetTopology, Tuple[int, ...], NetTiming]] = {}

    # -- result cache ------------------------------------------------------

    def mark_dirty(self, net_ids) -> None:
        """Drop cached timing of the given nets (they will re-analyze)."""
        for net_id in net_ids:
            self._cache.pop(net_id, None)

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- capacitance ------------------------------------------------------

    def wire_capacitance(self, seg) -> float:
        return self.stack.layer(seg.layer).unit_capacitance * seg.length

    def _pin_load_at(self, topo: NetTopology, tile, exclude: Optional[Pin]) -> float:
        return sum(
            p.capacitance
            for p in topo.pins_at.get(tile, [])
            if exclude is None or p != exclude
        )

    def downstream_caps(self, net: Net) -> Tuple[Dict[int, float], Dict[int, float]]:
        """Bottom-up ``Cd`` and subtree capacitance per segment id.

        ``Cd[sid]`` excludes the segment's own wire (as Eqn. (2) requires,
        since the wire contributes ``Ce/2`` separately); ``subtree[sid]``
        includes it.
        """
        topo = self._topo(net)
        source = net.source
        cd: Dict[int, float] = {}
        subtree: Dict[int, float] = {}
        for sid in topo.reverse_topo_order():
            seg = topo.segments[sid]
            load = self._pin_load_at(topo, topo.child_tile[sid], exclude=source)
            for cid in topo.children[sid]:
                child = topo.segments[cid]
                load += subtree[cid]
                load += self.stack.via_capacitance_between(seg.layer, child.layer)
            cd[sid] = load
            subtree[sid] = load + self.wire_capacitance(seg)
        return cd, subtree

    # -- delays -------------------------------------------------------------

    def segment_delay(self, seg, downstream_cap: float, layer: Optional[int] = None) -> float:
        """Eqn. (2) with resistance/capacitance scaled by segment length."""
        l = layer if layer is not None else seg.layer
        lyr = self.stack.layer(l)
        r = lyr.unit_resistance * seg.length
        c_self = lyr.unit_capacitance * seg.length
        return r * (c_self / 2.0 + downstream_cap)

    def via_delay(
        self, layer_a: int, layer_b: int, cd_parent: float, cd_child: float
    ) -> float:
        """Eqn. (3): stacked-via resistance times the via's load."""
        r = self.stack.via_resistance_between(layer_a, layer_b)
        if r == 0.0:
            return 0.0
        if self.config.via_load == "paper":
            return r * min(cd_parent, cd_child)
        return r * cd_child

    def analyze(self, net: Net) -> NetTiming:
        """Full timing of one net: per-segment delays and per-sink path delays.

        Served from the per-net cache when the net's layer fingerprint is
        unchanged; callers must treat the returned :class:`NetTiming` as
        read-only (every caller in the repo does).
        """
        if not self.incremental:
            return self._analyze(net)
        topo = self._topo(net)
        fingerprint = tuple(seg.layer for seg in topo.segments)
        entry = self._cache.get(net.id)
        if (
            entry is not None
            and entry[0] is topo
            and entry[1] == fingerprint
        ):
            metrics.inc("elmore.cache_hits")
            return entry[2]
        timing = self._analyze(net)
        self._cache[net.id] = (topo, fingerprint, timing)
        metrics.inc("elmore.cache_misses")
        return timing

    def _analyze(self, net: Net) -> NetTiming:
        """The uncached full analysis."""
        topo = self._topo(net)
        source = net.source
        timing = NetTiming(net_id=net.id)

        if not topo.segments:
            # Local net: sinks are reached through the pin via stack only.
            for pin in topo.sink_pins(source):
                r = self.stack.via_resistance_between(source.layer, pin.layer)
                timing.sink_delays[pin] = r * pin.capacitance
                timing.total_capacitance += pin.capacitance
            return timing

        cd, subtree = self.downstream_caps(net)
        timing.downstream_caps = cd
        for sid in cd:
            timing.segment_delays[sid] = self.segment_delay(
                topo.segments[sid], cd[sid]
            )

        roots = topo.root_segments()
        total_cap = sum(subtree[r] for r in roots)
        total_cap += self._pin_load_at(topo, topo.root_tile, exclude=source)
        timing.total_capacitance = total_cap
        driver_delay = self.config.driver_resistance * total_cap

        # Arrival at each segment's child endpoint, accumulated top-down.
        arrival: Dict[int, float] = {}
        for sid in topo.topo_order():
            seg = topo.segments[sid]
            par = topo.parent[sid]
            if par is None:
                base = driver_delay
                base += self.via_delay(
                    source.layer, seg.layer, cd_parent=cd[sid], cd_child=cd[sid]
                )
            else:
                parent_seg = topo.segments[par]
                base = arrival[par]
                base += self.via_delay(
                    parent_seg.layer, seg.layer, cd_parent=cd[par], cd_child=cd[sid]
                )
            arrival[sid] = base + timing.segment_delays[sid]

        # Sink pins hang off junction tiles through their own via stacks.
        for pin in topo.sink_pins(source):
            if pin.tile == topo.root_tile:
                r = self.stack.via_resistance_between(source.layer, pin.layer)
                timing.sink_delays[pin] = driver_delay + r * pin.capacitance
                continue
            carrier = _segment_feeding_tile(topo, pin.tile)
            assert carrier is not None, "sink tile must terminate a segment"
            seg = topo.segments[carrier]
            r = self.stack.via_resistance_between(seg.layer, pin.layer)
            timing.sink_delays[pin] = arrival[carrier] + r * pin.capacitance
        return timing

    def analyze_all(self, nets) -> Dict[int, NetTiming]:
        with tracer.span("timing.analyze_all", nets=len(nets)):
            result = {net.id: self.analyze(net) for net in nets}
        metrics.inc("elmore.refreshes")
        metrics.inc("elmore.nets_analyzed", len(nets))
        return result

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _topo(net: Net) -> NetTopology:
        if net.topology is None:
            raise ValueError(f"net {net.name} has no topology; route & assign first")
        for seg in net.topology.segments:
            if seg.layer <= 0:
                raise ValueError(
                    f"net {net.name} segment {seg.id} unassigned; "
                    "layer assignment must run before timing"
                )
        return net.topology
