"""Command-line interface.

Subcommands mirror the repo's workflow::

    repro gen adaptec1 --out bench/            # write ISPD'08 files
    repro run --benchmark adaptec1 --method sdp # one optimizer run
    repro compare --benchmark adaptec1          # TILA vs SDP (Table 2 row)
    repro table2 --scale 0.3                    # the full Table 2
    repro density --benchmark adaptec1          # Fig. 3(b)-style map

Percentages follow the paper: ``--ratio 0.5`` means 0.5% of nets released.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.histogram import delay_histogram, render_histogram
from repro.analysis.metrics import MethodMetrics, ratio_row
from repro.analysis.report import Table, density_map_text
from repro.experiments import run_table2
from repro.ispd.suite import SUITE, spec_for
from repro.ispd.synthetic import generate
from repro.ispd.writer import write_ispd08
from repro.pipeline import compare, prepare, run_method
from repro.utils.logging import configure_cli_logging


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0, help="net-count scale factor")
    parser.add_argument("--ratio", type=float, default=0.5, help="critical ratio in percent (paper: 0.5)")
    parser.add_argument("-v", "--verbose", action="store_true")


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable tracing and write spans as JSON-lines to PATH",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable metrics and write a Prometheus-style dump to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Critical-path incremental layer assignment (DAC'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("gen", help="generate synthetic ISPD'08 benchmark files")
    p_gen.add_argument("names", nargs="+", help="benchmark names, or 'all'")
    p_gen.add_argument("--out", default=".", help="output directory")
    p_gen.add_argument("--scale", type=float, default=1.0)
    p_gen.add_argument("-v", "--verbose", action="store_true")

    p_run = sub.add_parser("run", help="run one optimizer on one benchmark")
    p_run.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_run.add_argument(
        "--method", default="sdp", choices=["sdp", "ilp", "tila", "tila+flow"]
    )
    p_run.add_argument(
        "--routes-out", default=None,
        help="write the optimized solution in ISPD'08 routing format",
    )
    p_run.add_argument(
        "--workers", type=int, default=0,
        help="solve partition leaves in a process pool (sdp/ilp methods)",
    )
    _add_observability(p_run)
    _add_common(p_run)

    p_cmp = sub.add_parser("compare", help="TILA vs SDP on one benchmark")
    p_cmp.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_cmp.add_argument("--histogram", action="store_true", help="print Fig.1-style pin-delay histograms")
    _add_common(p_cmp)

    p_t2 = sub.add_parser("table2", help="regenerate Table 2 (all 15 benchmarks)")
    p_t2.add_argument("--benchmarks", default="", help="comma-separated subset")
    _add_common(p_t2)

    p_den = sub.add_parser("density", help="routing density map (Fig. 3(b))")
    p_den.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_den.add_argument("--scale", type=float, default=1.0)
    p_den.add_argument("-v", "--verbose", action="store_true")

    p_eval = sub.add_parser(
        "evaluate", help="score a routing solution (contest-evaluator style)"
    )
    p_eval.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_eval.add_argument("--routes", required=True, help="solution file to score")
    p_eval.add_argument("--via-cost", type=float, default=1.0)
    p_eval.add_argument("--scale", type=float, default=1.0)
    p_eval.add_argument("-v", "--verbose", action="store_true")

    return parser


def _cmd_gen(args: argparse.Namespace) -> int:
    names = sorted(SUITE) if args.names == ["all"] else args.names
    os.makedirs(args.out, exist_ok=True)
    for name in names:
        if name not in SUITE:
            print(f"unknown benchmark {name!r}", file=sys.stderr)
            return 2
        bench = generate(spec_for(name, scale=args.scale))
        path = os.path.join(args.out, f"{name}.gr")
        write_ispd08(bench, path)
        print(f"wrote {path} ({bench.num_nets} nets, "
              f"{bench.grid.nx_tiles}x{bench.grid.ny_tiles}x{bench.stack.num_layers})")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core.engine import CPLAConfig

    # Fail on an unwritable output path now, not after the optimizer ran.
    for path in (args.trace_out, args.metrics_out):
        if path:
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as exc:
                print(f"cannot write {path}: {exc}", file=sys.stderr)
                return 2
    if args.trace_out:
        obs.tracer.enable()
    if args.metrics_out:
        obs.metrics.enable()
    cpla_config = None
    if args.workers and args.method in ("sdp", "ilp"):
        cpla_config = CPLAConfig(workers=args.workers)
    bench = prepare(args.benchmark, scale=args.scale)
    report = run_method(
        bench, args.method, critical_ratio=args.ratio / 100.0,
        cpla_config=cpla_config,
    )
    table = Table(["metric", "initial", "final"])
    table.add_row("Avg(Tcp)", report.initial_avg_tcp, report.final_avg_tcp)
    table.add_row("Max(Tcp)", report.initial_max_tcp, report.final_max_tcp)
    table.add_row("via overflow", report.initial_via_overflow, report.final_via_overflow)
    table.add_row("via count", report.initial_vias, report.final_vias)
    print(f"{args.benchmark} / {report.method} "
          f"({len(report.critical_net_ids)} nets released)")
    print(table.render())
    print(f"runtime: {report.runtime:.2f}s")
    if args.trace_out or args.metrics_out:
        print()
        print(report.observability_summary())
    if args.trace_out:
        count = obs.tracer.export_jsonl(args.trace_out)
        print(f"wrote {count} spans to {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(obs.metrics.registry().render_prometheus())
        print(f"wrote metrics to {args.metrics_out}")
    if args.routes_out:
        from repro.ispd.routes import write_routes

        write_routes(bench, args.routes_out)
        print(f"wrote solution to {args.routes_out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    result = compare(args.benchmark, critical_ratio=args.ratio / 100.0, scale=args.scale)
    rows = [MethodMetrics.from_report(r) for r in (result.baseline, result.ours)]
    table = Table(["method", "Avg(Tcp)", "Max(Tcp)", "OV#", "via#", "CPU(s)"])
    for m in rows:
        table.add_row(m.method, m.avg_tcp, m.max_tcp, m.via_overflow, m.vias, m.cpu_seconds)
    ratios = ratio_row(rows[1], rows[0])
    table.add_row(
        "ratio",
        ratios["avg_tcp"], ratios["max_tcp"],
        ratios["via_overflow"], ratios["vias"], ratios["cpu_seconds"],
    )
    print(table.render())
    if args.histogram:
        for rep in (result.baseline, result.ours):
            edges, counts = delay_histogram(rep.final_pin_delays)
            print()
            print(render_histogram(edges, counts, title=f"pin delays: {rep.method}"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    names = (
        [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        if args.benchmarks
        else sorted(SUITE)
    )
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        print(f"unknown benchmarks: {unknown}", file=sys.stderr)
        return 2
    result = run_table2(names, ratio=args.ratio / 100.0, scale=args.scale)
    print(result.rendered)
    return 0


def _cmd_density(args: argparse.Namespace) -> int:
    bench = prepare(args.benchmark, scale=args.scale)
    print(density_map_text(bench.grid.density_map()))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.ispd.evaluator import evaluate_solution
    from repro.ispd.suite import load_benchmark

    bench = load_benchmark(args.benchmark, scale=args.scale)
    result = evaluate_solution(bench, routes=args.routes, via_cost=args.via_cost)
    print(result.summary())
    return 0 if result.legal else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_cli_logging(getattr(args, "verbose", False))
    handlers = {
        "gen": _cmd_gen,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "table2": _cmd_table2,
        "density": _cmd_density,
        "evaluate": _cmd_evaluate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
