"""Command-line interface.

Subcommands mirror the repo's workflow::

    repro gen adaptec1 --out bench/            # write ISPD'08 files
    repro run --benchmark adaptec1 --method sdp # one optimizer run
    repro compare --benchmark adaptec1          # TILA vs SDP (Table 2 row)
    repro table2 --scale 0.3                    # the full Table 2
    repro density --benchmark adaptec1          # Fig. 3(b)-style map
    repro run --benchmark adaptec1 --ledger runs.jsonl   # ledgered run
    repro obs show runs.jsonl                  # convergence diagnostics
    repro obs diff old.jsonl new.jsonl         # compare two ledger entries
    repro obs check runs.jsonl --baseline base.jsonl  # regression gate
    repro serve --port 8181                    # resident batch job server
    repro bench-serve --benchmark adaptec1 --qps 8 --verify  # load replay
    repro run ... --workers 4 --exec dist      # work-stealing solve fabric
    repro dist-worker --connect host:9123      # join a remote coordinator
    repro closure --benchmark adaptec1 --release-k 4  # ECO closure loop
    repro sweep --benchmark adaptec1 --alphas 1,2,3   # knob Pareto sweep
    repro bench-serve ... --eco-rounds 3       # serve-path ECO deltas
    repro bench-serve ... --trace-out spans.jsonl  # traced campaign
    repro obs trace show spans.jsonl           # one trace as a waterfall
    repro obs trace critical spans.jsonl       # where the wall clock went
    repro obs trace summary spans.jsonl --check  # aggregate + connectivity

Percentages follow the paper: ``--ratio 0.5`` means 0.5% of nets released.

``repro run`` exit codes (documented in README):

- **0** — clean success: the optimizer finished and the final solution
  carries no via-capacity overflow;
- **2** — usage error (bad arguments, unwritable output path);
- **3** — capacity-overflow result: the optimizer finished but the final
  solution still overflows via capacity (legal for the incremental
  problem, but a downstream flow should know);
- **4** — infeasible or invalid input: preparation or the optimizer
  rejected the instance.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.analysis.histogram import delay_histogram, render_histogram
from repro.analysis.metrics import MethodMetrics, ratio_row
from repro.analysis.report import Table, density_map_text
from repro.experiments import run_table2
from repro.ispd.suite import SUITE, spec_for
from repro.ispd.synthetic import generate
from repro.ispd.writer import write_ispd08
from repro.pipeline import compare, prepare, run_method
from repro.utils.logging import configure_cli_logging

# ``repro run`` exit codes — see the module docstring and README.
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_OVERFLOW = 3
EXIT_INFEASIBLE = 4


def _parse_hostport(text: str):
    """``HOST:PORT`` -> ``(host, port)``, or ``None`` when malformed."""
    host, _, port_text = text.rpartition(":")
    if host and port_text.isdigit():
        return host, int(port_text)
    return None


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0, help="net-count scale factor")
    parser.add_argument("--ratio", type=float, default=0.5, help="critical ratio in percent (paper: 0.5)")
    parser.add_argument("-v", "--verbose", action="store_true")


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable tracing and write spans as JSON-lines to PATH",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable metrics and write a Prometheus-style dump to PATH",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="enable convergence diagnostics and append a run-ledger entry "
             "(JSON-lines) to PATH; inspect with 'repro obs show PATH'",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Critical-path incremental layer assignment (DAC'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("gen", help="generate synthetic ISPD'08 benchmark files")
    p_gen.add_argument("names", nargs="+", help="benchmark names, or 'all'")
    p_gen.add_argument("--out", default=".", help="output directory")
    p_gen.add_argument("--scale", type=float, default=1.0)
    p_gen.add_argument("-v", "--verbose", action="store_true")

    p_run = sub.add_parser("run", help="run one optimizer on one benchmark")
    p_run.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_run.add_argument(
        "--method", default="sdp", choices=["sdp", "ilp", "tila", "tila+flow"]
    )
    p_run.add_argument(
        "--routes-out", default=None,
        help="write the optimized solution in ISPD'08 routing format",
    )
    p_run.add_argument(
        "--workers", type=int, default=0,
        help="solve partition leaves in a process pool; only the sdp/ilp "
             "methods parallelize — ignored (with a warning) for tila/tila+flow",
    )
    p_run.add_argument(
        "--exec", dest="exec_backend", default="pool",
        choices=["pool", "dist", "batch", "seq"],
        help="leaf-solve execution backend: 'pool' (static process pool), "
             "'dist' (fault-tolerant work-stealing fabric), 'batch' "
             "(in-process vectorized ADMM over shape-bucketed stacks; sdp "
             "method only), or 'seq' (single-threaded reference); all four "
             "produce bit-identical assignments at any --workers",
    )
    p_run.add_argument(
        "--dist-listen", default=None, metavar="HOST:PORT",
        help="with --exec dist: also accept remote workers on this address "
             "(authkey read from the REPRO_DIST_AUTHKEY env var; join with "
             "'repro dist-worker --connect HOST:PORT')",
    )
    p_run.add_argument(
        "--router-rounds", type=int, default=0, metavar="N",
        help="global-router negotiation rounds (0 = RouterConfig default)",
    )
    p_run.add_argument(
        "--maze-expansion-limit", type=int, default=0, metavar="N",
        help="abort a maze reroute search after N expansions and keep the "
             "net's previous route (0 = RouterConfig default)",
    )
    _add_observability(p_run)
    _add_common(p_run)

    p_cmp = sub.add_parser("compare", help="TILA vs SDP on one benchmark")
    p_cmp.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_cmp.add_argument("--histogram", action="store_true", help="print Fig.1-style pin-delay histograms")
    _add_common(p_cmp)

    p_t2 = sub.add_parser("table2", help="regenerate Table 2 (all 15 benchmarks)")
    p_t2.add_argument("--benchmarks", default="", help="comma-separated subset")
    _add_common(p_t2)

    p_den = sub.add_parser("density", help="routing density map (Fig. 3(b))")
    p_den.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_den.add_argument("--scale", type=float, default=1.0)
    p_den.add_argument("-v", "--verbose", action="store_true")

    p_eval = sub.add_parser(
        "evaluate", help="score a routing solution (contest-evaluator style)"
    )
    p_eval.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_eval.add_argument("--routes", required=True, help="solution file to score")
    p_eval.add_argument("--via-cost", type=float, default=1.0)
    p_eval.add_argument("--scale", type=float, default=1.0)
    p_eval.add_argument("-v", "--verbose", action="store_true")

    p_srv = sub.add_parser(
        "serve",
        help="resident batch job server (POST /v1/assign, GET /metrics)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8181,
                       help="listen port (0 picks an ephemeral port)")
    p_srv.add_argument("--max-queue", type=int, default=32,
                       help="bounded queue depth; beyond it requests get 429")
    p_srv.add_argument("--max-batch", type=int, default=8,
                       help="max same-signature jobs served by one engine run")
    p_srv.add_argument("--engine-cache", type=int, default=4,
                       help="resident warm engines kept (LRU)")
    p_srv.add_argument("--default-deadline-ms", type=float, default=120000.0,
                       help="deadline applied to jobs that do not set one")
    p_srv.add_argument("--max-scale", type=float, default=1.0,
                       help="largest per-request benchmark scale admitted")
    p_srv.add_argument("--max-workers", type=int, default=4,
                       help="largest per-request worker count admitted")
    p_srv.add_argument(
        "--dist-listen", default=None, metavar="HOST:PORT",
        help="accept remote dist workers for '--exec dist' requests on "
             "this address (authkey from REPRO_DIST_AUTHKEY; join with "
             "'repro dist-worker --connect HOST:PORT')",
    )
    p_srv.add_argument(
        "--fleet-shard-id", default=None, metavar="ID",
        help="this server's shard id in a fleet (e.g. s0); required with "
             "--replica-listen / --replica-peer",
    )
    p_srv.add_argument(
        "--replica-listen", default=None, metavar="HOST:PORT",
        help="accept warm-state replicas from fleet peers on this address "
             "(authkey from REPRO_FLEET_AUTHKEY)",
    )
    p_srv.add_argument(
        "--replica-peer", action="append", default=None,
        metavar="ID=HOST:PORT",
        help="a fleet peer's shard id and replica address; repeat for "
             "every shard INCLUDING this one (all shards must name the "
             "identical membership so their hash rings agree)",
    )
    p_srv.add_argument("--fleet-vnodes", type=int, default=64,
                       help="virtual nodes per shard on the hash ring")
    p_srv.add_argument("-v", "--verbose", action="store_true")

    p_gw = sub.add_parser(
        "gateway",
        help="fleet gateway: shard /v1/assign and /v1/eco over resident "
             "servers by consistent hash, with a digest result cache and "
             "failover to the ring's next live shard",
    )
    p_gw.add_argument("--host", default="127.0.0.1")
    p_gw.add_argument("--port", type=int, default=8282,
                      help="listen port (0 picks an ephemeral port)")
    p_gw.add_argument(
        "--shard", action="append", default=None, metavar="ID=URL",
        dest="shards", required=True,
        help="a backend shard, e.g. s0=http://127.0.0.1:8181; repeat per "
             "shard — ids (sorted) define the hash ring",
    )
    p_gw.add_argument("--vnodes", type=int, default=64,
                      help="virtual nodes per shard on the hash ring")
    p_gw.add_argument("--cache-capacity", type=int, default=256,
                      help="result-cache entries kept (LRU); 0 disables")
    p_gw.add_argument("--max-inflight", type=int, default=8,
                      help="per-shard in-flight request cap; beyond it "
                           "requests queue, then get 429")
    p_gw.add_argument("--max-waiting", type=int, default=32,
                      help="per-shard queued-waiter cap behind "
                           "--max-inflight")
    p_gw.add_argument("--health-interval", type=float, default=1.0,
                      help="seconds between /readyz health sweeps")
    p_gw.add_argument("--timeout", type=float, default=300.0,
                      help="per-request upstream timeout in seconds")
    p_gw.add_argument("-v", "--verbose", action="store_true")

    p_bsv = sub.add_parser(
        "bench-serve",
        help="replay assignment requests against a server at a target QPS "
             "and append a run-ledger entry with latency percentiles",
    )
    p_bsv.add_argument("--benchmark", default="adaptec1", choices=sorted(SUITE))
    p_bsv.add_argument("--method", default="sdp",
                       choices=["sdp", "ilp", "tila", "tila+flow"])
    p_bsv.add_argument("--workers", type=int, default=0)
    p_bsv.add_argument(
        "--exec", dest="exec_backend", default="pool",
        choices=["pool", "dist", "batch", "seq"],
        help="execution backend requested from the server (and used by "
             "--verify's local run)",
    )
    p_bsv.add_argument("--qps", type=float, default=8.0,
                       help="open-loop request rate of the load phase")
    p_bsv.add_argument("--requests", type=int, default=24,
                       help="requests sent in the load phase")
    p_bsv.add_argument("--concurrency", type=int, default=8,
                       help="max in-flight requests in the load phase")
    p_bsv.add_argument("--warmup", type=int, default=3,
                       help="sequential warm requests measured before load")
    p_bsv.add_argument("--url", default=None,
                       help="existing server (http://host:port); default "
                            "spins up an in-process server")
    p_bsv.add_argument("--verify", action="store_true",
                       help="also solve the problem in-process via the run "
                            "path and require bit-identical assignments")
    p_bsv.add_argument("--ledger", default=None, metavar="PATH",
                       help="append the campaign as a run-ledger entry")
    p_bsv.add_argument("--timeout", type=float, default=300.0,
                       help="per-request client timeout in seconds")
    p_bsv.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable tracing for the campaign and export every span "
             "(client, server, engine, workers) as JSON-lines to PATH; "
             "inspect with 'repro obs trace show PATH'",
    )
    p_bsv.add_argument(
        "--dist-listen", default=None, metavar="HOST:PORT",
        help="with --exec dist: the in-process server also accepts remote "
             "workers on this address (authkey from REPRO_DIST_AUTHKEY)",
    )
    p_bsv.add_argument(
        "--eco-rounds", type=int, default=0, metavar="N",
        help="after warm-up, apply N chained ECO deltas (worst-k releases) "
             "through POST /v1/eco with correctly advancing state epochs",
    )
    p_bsv.add_argument(
        "--eco-release-k", type=int, default=4, metavar="K",
        help="worst-k nets released per --eco-rounds delta (default 4)",
    )
    p_bsv.add_argument(
        "--gateway", action="store_true",
        help="fleet mode: front the campaign with an in-process repro "
             "gateway sharding over --shards resident servers, and write "
             "a fleet:<method> ledger entry with cache/failover stats",
    )
    p_bsv.add_argument("--shards", type=int, default=2, metavar="N",
                       help="shard servers behind the --gateway (default 2)")
    p_bsv.add_argument(
        "--failover-requests", type=int, default=2, metavar="N",
        help="with --gateway: after the load phase, drain the signature's "
             "owning shard and send N cache-bypassing probes that must "
             "fail over bit-identically (default 2; 0 disables)",
    )
    p_bsv.add_argument("--cache-capacity", type=int, default=256,
                       help="gateway result-cache entries (fleet mode)")
    _add_common(p_bsv)

    p_clo = sub.add_parser(
        "closure",
        help="timing-closure loop: baseline solve, then worst-k release "
             "ECO rounds until the Max(Tcp) gain dries up",
    )
    p_clo.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_clo.add_argument("--method", default="sdp", choices=["sdp", "ilp"])
    p_clo.add_argument("--workers", type=int, default=0)
    p_clo.add_argument(
        "--exec", dest="exec_backend", default="seq",
        choices=["pool", "dist", "batch", "seq"],
        help="leaf-solve backend of the baseline and every ECO round",
    )
    p_clo.add_argument(
        "--release-k", type=int, default=4, metavar="K",
        help="worst-k nets released per round (default 4)",
    )
    p_clo.add_argument(
        "--max-rounds", type=int, default=5, metavar="N",
        help="round budget (default 5)",
    )
    p_clo.add_argument(
        "--min-gain", type=float, default=0.001, metavar="FRAC",
        help="stop once a round's relative Max(Tcp) gain drops below this "
             "(default 0.001)",
    )
    p_clo.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append one closure:<method> run-ledger entry per round",
    )
    p_clo.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable tracing and export the closure span tree "
             "(closure.baseline + one closure.round per round) to PATH",
    )
    _add_common(p_clo)

    p_swp = sub.add_parser(
        "sweep",
        help="knob-grid sweep (partition size x alpha x rho x ratio) with "
             "a quality-vs-runtime Pareto frontier in the run ledger",
    )
    p_swp.add_argument("--benchmark", required=True, choices=sorted(SUITE))
    p_swp.add_argument("--method", default="sdp", choices=["sdp", "ilp"])
    p_swp.add_argument("--workers", type=int, default=0)
    p_swp.add_argument(
        "--exec", dest="exec_backend", default="seq",
        choices=["pool", "dist", "batch", "seq"],
    )
    p_swp.add_argument(
        "--partition-sizes", default="10", metavar="N[,N...]",
        help="max segments per partition leaf (comma-separated)",
    )
    p_swp.add_argument(
        "--alphas", default="2.0", metavar="A[,A...]",
        help="criticality exponents (the paper's timing-weight alpha)",
    )
    p_swp.add_argument(
        "--rhos", default="1.0", metavar="R[,R...]",
        help="ADMM rho values",
    )
    p_swp.add_argument(
        "--ratios", default="0.5", metavar="PCT[,PCT...]",
        help="release ratios in percent, like --ratio (default 0.5)",
    )
    p_swp.add_argument("--scale", type=float, default=1.0,
                       help="net-count scale factor")
    p_swp.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append one sweep:<method> run-ledger entry per grid point",
    )
    p_swp.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable tracing and export one sweep.point span per grid "
             "point to PATH",
    )
    p_swp.add_argument("-v", "--verbose", action="store_true")

    p_dw = sub.add_parser(
        "dist-worker",
        help="join a coordinator started with --exec dist --dist-listen "
             "and serve leaf solves until it shuts the fabric down",
    )
    p_dw.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator listen address (its --dist-listen value)",
    )
    p_dw.add_argument(
        "--id", default=None,
        help="worker id shown in coordinator logs/metrics "
             "(default: remote-<pid>)",
    )
    p_dw.add_argument(
        "--retry-seconds", type=float, default=60.0, metavar="S",
        help="keep retrying a refused connection for this long — the "
             "coordinator only listens once its first parallel solve "
             "starts (default: 60, 0 = one attempt)",
    )
    p_dw.add_argument("-v", "--verbose", action="store_true")

    p_obs = sub.add_parser(
        "obs", help="run-ledger diagnostics (show / diff / check)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_show = obs_sub.add_parser(
        "show", help="render one ledger entry (convergence attribution)"
    )
    p_show.add_argument("ledger", help="run-ledger file (JSON-lines)")
    p_show.add_argument(
        "--entry", type=int, default=-1,
        help="entry index, python-style (default: -1, the latest)",
    )
    p_show.add_argument("-v", "--verbose", action="store_true")

    p_diff = obs_sub.add_parser("diff", help="compare two ledger entries")
    p_diff.add_argument("ledger_a", help="baseline ledger file")
    p_diff.add_argument("ledger_b", help="comparison ledger file")
    p_diff.add_argument("--entry-a", type=int, default=-1)
    p_diff.add_argument("--entry-b", type=int, default=-1)
    p_diff.add_argument("-v", "--verbose", action="store_true")

    p_check = obs_sub.add_parser(
        "check",
        help="regression gate: exit non-zero when the latest entry regresses "
             "past the thresholds versus the baseline ledger",
    )
    p_check.add_argument("ledger", help="current run-ledger file")
    p_check.add_argument(
        "--baseline", required=True,
        help="baseline ledger; the latest entry matching the current "
             "benchmark+method is compared",
    )
    p_check.add_argument("--entry", type=int, default=-1)
    p_check.add_argument(
        "--max-avg-tcp-regression", type=float, default=0.02, metavar="FRAC",
        help="max tolerated relative final Avg(Tcp) increase (default 0.02)",
    )
    p_check.add_argument(
        "--max-max-tcp-regression", type=float, default=0.05, metavar="FRAC",
        help="max tolerated relative final Max(Tcp) increase (default 0.05)",
    )
    p_check.add_argument(
        "--max-iterations-regression", type=float, default=0.5, metavar="FRAC",
        help="max tolerated relative solver-iterations-p90 increase (default 0.5)",
    )
    p_check.add_argument(
        "--max-nonconverged-increase", type=float, default=0.10, metavar="FRAC",
        help="max tolerated absolute increase of the non-converged partition "
             "fraction (default 0.10)",
    )
    p_check.add_argument(
        "--max-runtime-regression", type=float, default=None, metavar="FRAC",
        help="max tolerated relative runtime increase (default: not gated — "
             "wall-clock is machine-dependent)",
    )
    p_check.add_argument(
        "--max-serve-p95-regression", type=float, default=None, metavar="FRAC",
        help="max tolerated relative serving p95 latency increase for "
             "bench-serve entries (default: not gated)",
    )
    p_check.add_argument(
        "--min-warm-speedup", type=float, default=None, metavar="X",
        help="fail unless the current bench-serve entry's cold/warm "
             "latency ratio is at least X (default: not gated)",
    )
    p_check.add_argument(
        "--max-via-overflow-increase", type=float, default=None, metavar="N",
        help="max tolerated absolute increase of final via overflow "
             "(default: not gated; 0 means 'no worse than baseline')",
    )
    p_check.add_argument(
        "--max-dirty-fraction", type=float, default=None, metavar="FRAC",
        help="fail when the current ECO entry re-solved more than this "
             "fraction of its partition leaves (absolute ceiling on "
             "eco.dirty_fraction; default: not gated)",
    )
    p_check.add_argument(
        "--min-cache-hit-rate", type=float, default=None, metavar="FRAC",
        help="fail unless the current fleet entry's gateway cache hit "
             "rate is at least FRAC (absolute floor on "
             "serving.fleet.cache_hit_rate; default: not gated)",
    )
    p_check.add_argument(
        "--max-failover-cold-starts", type=float, default=None, metavar="N",
        help="fail when the current fleet entry counts more than N "
             "failover cold starts (absolute ceiling on "
             "serving.fleet.failover_cold_starts; 0 means every failover "
             "must seed warm from a replica; default: not gated)",
    )
    p_check.add_argument("-v", "--verbose", action="store_true")

    p_trace = obs_sub.add_parser(
        "trace",
        help="analyze exported trace files (show / critical / summary)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_tshow = trace_sub.add_parser(
        "show", help="waterfall of one trace's span tree"
    )
    p_tshow.add_argument("trace_file", help="span file (JSON-lines)")
    p_tshow.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id (prefix ok); default: the slowest trace in the file",
    )
    p_tshow.add_argument("-v", "--verbose", action="store_true")

    p_tcrit = trace_sub.add_parser(
        "critical",
        help="critical path of one trace: longest child chain from the "
             "root, with per-span self-time vs child-time",
    )
    p_tcrit.add_argument("trace_file", help="span file (JSON-lines)")
    p_tcrit.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id (prefix ok); default: the slowest trace in the file",
    )
    p_tcrit.add_argument("-v", "--verbose", action="store_true")

    p_tsum = trace_sub.add_parser(
        "summary",
        help="aggregate spans by name across every trace in the file",
    )
    p_tsum.add_argument("trace_file", help="span file (JSON-lines)")
    p_tsum.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every span carries a trace_id, every "
             "parent resolves, and each trace forms a single tree",
    )
    p_tsum.add_argument("-v", "--verbose", action="store_true")

    return parser


def _cmd_gen(args: argparse.Namespace) -> int:
    names = sorted(SUITE) if args.names == ["all"] else args.names
    os.makedirs(args.out, exist_ok=True)
    for name in names:
        if name not in SUITE:
            print(f"unknown benchmark {name!r}", file=sys.stderr)
            return 2
        bench = generate(spec_for(name, scale=args.scale))
        path = os.path.join(args.out, f"{name}.gr")
        write_ispd08(bench, path)
        print(f"wrote {path} ({bench.num_nets} nets, "
              f"{bench.grid.nx_tiles}x{bench.grid.ny_tiles}x{bench.stack.num_layers})")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core.engine import CPLAConfig

    # Fail on an unwritable output path now, not after the optimizer ran.
    for path in (args.trace_out, args.metrics_out, args.ledger):
        if path:
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as exc:
                print(f"cannot write {path}: {exc}", file=sys.stderr)
                return 2
    run_trace_id = None
    run_root_span = None
    if args.trace_out:
        obs.tracer.enable()
        # One trace per run: every span of this process (and, via context
        # propagation, of its pool/dist workers) shares this trace id and
        # parents under a single root span — so the exported file passes
        # the `repro obs trace summary --check` connectivity gate.
        run_trace_id = obs.tracer.new_trace_id()
        run_root_span = obs.tracer.start_span(
            "run",
            ctx=obs.tracer.TraceContext(run_trace_id),
            benchmark=args.benchmark,
            method=args.method,
        )
        obs.tracer.attach(
            obs.tracer.TraceContext(run_trace_id, run_root_span.id)
        )
    if args.metrics_out:
        obs.metrics.enable()
    if args.ledger:
        obs.convergence.enable()
    cpla_config = None
    if args.exec_backend == "batch" and args.method != "sdp":
        print(
            f"--exec batch requires --method sdp (the batched kernels only "
            f"cover the SDP solver), got method {args.method!r}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.method in ("sdp", "ilp"):
        dist_config = None
        if args.exec_backend in ("batch", "seq"):
            if args.workers:
                print(
                    f"warning: --workers has no effect with --exec "
                    f"{args.exec_backend}; the backend runs in-process",
                    file=sys.stderr,
                )
            if args.dist_listen:
                print(
                    "warning: --dist-listen only applies with --exec dist; "
                    "ignored",
                    file=sys.stderr,
                )
        elif args.exec_backend == "dist":
            if args.workers < 1:
                print(
                    "warning: --exec dist parallelizes nothing without "
                    "--workers >= 1; running sequentially",
                    file=sys.stderr,
                )
            if args.dist_listen:
                address = _parse_hostport(args.dist_listen)
                if address is None:
                    print(
                        f"--dist-listen must look like HOST:PORT, got "
                        f"{args.dist_listen!r}",
                        file=sys.stderr,
                    )
                    return EXIT_USAGE
                authkey = os.environ.get("REPRO_DIST_AUTHKEY", "")
                if not authkey:
                    print(
                        "--dist-listen requires the REPRO_DIST_AUTHKEY env "
                        "var (shared secret remote workers authenticate with)",
                        file=sys.stderr,
                    )
                    return EXIT_USAGE
                from repro.dist.fabric import DistFabricConfig

                dist_config = DistFabricConfig(
                    listen=address, authkey=authkey.encode("utf-8")
                )
        elif args.dist_listen:
            print(
                "warning: --dist-listen only applies with --exec dist; ignored",
                file=sys.stderr,
            )
        if args.workers or args.exec_backend != "pool":
            cpla_config = CPLAConfig(
                workers=args.workers,
                exec_backend=args.exec_backend,
                dist=dist_config,
            )
    elif args.workers or args.exec_backend != "pool":
        print(
            f"warning: --workers only parallelizes the sdp/ilp methods "
            f"(likewise --exec); ignored for method {args.method!r}",
            file=sys.stderr,
        )
    router_config = None
    if args.router_rounds or args.maze_expansion_limit:
        from repro.route.router import RouterConfig

        kwargs = {}
        if args.router_rounds:
            kwargs["rounds"] = args.router_rounds
        if args.maze_expansion_limit:
            kwargs["maze_expansion_limit"] = args.maze_expansion_limit
        try:
            router_config = RouterConfig(**kwargs)
        except ValueError as exc:
            print(f"bad router configuration: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        bench = prepare(
            args.benchmark, scale=args.scale, router_config=router_config
        )
        report = run_method(
            bench, args.method, critical_ratio=args.ratio / 100.0,
            cpla_config=cpla_config,
        )
    except (ValueError, KeyError) as exc:
        print(f"infeasible or invalid input: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    table = Table(["metric", "initial", "final"])
    table.add_row("Avg(Tcp)", report.initial_avg_tcp, report.final_avg_tcp)
    table.add_row("Max(Tcp)", report.initial_max_tcp, report.final_max_tcp)
    table.add_row("via overflow", report.initial_via_overflow, report.final_via_overflow)
    table.add_row("via count", report.initial_vias, report.final_vias)
    print(f"{args.benchmark} / {report.method} "
          f"({len(report.critical_net_ids)} nets released)")
    print(table.render())
    print(f"runtime: {report.runtime:.2f}s")
    from repro.ispd.request import assignment_digest

    print(f"assignment digest: {assignment_digest(bench)}")
    if args.trace_out or args.metrics_out or args.ledger:
        print()
        print(report.observability_summary())
    trace_info = None
    if args.trace_out:
        run_root_span.finish()
        count = obs.tracer.export_jsonl(args.trace_out)
        trace_info = {
            "trace_id": run_trace_id,
            "file": args.trace_out,
            "spans": count,
        }
        print(f"wrote {count} spans to {args.trace_out} "
              f"(trace {run_trace_id})")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(obs.metrics.registry().render_prometheus())
        print(f"wrote metrics to {args.metrics_out}")
    if args.ledger:
        entry = obs.ledger.build_entry(
            report,
            config={
                "benchmark": args.benchmark,
                "method": args.method,
                "scale": args.scale,
                "ratio_percent": args.ratio,
                "workers": args.workers,
                "exec": args.exec_backend,
                "router_rounds": args.router_rounds,
                "maze_expansion_limit": args.maze_expansion_limit,
            },
            trace=trace_info,
        )
        obs.ledger.append_entry(args.ledger, entry)
        print(f"appended run-ledger entry to {args.ledger}")
    if args.routes_out:
        from repro.ispd.routes import write_routes

        write_routes(bench, args.routes_out)
        print(f"wrote solution to {args.routes_out}")
    if report.final_via_overflow > 0:
        print(
            f"result carries via-capacity overflow "
            f"({report.final_via_overflow} tracks); exit {EXIT_OVERFLOW}",
            file=sys.stderr,
        )
        return EXIT_OVERFLOW
    return EXIT_OK


def _cmd_compare(args: argparse.Namespace) -> int:
    result = compare(args.benchmark, critical_ratio=args.ratio / 100.0, scale=args.scale)
    rows = [MethodMetrics.from_report(r) for r in (result.baseline, result.ours)]
    table = Table(["method", "Avg(Tcp)", "Max(Tcp)", "OV#", "via#", "CPU(s)"])
    for m in rows:
        table.add_row(m.method, m.avg_tcp, m.max_tcp, m.via_overflow, m.vias, m.cpu_seconds)
    ratios = ratio_row(rows[1], rows[0])
    table.add_row(
        "ratio",
        ratios["avg_tcp"], ratios["max_tcp"],
        ratios["via_overflow"], ratios["vias"], ratios["cpu_seconds"],
    )
    print(table.render())
    if args.histogram:
        for rep in (result.baseline, result.ours):
            edges, counts = delay_histogram(rep.final_pin_delays)
            print()
            print(render_histogram(edges, counts, title=f"pin delays: {rep.method}"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    names = (
        [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        if args.benchmarks
        else sorted(SUITE)
    )
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        print(f"unknown benchmarks: {unknown}", file=sys.stderr)
        return 2
    result = run_table2(names, ratio=args.ratio / 100.0, scale=args.scale)
    print(result.rendered)
    return 0


def _cmd_density(args: argparse.Namespace) -> int:
    bench = prepare(args.benchmark, scale=args.scale)
    print(density_map_text(bench.grid.density_map()))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.ispd.evaluator import evaluate_solution
    from repro.ispd.suite import load_benchmark

    bench = load_benchmark(args.benchmark, scale=args.scale)
    result = evaluate_solution(bench, routes=args.routes, via_cost=args.via_cost)
    print(result.summary())
    return 0 if result.legal else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import ledger as run_ledger

    if args.obs_command == "trace":
        return _cmd_obs_trace(args)
    try:
        if args.obs_command == "show":
            entries = run_ledger.read_entries(args.ledger)
            print(run_ledger.render_entry(
                run_ledger.select_entry(entries, args.entry)
            ))
            return 0
        if args.obs_command == "diff":
            entry_a = run_ledger.select_entry(
                run_ledger.read_entries(args.ledger_a), args.entry_a
            )
            entry_b = run_ledger.select_entry(
                run_ledger.read_entries(args.ledger_b), args.entry_b
            )
            print(run_ledger.diff_entries(entry_a, entry_b))
            return 0
        # check: gate the latest entry against the matching baseline entry.
        current = run_ledger.select_entry(
            run_ledger.read_entries(args.ledger), args.entry
        )
        baseline = run_ledger.match_baseline(
            run_ledger.read_entries(args.baseline), current
        )
        if baseline is None:
            print(
                f"no baseline entry for {current.get('benchmark')}/"
                f"{current.get('method')} in {args.baseline}",
                file=sys.stderr,
            )
            return 2
    except (OSError, ValueError) as exc:
        print(f"obs {args.obs_command}: {exc}", file=sys.stderr)
        return 2
    thresholds = run_ledger.CheckThresholds(
        avg_tcp=args.max_avg_tcp_regression,
        max_tcp=args.max_max_tcp_regression,
        iterations_p90=args.max_iterations_regression,
        nonconverged_fraction=args.max_nonconverged_increase,
        runtime=args.max_runtime_regression,
        serve_p95_latency=args.max_serve_p95_regression,
        min_warm_speedup=args.min_warm_speedup,
        via_overflow_increase=args.max_via_overflow_increase,
        max_dirty_fraction=args.max_dirty_fraction,
        min_cache_hit_rate=args.min_cache_hit_rate,
        max_failover_cold_starts=args.max_failover_cold_starts,
    )
    violations = run_ledger.check_entries(baseline, current, thresholds)
    label = f"{current.get('benchmark')}/{current.get('method')}"
    if violations:
        print(f"obs check FAILED for {label}:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        pointer = run_ledger.trace_pointer(current)
        if pointer:
            print(f"  {pointer}", file=sys.stderr)
        return 1
    print(
        f"obs check ok: {label} within thresholds of baseline "
        f"{baseline.get('created', '?')} (commit "
        f"{baseline.get('fingerprint', {}).get('commit', '?')})"
    )
    return 0


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    from repro.obs import traceview

    try:
        traces = traceview.assemble(traceview.load_spans(args.trace_file))
        if args.trace_command == "summary":
            violations = traceview.check(traces) if args.check else None
            print(traceview.render_summary(traces, violations))
            return 1 if violations else 0
        trace = traceview.select_trace(traces, args.trace_id)
        if args.trace_command == "show":
            print(traceview.render_tree(trace))
        else:  # critical
            print(traceview.render_critical(trace))
    except (OSError, ValueError) as exc:
        print(f"obs trace {args.trace_command}: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ServeConfig, run_server

    dist_listen, dist_authkey, code = _dist_listen_args(args, "serve")
    if code is not None:
        return code
    fleet_authkey = None
    replica_listen = None
    fleet_peers = None
    if args.replica_listen or args.replica_peer:
        if not args.fleet_shard_id:
            print(
                "serve: --replica-listen/--replica-peer require "
                "--fleet-shard-id",
                file=sys.stderr,
            )
            return EXIT_USAGE
        secret = os.environ.get("REPRO_FLEET_AUTHKEY", "")
        if not secret:
            print(
                "serve: fleet replication requires the REPRO_FLEET_AUTHKEY "
                "env var (shared secret peers authenticate with)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        fleet_authkey = secret.encode("utf-8")
        if args.replica_listen:
            replica_listen = _parse_hostport(args.replica_listen)
            if replica_listen is None:
                print(
                    f"--replica-listen must look like HOST:PORT, got "
                    f"{args.replica_listen!r}",
                    file=sys.stderr,
                )
                return EXIT_USAGE
        if args.replica_peer:
            fleet_peers = {}
            for spec in args.replica_peer:
                shard_id, _, addr_text = spec.partition("=")
                address = _parse_hostport(addr_text)
                if not shard_id or address is None:
                    print(
                        f"--replica-peer must look like ID=HOST:PORT, got "
                        f"{spec!r}",
                        file=sys.stderr,
                    )
                    return EXIT_USAGE
                fleet_peers[shard_id] = address
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            engine_cache=args.engine_cache,
            default_deadline_ms=args.default_deadline_ms,
            max_scale=args.max_scale,
            max_workers=args.max_workers,
            dist_listen=dist_listen,
            dist_authkey=dist_authkey,
            fleet_shard_id=args.fleet_shard_id,
            replica_listen=replica_listen,
            fleet_authkey=fleet_authkey,
            fleet_peers=fleet_peers,
            fleet_vnodes=args.fleet_vnodes,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        return asyncio.run(run_server(config))
    except KeyboardInterrupt:  # signal handler unavailable (rare platforms)
        return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.fleet import GatewayConfig, run_gateway

    shards = {}
    for spec in args.shards:
        shard_id, _, url = spec.partition("=")
        trimmed = url
        for prefix in ("http://", "https://"):
            if trimmed.startswith(prefix):
                trimmed = trimmed[len(prefix):]
        address = _parse_hostport(trimmed.rstrip("/"))
        if not shard_id or address is None:
            print(
                f"--shard must look like ID=http://HOST:PORT, got {spec!r}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        shards[shard_id] = address
    try:
        config = GatewayConfig(
            shards=shards,
            host=args.host,
            port=args.port,
            vnodes=args.vnodes,
            cache_capacity=args.cache_capacity,
            max_inflight_per_shard=args.max_inflight,
            max_waiting_per_shard=args.max_waiting,
            health_interval_seconds=args.health_interval,
            request_timeout_seconds=args.timeout,
        )
    except ValueError as exc:
        print(f"gateway: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        return asyncio.run(run_gateway(config))
    except KeyboardInterrupt:
        return 0


def _cmd_dist_worker(args: argparse.Namespace) -> int:
    from multiprocessing import AuthenticationError

    from repro.dist.worker import connect_and_serve

    address = _parse_hostport(args.connect)
    if address is None:
        print(
            f"--connect must look like HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    authkey = os.environ.get("REPRO_DIST_AUTHKEY", "")
    if not authkey:
        print(
            "dist-worker: set REPRO_DIST_AUTHKEY to the coordinator's "
            "shared secret",
            file=sys.stderr,
        )
        return EXIT_USAGE
    # The coordinator binds its listener lazily, when the first parallel
    # solve starts — a worker launched alongside it races that moment, so
    # a refused connection is retried for a bounded window.
    deadline = time.monotonic() + max(0.0, args.retry_seconds)
    try:
        while True:
            try:
                connect_and_serve(
                    *address, authkey.encode("utf-8"), worker_id=args.id
                )
                return 0
            except ConnectionRefusedError as exc:
                if time.monotonic() >= deadline:
                    print(f"dist-worker: {exc}", file=sys.stderr)
                    return 1
                time.sleep(0.5)
    except KeyboardInterrupt:
        return 0
    except (OSError, EOFError, AuthenticationError) as exc:
        print(f"dist-worker: {exc}", file=sys.stderr)
        return 1


def _dist_listen_args(args: argparse.Namespace, command: str):
    """Validated ``(listen, authkey, error_code)`` for a --dist-listen flag.

    ``error_code`` is ``None`` on success (including the flag being absent);
    otherwise it is the exit code to return after the printed diagnostic.
    """
    if not getattr(args, "dist_listen", None):
        return None, None, None
    address = _parse_hostport(args.dist_listen)
    if address is None:
        print(
            f"--dist-listen must look like HOST:PORT, got "
            f"{args.dist_listen!r}",
            file=sys.stderr,
        )
        return None, None, EXIT_USAGE
    authkey = os.environ.get("REPRO_DIST_AUTHKEY", "")
    if not authkey:
        print(
            f"{command}: --dist-listen requires the REPRO_DIST_AUTHKEY env "
            "var (shared secret remote workers authenticate with)",
            file=sys.stderr,
        )
        return None, None, EXIT_USAGE
    return address, authkey.encode("utf-8"), None


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.obs import ledger as run_ledger
    from repro.service import LoadGenConfig, render_summary, run_loadgen

    dist_listen, dist_authkey, code = _dist_listen_args(args, "bench-serve")
    if code is not None:
        return code
    if dist_listen is not None and args.url:
        print(
            "bench-serve: --dist-listen applies to the in-process server; "
            "it cannot reconfigure an existing --url server",
            file=sys.stderr,
        )
        return EXIT_USAGE
    config = LoadGenConfig(
        benchmark=args.benchmark,
        scale=args.scale,
        ratio_percent=args.ratio,
        method=args.method,
        workers=args.workers,
        exec_backend=args.exec_backend,
        qps=args.qps,
        requests=args.requests,
        concurrency=args.concurrency,
        warmup=args.warmup,
        timeout_seconds=args.timeout,
        verify=args.verify,
        url=args.url,
        trace_out=args.trace_out,
        dist_listen=dist_listen,
        dist_authkey=dist_authkey,
        eco_rounds=args.eco_rounds,
        eco_release_k=args.eco_release_k,
        gateway=args.gateway,
        shards=args.shards,
        failover_requests=args.failover_requests,
        cache_capacity=args.cache_capacity,
    )
    if args.gateway and args.url:
        print(
            "bench-serve: --gateway spins up its own in-process fleet; "
            "it cannot be combined with --url",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        result = run_loadgen(config)
    except (RuntimeError, ValueError, OSError) as exc:
        print(f"bench-serve: {exc}", file=sys.stderr)
        return 1
    print(render_summary(result))
    if args.ledger:
        run_ledger.append_entry(args.ledger, result.entry)
        print(f"appended serve-ledger entry to {args.ledger}")
    if not result.passed:
        print("bench-serve FAILED (inconsistent, erroring, or unverified "
              "responses; see summary above)", file=sys.stderr)
        return 1
    return 0


def _traced_root(name: str, trace_out: Optional[str], **attrs):
    """Start a root span for a whole CLI command; returns (span, trace_id).

    Mirrors ``repro run``'s one-trace-per-invocation discipline so the
    exported file passes ``repro obs trace summary --check``.
    """
    from repro import obs

    if not trace_out:
        return None, None
    obs.tracer.enable()
    trace_id = obs.tracer.new_trace_id()
    span = obs.tracer.start_span(
        name, ctx=obs.tracer.TraceContext(trace_id), **attrs
    )
    obs.tracer.attach(obs.tracer.TraceContext(trace_id, span.id))
    return span, trace_id


def _finish_trace(span, trace_id, trace_out: Optional[str]):
    """Finish the root span and export; returns the ledger trace stamp."""
    from repro import obs

    if span is None:
        return None
    span.finish()
    count = obs.tracer.export_jsonl(trace_out)
    print(f"wrote {count} spans to {trace_out} (trace {trace_id})")
    return {"trace_id": trace_id, "file": trace_out, "spans": count}


def _cmd_closure(args: argparse.Namespace) -> int:
    from repro.eco import ClosureConfig, render_closure, run_closure

    try:
        config = ClosureConfig(
            benchmark=args.benchmark,
            scale=args.scale,
            method=args.method,
            critical_ratio=args.ratio / 100.0,
            workers=args.workers,
            exec_backend=args.exec_backend,
            release_k=args.release_k,
            max_rounds=args.max_rounds,
            min_gain=args.min_gain,
        )
    except ValueError as exc:
        print(f"closure: {exc}", file=sys.stderr)
        return EXIT_USAGE
    span, trace_id = _traced_root(
        "closure", args.trace_out,
        benchmark=args.benchmark, method=args.method,
    )
    trace_info = (
        {"trace_id": trace_id, "file": args.trace_out} if span else None
    )
    try:
        result = run_closure(
            config, ledger_path=args.ledger, trace_info=trace_info
        )
    except (ValueError, KeyError) as exc:
        print(f"infeasible or invalid input: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    _finish_trace(span, trace_id, args.trace_out)
    print(render_closure(result))
    if args.ledger:
        print(
            f"appended {len(result.rounds)} closure entries to {args.ledger}"
        )
    return EXIT_OK


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.eco import SweepConfig, render_sweep, run_sweep

    def csv(text: str, cast):
        try:
            values = tuple(cast(t.strip()) for t in text.split(",") if t.strip())
        except ValueError:
            values = ()
        return values

    partition_sizes = csv(args.partition_sizes, int)
    alphas = csv(args.alphas, float)
    rhos = csv(args.rhos, float)
    ratio_pcts = csv(args.ratios, float)
    if not (partition_sizes and alphas and rhos and ratio_pcts):
        print(
            "sweep: --partition-sizes/--alphas/--rhos/--ratios must each "
            "be a non-empty comma-separated list of numbers",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if any(p < 1 for p in partition_sizes):
        print("sweep: partition sizes must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if any(not 0 < r <= 100 for r in ratio_pcts):
        print("sweep: ratios are percentages in (0, 100]", file=sys.stderr)
        return EXIT_USAGE
    config = SweepConfig(
        benchmark=args.benchmark,
        scale=args.scale,
        method=args.method,
        workers=args.workers,
        exec_backend=args.exec_backend,
        partition_sizes=partition_sizes,
        alphas=alphas,
        rhos=rhos,
        ratios=tuple(r / 100.0 for r in ratio_pcts),
    )
    span, trace_id = _traced_root(
        "sweep", args.trace_out,
        benchmark=args.benchmark, method=args.method,
        points=len(config.points()),
    )
    trace_info = (
        {"trace_id": trace_id, "file": args.trace_out} if span else None
    )
    try:
        result = run_sweep(
            config, ledger_path=args.ledger, trace_info=trace_info
        )
    except (ValueError, KeyError) as exc:
        print(f"infeasible or invalid input: {exc}", file=sys.stderr)
        return EXIT_INFEASIBLE
    _finish_trace(span, trace_id, args.trace_out)
    print(render_sweep(result))
    if args.ledger:
        print(
            f"appended {len(result.points)} sweep entries to {args.ledger}"
        )
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_cli_logging(getattr(args, "verbose", False))
    handlers = {
        "gen": _cmd_gen,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "table2": _cmd_table2,
        "density": _cmd_density,
        "evaluate": _cmd_evaluate,
        "obs": _cmd_obs,
        "serve": _cmd_serve,
        "gateway": _cmd_gateway,
        "bench-serve": _cmd_bench_serve,
        "dist-worker": _cmd_dist_worker,
        "closure": _cmd_closure,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
