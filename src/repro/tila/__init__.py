"""TILA baseline (Yu et al., ICCAD'15, ref. [4] of the paper).

TILA is the state-of-the-art the paper compares against: an incremental
layer assignment minimizing the *weighted sum* of segment and via delays
through Lagrangian relaxation of the capacity constraints.  This package
reimplements it at the fidelity the comparison needs (see DESIGN.md):

- :mod:`repro.tila.lagrangian` — multiplier state and subgradient updates;
- :mod:`repro.tila.engine` — the iterative net-by-net tree-DP optimizer,
  with an optional per-edge min-cost-flow legalization pass
  (:mod:`repro.tila.flow`) built on :mod:`repro.solver.mcmf`.

The two properties the paper leans on are preserved: TILA optimizes total
rather than worst-path delay, and its outcome depends on the initial
multiplier values (exposed as ``TILAConfig.initial_multiplier``).
"""

from repro.tila.engine import TILAConfig, TILAEngine
from repro.tila.lagrangian import MultiplierState

__all__ = ["TILAConfig", "TILAEngine", "MultiplierState"]
