"""Per-edge min-cost-flow legalization (TILA's flow engine).

TILA's inner machinery is a min-cost-flow model; here it appears as the
optional legalization pass of the baseline: for every overflowed 2-D edge
carrying critical segments, a transportation problem redistributes those
segments across the edge's layers —

    source --(1)--> segment --(delay delta + prices)--> layer --(cap)--> sink

— which simultaneously respects the edge capacity per layer and minimizes
the delay perturbation.  Multi-G-cell segments are charged a congestion
cost for the *other* edges they cross so a fix here does not create
overflow there.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.grid.graph import Edge2D, GridGraph
from repro.route.net import Net
from repro.route.occupancy import commit_net, release_net
from repro.solver.mcmf import MinCostFlow
from repro.timing.elmore import ElmoreEngine, NetTiming
from repro.tila.lagrangian import MultiplierState
from repro.utils import get_logger

log = get_logger(__name__)

SegRef = Tuple[int, int]  # (net_id, segment_id)


def overflowed_edges_with_critical(
    grid: GridGraph, critical: Sequence[Net]
) -> Dict[Edge2D, List[SegRef]]:
    """Overflowed (edge) -> critical segments crossing it (any layer)."""
    seg_edges: Dict[Edge2D, List[SegRef]] = {}
    for net in critical:
        topo = net.topology
        if topo is None:
            continue
        for seg in topo.segments:
            for edge in seg.edges():
                seg_edges.setdefault(edge, []).append((net.id, seg.id))

    result: Dict[Edge2D, List[SegRef]] = {}
    for edge, refs in seg_edges.items():
        for layer in grid.layers_for_edge(edge):
            if grid.remaining(edge, layer) < 0:
                result[edge] = refs
                break
    return result


def flow_reassign_edge(
    grid: GridGraph,
    engine: ElmoreEngine,
    nets_by_id: Dict[int, Net],
    timings: Dict[int, NetTiming],
    edge: Edge2D,
    refs: Sequence[SegRef],
    multipliers: MultiplierState,
    congestion_cost: float,
) -> Dict[SegRef, int]:
    """Solve the transportation problem for one edge.

    Returns the new layer per segment (complete mapping, including
    unchanged ones).  Does not mutate anything.
    """
    layers = grid.layers_for_edge(edge)
    num_segs = len(refs)
    # Node ids: 0 = source, 1..S = segments, S+1..S+L = layers, last = sink.
    src = 0
    sink = 1 + num_segs + len(layers)
    flow = MinCostFlow(sink + 1)

    for s in range(num_segs):
        flow.add_edge(src, 1 + s, 1, 0.0)

    layer_node = {l: 1 + num_segs + k for k, l in enumerate(layers)}
    for k, layer in enumerate(layers):
        # These segments' own wires are still committed; capacity seen by the
        # flow must give them back.
        occupying = sum(
            1
            for (nid, sid) in refs
            if nets_by_id[nid].topology.segments[sid].layer == layer
        )
        cap = max(grid.remaining(edge, layer), -occupying) + occupying
        flow.add_edge(layer_node[layer], sink, max(cap, 0), 0.0)

    arc_of: Dict[Tuple[int, int], int] = {}
    for s, (nid, sid) in enumerate(refs):
        net = nets_by_id[nid]
        topo = net.topology
        seg = topo.segments[sid]
        cd = timings[nid].downstream_caps.get(sid, 0.0)
        for layer in layers:
            cost = engine.segment_delay(seg, cd, layer=layer)
            cost += _via_delta(engine, topo, timings[nid], sid, layer)
            for other in seg.edges():
                cost += multipliers.wire_price(other, layer)
                if other != edge and grid.remaining(other, layer) <= (
                    1 if seg.layer == layer else 0
                ):
                    cost += congestion_cost
            arc_of[(s, layer)] = flow.add_edge(1 + s, layer_node[layer], 1, cost)

    pushed, _ = flow.min_cost_flow(src, sink)
    assignment: Dict[SegRef, int] = {}
    for s, ref in enumerate(refs):
        chosen = None
        for layer in layers:
            if flow.flow_on(arc_of[(s, layer)]) > 0.5:
                chosen = layer
                break
        if chosen is None:
            # Capacity exhausted: keep the current layer.
            nid, sid = ref
            chosen = nets_by_id[nid].topology.segments[sid].layer
        assignment[ref] = chosen
    if pushed < num_segs:
        log.debug("edge %s: flow placed %d of %d segments", edge, int(pushed), num_segs)
    return assignment


def _via_delta(
    engine: ElmoreEngine, topo, timing: NetTiming, sid: int, layer: int
) -> float:
    """Via delay of segment ``sid`` at ``layer`` against fixed neighbours."""
    cd = timing.downstream_caps
    cost = 0.0
    parent = topo.parent[sid]
    if parent is not None:
        cost += engine.via_delay(
            topo.segments[parent].layer, layer, cd.get(parent, 0.0), cd.get(sid, 0.0)
        )
    for cid in topo.children[sid]:
        cost += engine.via_delay(
            layer, topo.segments[cid].layer, cd.get(sid, 0.0), cd.get(cid, 0.0)
        )
    return cost


def legalize_with_flow(
    grid: GridGraph,
    engine: ElmoreEngine,
    critical: Sequence[Net],
    timings: Dict[int, NetTiming],
    multipliers: MultiplierState,
    congestion_cost: float = 1e6,
) -> int:
    """Run the per-edge flow on every overflowed edge; returns #changes."""
    nets_by_id = {n.id: n for n in critical}
    targets = overflowed_edges_with_critical(grid, critical)
    changes: Dict[int, Dict[int, int]] = {}
    for edge in sorted(targets):
        assignment = flow_reassign_edge(
            grid, engine, nets_by_id, timings, edge, targets[edge],
            multipliers, congestion_cost,
        )
        for (nid, sid), layer in assignment.items():
            if nets_by_id[nid].topology.segments[sid].layer != layer:
                changes.setdefault(nid, {})[sid] = layer

    total = 0
    for nid, seg_layers in changes.items():
        net = nets_by_id[nid]
        release_net(grid, net.topology)
        for sid, layer in seg_layers.items():
            net.topology.segments[sid].layer = layer
            total += 1
        commit_net(grid, net.topology)
    return total
