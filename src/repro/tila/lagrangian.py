"""Lagrangian multiplier state for the TILA baseline.

Capacity constraints are dualized: each (edge, layer) and each (tile, cut)
carries a non-negative price that is added to the assignment costs, and is
updated by projected subgradient steps on the observed overflow:

    mu <- max(0, mu + step * (usage - capacity))

The paper criticizes TILA for its sensitivity to the *initial* multiplier
values; ``initial_multiplier`` seeds every price and is ablated in
``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.grid.graph import Edge2D, GridGraph, Tile


@dataclass
class MultiplierState:
    """Prices on wire tracks and via cuts."""

    initial: float = 0.0
    step: float = 1.0
    wire: Dict[Tuple[Edge2D, int], float] = field(default_factory=dict)
    via: Dict[Tuple[Tile, int], float] = field(default_factory=dict)

    def wire_price(self, edge: Edge2D, layer: int) -> float:
        return self.wire.get((edge, layer), self.initial)

    def via_price(self, tile: Tile, cut: int) -> float:
        return self.via.get((tile, cut), self.initial)

    def via_span_price(self, tile: Tile, lower: int, upper: int) -> float:
        if lower > upper:
            lower, upper = upper, lower
        return sum(self.via_price(tile, cut) for cut in range(lower, upper))

    # -- subgradient update --------------------------------------------------

    def update_from_grid(self, grid: GridGraph, scale: float) -> float:
        """One projected subgradient step against current grid usage.

        ``scale`` converts overflow counts into delay-comparable prices
        (TILA ties it to the average segment delay).  Returns the total
        wire overflow observed, a convergence signal for the caller.
        """
        total_overflow = 0
        for layer in grid.stack:
            orient = "H" if layer.direction.value == "H" else "V"
            for edge in grid.iter_edges(orient):
                over = -grid.remaining(edge, layer.index)
                key = (edge, layer.index)
                if over > 0:
                    total_overflow += over
                    self.wire[key] = max(
                        0.0, self.wire_price(edge, layer.index) + self.step * scale * over
                    )
                elif key in self.wire or self.initial > 0.0:
                    # Decay prices where slack reappeared.
                    self.wire[key] = max(
                        0.0,
                        self.wire_price(edge, layer.index) + self.step * scale * over * 0.5,
                    )
        for tile in grid.iter_tiles():
            for cut in range(1, grid.stack.num_layers):
                used = grid.via_usage_at(tile, cut)
                if used == 0 and (tile, cut) not in self.via and self.initial == 0.0:
                    continue
                over = used - grid.via_capacity(tile, cut)
                key = (tile, cut)
                if over > 0:
                    self.via[key] = max(
                        0.0, self.via_price(tile, cut) + self.step * scale * over
                    )
                elif key in self.via or self.initial > 0.0:
                    self.via[key] = max(
                        0.0, self.via_price(tile, cut) + self.step * scale * over * 0.5
                    )
        return float(total_overflow)
