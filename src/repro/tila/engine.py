"""The TILA baseline engine.

Iterative scheme (ICCAD'15, at the fidelity DESIGN.md documents):

1. Elmore timing of the released nets gives downstream caps;
2. each released net is re-assigned *independently* by the exact tree DP,
   minimizing its **total** delay (sum over all its segments and vias —
   *not* the worst path) plus the current Lagrangian prices;
3. capacity prices are updated by projected subgradient on the observed
   overflow; optionally a per-edge min-cost-flow pass legalizes residual
   overflow (``engine="dp+flow"``);
4. repeat; keep the best solution by total weighted delay.

Because step 2 optimizes the weighted sum, a net's worst path can regress
while its total improves — exactly the TILA weakness (Fig. 1) the paper's
CPLA addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.runreport import IterationStats, RunReport
from repro.ispd.benchmark import Benchmark
from repro.obs import metrics, tracer
from repro.route.net import Net
from repro.route.occupancy import commit_net, release_net
from repro.timing.critical import (
    CriticalitySelector,
    critical_path_stats,
    pin_delay_distribution,
)
from repro.timing.elmore import ElmoreEngine, NetTiming, TimingConfig
from repro.tila.flow import legalize_with_flow
from repro.tila.lagrangian import MultiplierState
from repro.tila.treedp import tree_dp_assign
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class TILAConfig:
    """Knobs of the baseline."""

    critical_ratio: float = 0.005
    max_iterations: int = 6
    engine: str = "dp"  # "dp" or "dp+flow"
    initial_multiplier: float = 0.0
    multiplier_step: float = 1.0
    price_scale_factor: float = 0.02
    patience: int = 2  # stop after this many non-improving iterations
    hard_capacity: bool = True  # forbid full (edge, layer) tracks in the DP
    via_model: str = "linearized"  # "linearized" (faithful) or "exact-dp"

    def __post_init__(self) -> None:
        if self.engine not in ("dp", "dp+flow"):
            raise ValueError(f"unknown TILA engine {self.engine!r}")
        if self.via_model not in ("linearized", "exact-dp"):
            raise ValueError(f"unknown via_model {self.via_model!r}")
        if not 0 < self.critical_ratio <= 1:
            raise ValueError("critical_ratio must be a fraction in (0, 1]")


class TILAEngine:
    """Runs the weighted-sum-delay baseline on a routed, assigned benchmark."""

    def __init__(
        self,
        benchmark: Benchmark,
        config: Optional[TILAConfig] = None,
        timing_config: Optional[TimingConfig] = None,
    ) -> None:
        self.bench = benchmark
        self.grid = benchmark.grid
        self.config = config or TILAConfig()
        self.elmore = ElmoreEngine(benchmark.stack, timing_config)
        self.selector = CriticalitySelector(self.elmore)

    # -- public API ----------------------------------------------------------

    def run(self) -> RunReport:
        with tracer.span(
            "engine.run", benchmark=self.bench.name, method=self.config.engine
        ):
            report = self._run()
        if metrics.is_enabled():
            report.metrics = metrics.registry().as_dict()
        router_stats = getattr(self.bench, "router_stats", None)
        if router_stats:
            report.router = dict(router_stats)
        return report

    def _run(self) -> RunReport:
        cfg = self.config
        report = RunReport(
            benchmark=self.bench.name,
            method="tila" if cfg.engine == "dp" else "tila+flow",
            critical_ratio=cfg.critical_ratio,
        )
        clock = report.clock

        with clock.phase("timing"):
            critical, timings = self.selector.select(self.bench.nets, cfg.critical_ratio)
        report.critical_net_ids = [n.id for n in critical]
        report.initial_avg_tcp, report.initial_max_tcp = critical_path_stats(
            timings, critical
        )
        report.initial_pin_delays = pin_delay_distribution(timings, critical)
        report.initial_via_overflow = self.grid.total_via_overflow()
        report.initial_vias = self.grid.total_vias()

        multipliers = MultiplierState(
            initial=cfg.initial_multiplier, step=cfg.multiplier_step
        )
        best_layers = self._snapshot_layers(critical)
        best_total = self._total_delay(critical)
        stall = 0

        for it in range(cfg.max_iterations):
            metrics.inc("tila.iterations")
            with clock.phase("timing"):
                net_timings = self.elmore.analyze_all(critical)

            with clock.phase("assign"), tracer.span("tila.assign", index=it):
                for net in critical:
                    self._assign_net(net, net_timings[net.id], multipliers)
                metrics.inc("tila.nets_assigned", len(critical))

            if cfg.engine == "dp+flow":
                with clock.phase("flow"):
                    legalize_with_flow(
                        self.grid, self.elmore, critical, net_timings, multipliers
                    )

            with clock.phase("prices"):
                scale = cfg.price_scale_factor * self._delay_scale(net_timings)
                multipliers.update_from_grid(self.grid, scale)

            with clock.phase("timing"):
                total = self._total_delay(critical)
                avg, mx = critical_path_stats(
                    self.elmore.analyze_all(critical), critical
                )
            improved = total < best_total * (1 - 1e-9)
            report.iterations.append(
                IterationStats(
                    index=it,
                    num_partitions=0,
                    num_segments=sum(len(n.topology.segments) for n in critical),
                    avg_tcp=avg,
                    max_tcp=mx,
                    accepted=improved,
                )
            )
            if improved:
                best_total = total
                best_layers = self._snapshot_layers(critical)
                stall = 0
            else:
                stall += 1
                if stall >= cfg.patience:
                    break

        with clock.phase("rollback"):
            self._restore_layers(critical, best_layers)

        with clock.phase("timing"):
            final_timings = self.elmore.analyze_all(critical)
        report.final_avg_tcp, report.final_max_tcp = critical_path_stats(
            final_timings, critical
        )
        report.final_pin_delays = pin_delay_distribution(final_timings, critical)
        report.final_via_overflow = self.grid.total_via_overflow()
        report.final_vias = self.grid.total_vias()
        log.info(
            "%s/TILA: Avg(Tcp) %.1f -> %.1f (%.1f%%), Max(Tcp) %.1f -> %.1f, %.2fs",
            self.bench.name,
            report.initial_avg_tcp, report.final_avg_tcp,
            100 * report.avg_improvement,
            report.initial_max_tcp, report.final_max_tcp,
            report.runtime,
        )
        return report

    # -- per-net subproblem -------------------------------------------------------

    def _assign_net(
        self, net: Net, timing: NetTiming, multipliers: MultiplierState
    ) -> None:
        topo = net.topology
        if topo is None or not topo.segments:
            return
        release_net(self.grid, topo)
        cd = timing.downstream_caps
        engine = self.elmore
        source = net.source

        hard = 1e18 if self.config.hard_capacity else 0.0
        linearized = self.config.via_model == "linearized"
        # Frozen previous-iteration layers: the flow engine of the original
        # TILA cannot carry products x_ij * x_pq, so via costs are linearized
        # against the neighbour's last layer (the paper's criticism (3)).
        frozen = {seg.id: seg.layer for seg in topo.segments}

        def seg_cost(seg, layer: int) -> float:
            # Lagrangian pricing handles *soft* contention (initial-value
            # sensitive, as the paper criticizes); full tracks are barred
            # outright, like the capacitated flow network of the original.
            cost = engine.segment_delay(seg, cd.get(seg.id, 0.0), layer=layer)
            for edge in seg.edges():
                cost += multipliers.wire_price(edge, layer)
                if hard and self.grid.remaining(edge, layer) <= 0:
                    cost += hard
            tile = topo.child_tile[seg.id]
            for pin in topo.pins_at.get(tile, []):
                if pin == source and tile == topo.root_tile:
                    continue
                cost += engine.stack.via_resistance_between(layer, pin.layer) * pin.capacitance
                cost += multipliers.via_span_price(tile, min(layer, pin.layer), max(layer, pin.layer))
            if linearized:
                parent = topo.parent[seg.id]
                if parent is not None:
                    cost += _junction(parent, seg.id, frozen[parent], layer)
            return cost

        def _junction(parent_sid: int, child_sid: int, lp: int, lc: int) -> float:
            tile = topo.parent_tile[child_sid]
            cost = engine.via_delay(lp, lc, cd.get(parent_sid, 0.0), cd.get(child_sid, 0.0))
            cost += multipliers.via_span_price(tile, min(lp, lc), max(lp, lc))
            return cost

        if linearized:
            def junction_cost(parent_sid: int, child_sid: int, lp: int, lc: int) -> float:
                return 0.0
        else:
            junction_cost = _junction

        def root_cost(root_sid: int, layer: int) -> float:
            cd_r = cd.get(root_sid, 0.0)
            cost = engine.via_delay(source.layer, layer, cd_r, cd_r)
            cost += multipliers.via_span_price(
                topo.root_tile, min(source.layer, layer), max(source.layer, layer)
            )
            return cost

        layers, _ = tree_dp_assign(topo, engine.stack, seg_cost, junction_cost, root_cost)
        for sid, layer in layers.items():
            topo.segments[sid].layer = layer
        commit_net(self.grid, topo)

    # -- helpers ----------------------------------------------------------------

    def _total_delay(self, critical: Sequence[Net]) -> float:
        """TILA's objective: the summed segment delays of the released nets."""
        total = 0.0
        for net in critical:
            timing = self.elmore.analyze(net)
            total += sum(timing.segment_delays.values())
        return total

    @staticmethod
    def _delay_scale(timings: Dict[int, NetTiming]) -> float:
        delays = [d for t in timings.values() for d in t.segment_delays.values()]
        if not delays:
            return 1.0
        return sum(delays) / len(delays)

    @staticmethod
    def _snapshot_layers(critical: Sequence[Net]) -> Dict[Tuple[int, int], int]:
        return {
            (net.id, seg.id): seg.layer
            for net in critical
            for seg in net.topology.segments
        }

    def _restore_layers(
        self, critical: Sequence[Net], layers: Dict[Tuple[int, int], int]
    ) -> None:
        for net in critical:
            current = {
                (net.id, seg.id): seg.layer for seg in net.topology.segments
            }
            target = {k: layers[k] for k in current}
            if current == target:
                continue
            release_net(self.grid, net.topology)
            for seg in net.topology.segments:
                seg.layer = layers[(net.id, seg.id)]
            commit_net(self.grid, net.topology)
