"""Exact dynamic program over one net's segment tree.

Given per-segment layer costs and pairwise junction (via) costs, computes
the jointly optimal layer per segment in ``O(#segments * L^2)``.  This is
the per-net subproblem both TILA iterations and ablation studies solve; it
is exact for tree topologies because junction costs couple only
parent/child pairs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.grid.layers import LayerStack
from repro.route.net import Segment
from repro.route.tree import NetTopology

SegCost = Callable[[Segment, int], float]
JunctionCost = Callable[[int, int, int, int], float]  # (parent_sid, child_sid, lp, lc)
RootCost = Callable[[int, int], float]  # (root_sid, layer)


def tree_dp_assign(
    topo: NetTopology,
    stack: LayerStack,
    seg_cost: SegCost,
    junction_cost: JunctionCost,
    root_cost: RootCost,
) -> Tuple[Dict[int, int], float]:
    """Optimal layer per segment id, plus the optimal total cost."""
    candidates: Dict[int, Tuple[int, ...]] = {
        seg.id: stack.layers_of(seg.direction) for seg in topo.segments
    }
    dp: Dict[int, Dict[int, float]] = {}
    choice: Dict[Tuple[int, int, int], int] = {}

    for sid in topo.reverse_topo_order():
        seg = topo.segments[sid]
        dp[sid] = {}
        for layer in candidates[sid]:
            total = seg_cost(seg, layer)
            for cid in topo.children[sid]:
                best_cost = None
                best_layer = None
                for child_layer in candidates[cid]:
                    c = dp[cid][child_layer] + junction_cost(sid, cid, layer, child_layer)
                    if best_cost is None or c < best_cost:
                        best_cost, best_layer = c, child_layer
                assert best_cost is not None and best_layer is not None
                total += best_cost
                choice[(sid, layer, cid)] = best_layer
            dp[sid][layer] = total

    layers: Dict[int, int] = {}
    total_cost = 0.0
    stack_frames: List[int] = []
    for rid in topo.root_segments():
        best_layer = min(
            candidates[rid], key=lambda l: dp[rid][l] + root_cost(rid, l)
        )
        layers[rid] = best_layer
        total_cost += dp[rid][best_layer] + root_cost(rid, best_layer)
        stack_frames.append(rid)

    while stack_frames:
        sid = stack_frames.pop()
        layer = layers[sid]
        for cid in topo.children[sid]:
            layers[cid] = choice[(sid, layer, cid)]
            stack_frames.append(cid)
    return layers, total_cost
