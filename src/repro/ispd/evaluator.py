"""Contest-style solution evaluator.

The ISPD'08 contest scored solutions with an official evaluator computing
overflow and wirelength from the routes file.  This module provides that
interface for our stack: given a :class:`Benchmark` and a solution (either
already applied to the nets or as a routes file), it recomputes everything
from scratch — independent of the optimizer's own bookkeeping — and scores
it.

Scoring follows the contest convention: total (wire) overflow is the
primary metric, then total wirelength where wirelength counts each G-cell
edge once plus a configurable cost per via cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.grid.graph import GridGraph
from repro.ispd.benchmark import Benchmark
from repro.ispd.routes import parse_routes


@dataclass
class EvaluationResult:
    """Contest-style score of one solution."""

    legal: bool
    wire_overflow: int
    via_overflow: int
    wirelength: int
    vias: int
    via_cost: float
    errors: int

    @property
    def total_cost(self) -> float:
        """Wirelength plus weighted vias (the contest's secondary metric)."""
        return self.wirelength + self.via_cost * self.vias

    def summary(self) -> str:
        status = "LEGAL" if self.legal else "ILLEGAL"
        return (
            f"{status}: overflow wire={self.wire_overflow} via={self.via_overflow}, "
            f"wirelength={self.wirelength}, vias={self.vias}, "
            f"total cost={self.total_cost:.0f}"
        )


def evaluate_solution(
    bench: Benchmark,
    routes: Optional[Union[str, "object"]] = None,
    via_cost: float = 1.0,
) -> EvaluationResult:
    """Score the benchmark's current solution (or a routes file).

    When ``routes`` is given (path or text), it is applied to a *fresh*
    occupancy state; otherwise the nets' current topologies are scored.
    Either way, usage is rebuilt from the nets onto a clean grid, so the
    score cannot be fooled by drifted counters.
    """
    # Imported here: repro.route pulls validation at package level, which
    # would close an import cycle with repro.ispd during initialization.
    from repro.route.occupancy import commit_net
    from repro.route.validation import validate_solution

    if routes is not None:
        parse_routes(bench, routes)

    # Rebuild occupancy from scratch on a clean grid with the same
    # capacities.
    fresh = GridGraph(bench.grid.nx_tiles, bench.grid.ny_tiles, bench.stack)
    for layer in bench.stack:
        orient = "H" if layer.direction.value == "H" else "V"
        for edge in bench.grid.iter_edges(orient):
            fresh.set_capacity(edge, layer.index, bench.grid.capacity(edge, layer.index))

    for net in bench.nets:
        if net.topology is None:
            raise ValueError(f"net {net.name} has no topology to evaluate")
        commit_net(fresh, net.topology)

    original = bench.grid
    bench.grid = fresh
    try:
        report = validate_solution(bench)
    finally:
        bench.grid = original

    wire_overflow = sum(over for _, _, over in report.wire_overflows)
    return EvaluationResult(
        legal=not report.errors and wire_overflow == 0,
        wire_overflow=wire_overflow,
        via_overflow=report.via_overflow,
        wirelength=fresh.total_wirelength(),
        vias=fresh.total_vias(),
        via_cost=via_cost,
        errors=len(report.errors),
    )
