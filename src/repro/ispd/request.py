"""Wire format of the serving layer: assign requests, responses, digests.

One ``POST /v1/assign`` body describes a complete layer-assignment problem
by *reference* — a suite benchmark name plus the knobs that make runs
comparable (scale, critical ratio, method, workers).  The synthetic suite
is deterministic per ``(name, scale)``, so the reference fully determines
the problem instance; the server prepares (or reuses) it and the response
carries the optimized quality numbers plus a canonical digest of the full
layer assignment, so any client can check bit-identity against a local
``repro run`` without shipping megabytes of layers back.

Schemas: ``repro.assign_request/v1`` in, ``repro.assign_response/v1`` out.
Unknown request keys are rejected loudly (a typoed knob silently falling
back to a default would gate the wrong run).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.ispd.benchmark import Benchmark
from repro.ispd.suite import SUITE

REQUEST_SCHEMA = "repro.assign_request/v1"
RESPONSE_SCHEMA = "repro.assign_response/v1"

METHODS = ("sdp", "ilp", "tila", "tila+flow")

EXEC_BACKENDS = ("pool", "dist", "batch", "seq")

_REQUEST_KEYS = {
    "schema", "benchmark", "scale", "ratio_percent", "method", "workers",
    "exec", "deadline_ms", "return_assignment", "router_rounds",
    "maze_expansion_limit",
}


class RequestError(ValueError):
    """A malformed or out-of-policy assign request (maps to HTTP 400)."""


@dataclass(frozen=True)
class AssignRequest:
    """One layer-assignment job, as posted to ``/v1/assign``.

    ``signature()`` identifies the *problem and solving mode*: requests
    with equal signatures are guaranteed the bit-identical assignment, so
    the batch scheduler may solve one and fan the result out ("dedup"),
    and the engine host keys its resident warm state by it.  ``workers``
    is part of the signature because sequential (Gauss–Seidel) and pooled
    (Jacobi) solves legitimately produce different — both valid —
    assignments.  ``exec_backend`` (JSON key ``"exec"``) is part of the
    signature too, even though pool, dist, batch, and seq are
    bit-identical on equal snapshots: the resident engine holds the
    backend's live resources, so two backends must never share one
    resident.
    """

    benchmark: str
    scale: float = 1.0
    ratio_percent: float = 0.5
    method: str = "sdp"
    workers: int = 0
    exec_backend: str = "pool"
    deadline_ms: Optional[float] = None
    return_assignment: bool = False
    # Global-router knobs (0 = RouterConfig default).  Part of the
    # signature: they change the prepared routing, hence the problem.
    router_rounds: int = 0
    maze_expansion_limit: int = 0

    @classmethod
    def from_json(cls, payload: Any) -> "AssignRequest":
        """Parse and validate one request body (raises :class:`RequestError`)."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        schema = payload.get("schema", REQUEST_SCHEMA)
        if schema != REQUEST_SCHEMA:
            raise RequestError(
                f"schema {schema!r} is not {REQUEST_SCHEMA!r}"
            )
        unknown = sorted(set(payload) - _REQUEST_KEYS)
        if unknown:
            raise RequestError(f"unknown request keys: {unknown}")
        benchmark = payload.get("benchmark")
        if not isinstance(benchmark, str) or benchmark not in SUITE:
            raise RequestError(
                f"benchmark {benchmark!r} is not in the suite "
                f"({', '.join(sorted(SUITE))})"
            )
        method = payload.get("method", "sdp")
        if method not in METHODS:
            raise RequestError(
                f"method {method!r} is not one of {METHODS}"
            )
        scale = _number(payload, "scale", 1.0)
        if not 0 < scale:
            raise RequestError("scale must be > 0")
        ratio = _number(payload, "ratio_percent", 0.5)
        if not 0 < ratio <= 100:
            raise RequestError("ratio_percent must be in (0, 100]")
        workers = payload.get("workers", 0)
        if not isinstance(workers, int) or workers < 0:
            raise RequestError("workers must be a non-negative integer")
        exec_backend = payload.get("exec", "pool")
        if exec_backend not in EXEC_BACKENDS:
            raise RequestError(
                f"exec {exec_backend!r} is not one of {EXEC_BACKENDS}"
            )
        if exec_backend == "batch" and method != "sdp":
            raise RequestError(
                "exec 'batch' requires method 'sdp' "
                "(the batched kernels only cover the SDP solver)"
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            deadline_ms = _number(payload, "deadline_ms", 0.0)
            if deadline_ms <= 0:
                raise RequestError("deadline_ms must be > 0")
        return_assignment = payload.get("return_assignment", False)
        if not isinstance(return_assignment, bool):
            raise RequestError("return_assignment must be a boolean")
        router_rounds = payload.get("router_rounds", 0)
        if not isinstance(router_rounds, int) or isinstance(router_rounds, bool) \
                or router_rounds < 0:
            raise RequestError("router_rounds must be a non-negative integer")
        maze_limit = payload.get("maze_expansion_limit", 0)
        if not isinstance(maze_limit, int) or isinstance(maze_limit, bool) \
                or maze_limit < 0:
            raise RequestError(
                "maze_expansion_limit must be a non-negative integer"
            )
        return cls(
            benchmark=benchmark,
            scale=scale,
            ratio_percent=ratio,
            method=method,
            workers=workers,
            exec_backend=exec_backend,
            deadline_ms=deadline_ms,
            return_assignment=return_assignment,
            router_rounds=router_rounds,
            maze_expansion_limit=maze_limit,
        )

    def signature(self) -> Tuple[str, float, float, str, int, str, int, int]:
        return (
            self.benchmark, self.scale, self.ratio_percent,
            self.method, self.workers, self.exec_backend,
            self.router_rounds, self.maze_expansion_limit,
        )

    def signature_key(self) -> str:
        b, s, r, m, w, x, rr, mel = self.signature()
        key = f"{b}|scale={s:g}|ratio={r:g}|{m}|workers={w}|exec={x}"
        if rr:
            key += f"|router_rounds={rr}"
        if mel:
            key += f"|maze_limit={mel}"
        return key

    def to_json(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "schema": REQUEST_SCHEMA,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "ratio_percent": self.ratio_percent,
            "method": self.method,
            "workers": self.workers,
        }
        if self.exec_backend != "pool":
            body["exec"] = self.exec_backend
        if self.deadline_ms is not None:
            body["deadline_ms"] = self.deadline_ms
        if self.return_assignment:
            body["return_assignment"] = True
        if self.router_rounds:
            body["router_rounds"] = self.router_rounds
        if self.maze_expansion_limit:
            body["maze_expansion_limit"] = self.maze_expansion_limit
        return body


def _number(payload: Dict[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"{key} must be a number")
    return float(value)


# -- assignment serialization ------------------------------------------------


def extract_assignment(bench: Benchmark) -> Dict[str, List[int]]:
    """Net id -> per-segment layer list, for every net of the benchmark."""
    return {
        str(net.id): [seg.layer for seg in net.topology.segments]
        for net in bench.nets
    }


def assignment_digest(bench: Benchmark) -> str:
    """Canonical digest of the complete layer assignment.

    Stable across processes: nets sorted by id, segments in topology
    order.  Two solves agree on this digest iff their assignments are
    bit-identical — it is the currency of the serve-vs-run equivalence
    checks.
    """
    h = hashlib.sha256()
    for net in sorted(bench.nets, key=lambda n: n.id):
        h.update(str(net.id).encode("ascii"))
        h.update(b":")
        h.update(
            ",".join(str(seg.layer) for seg in net.topology.segments).encode("ascii")
        )
        h.update(b";")
    return "sha256:" + h.hexdigest()


def build_response(
    request: AssignRequest,
    report: Any,
    digest: str,
    assignment: Optional[Dict[str, List[int]]] = None,
    serving: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The ``/v1/assign`` success body for one solved request."""
    body: Dict[str, Any] = {
        "schema": RESPONSE_SCHEMA,
        "benchmark": request.benchmark,
        "method": request.method,
        "scale": request.scale,
        "ratio_percent": request.ratio_percent,
        "workers": request.workers,
        "exec": request.exec_backend,
        "quality": {
            "initial_avg_tcp": report.initial_avg_tcp,
            "final_avg_tcp": report.final_avg_tcp,
            "initial_max_tcp": report.initial_max_tcp,
            "final_max_tcp": report.final_max_tcp,
            "initial_via_overflow": report.initial_via_overflow,
            "final_via_overflow": report.final_via_overflow,
            "initial_vias": report.initial_vias,
            "final_vias": report.final_vias,
        },
        "result_class": (
            "overflow" if report.final_via_overflow > 0 else "ok"
        ),
        "released_nets": len(report.critical_net_ids),
        "assignment_digest": digest,
        "runtime_seconds": round(report.runtime, 6),
        "phases": {
            k: round(v, 6) for k, v in sorted(report.clock.totals.items())
        },
    }
    router = getattr(report, "router", None)
    if router:
        body["router"] = router
    if assignment is not None:
        body["assignment"] = assignment
    if serving is not None:
        body["serving"] = serving
    return body


def error_body(kind: str, message: str, **extra: Any) -> Dict[str, Any]:
    """Structured error payload shared by every non-2xx response."""
    err: Dict[str, Any] = {"type": kind, "message": message}
    err.update(extra)
    return {"schema": RESPONSE_SCHEMA, "error": err}
