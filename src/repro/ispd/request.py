"""Wire format of the serving layer: assign requests, responses, digests.

One ``POST /v1/assign`` body describes a complete layer-assignment problem
by *reference* — a suite benchmark name plus the knobs that make runs
comparable (scale, critical ratio, method, workers).  The synthetic suite
is deterministic per ``(name, scale)``, so the reference fully determines
the problem instance; the server prepares (or reuses) it and the response
carries the optimized quality numbers plus a canonical digest of the full
layer assignment, so any client can check bit-identity against a local
``repro run`` without shipping megabytes of layers back.

Schemas: ``repro.assign_request/v1`` in, ``repro.assign_response/v1`` out.
Unknown request keys are rejected loudly (a typoed knob silently falling
back to a default would gate the wrong run).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.ispd.benchmark import Benchmark
from repro.ispd.suite import SUITE

REQUEST_SCHEMA = "repro.assign_request/v1"
RESPONSE_SCHEMA = "repro.assign_response/v1"
ECO_REQUEST_SCHEMA = "repro.eco_request/v1"
ECO_RESPONSE_SCHEMA = "repro.eco_response/v1"

METHODS = ("sdp", "ilp", "tila", "tila+flow")

EXEC_BACKENDS = ("pool", "dist", "batch", "seq")

_REQUEST_KEYS = {
    "schema", "benchmark", "scale", "ratio_percent", "method", "workers",
    "exec", "deadline_ms", "return_assignment", "router_rounds",
    "maze_expansion_limit",
}


class RequestError(ValueError):
    """A malformed or out-of-policy assign request (maps to HTTP 400)."""


@dataclass(frozen=True)
class AssignRequest:
    """One layer-assignment job, as posted to ``/v1/assign``.

    ``signature()`` identifies the *problem and solving mode*: requests
    with equal signatures are guaranteed the bit-identical assignment, so
    the batch scheduler may solve one and fan the result out ("dedup"),
    and the engine host keys its resident warm state by it.  ``workers``
    is part of the signature because sequential (Gauss–Seidel) and pooled
    (Jacobi) solves legitimately produce different — both valid —
    assignments.  ``exec_backend`` (JSON key ``"exec"``) is part of the
    signature too, even though pool, dist, batch, and seq are
    bit-identical on equal snapshots: the resident engine holds the
    backend's live resources, so two backends must never share one
    resident.
    """

    benchmark: str
    scale: float = 1.0
    ratio_percent: float = 0.5
    method: str = "sdp"
    workers: int = 0
    exec_backend: str = "pool"
    deadline_ms: Optional[float] = None
    return_assignment: bool = False
    # Global-router knobs (0 = RouterConfig default).  Part of the
    # signature: they change the prepared routing, hence the problem.
    router_rounds: int = 0
    maze_expansion_limit: int = 0

    @classmethod
    def from_json(cls, payload: Any) -> "AssignRequest":
        """Parse and validate one request body (raises :class:`RequestError`)."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        schema = payload.get("schema", REQUEST_SCHEMA)
        if schema != REQUEST_SCHEMA:
            raise RequestError(
                f"schema {schema!r} is not {REQUEST_SCHEMA!r}"
            )
        unknown = sorted(set(payload) - _REQUEST_KEYS)
        if unknown:
            raise RequestError(f"unknown request keys: {unknown}")
        benchmark = payload.get("benchmark")
        if not isinstance(benchmark, str) or benchmark not in SUITE:
            raise RequestError(
                f"benchmark {benchmark!r} is not in the suite "
                f"({', '.join(sorted(SUITE))})"
            )
        method = payload.get("method", "sdp")
        if method not in METHODS:
            raise RequestError(
                f"method {method!r} is not one of {METHODS}"
            )
        scale = _number(payload, "scale", 1.0)
        if not 0 < scale:
            raise RequestError("scale must be > 0")
        ratio = _number(payload, "ratio_percent", 0.5)
        if not 0 < ratio <= 100:
            raise RequestError("ratio_percent must be in (0, 100]")
        workers = payload.get("workers", 0)
        if not isinstance(workers, int) or workers < 0:
            raise RequestError("workers must be a non-negative integer")
        exec_backend = payload.get("exec", "pool")
        if exec_backend not in EXEC_BACKENDS:
            raise RequestError(
                f"exec {exec_backend!r} is not one of {EXEC_BACKENDS}"
            )
        if exec_backend == "batch" and method != "sdp":
            raise RequestError(
                "exec 'batch' requires method 'sdp' "
                "(the batched kernels only cover the SDP solver)"
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            deadline_ms = _number(payload, "deadline_ms", 0.0)
            if deadline_ms <= 0:
                raise RequestError("deadline_ms must be > 0")
        return_assignment = payload.get("return_assignment", False)
        if not isinstance(return_assignment, bool):
            raise RequestError("return_assignment must be a boolean")
        router_rounds = payload.get("router_rounds", 0)
        if not isinstance(router_rounds, int) or isinstance(router_rounds, bool) \
                or router_rounds < 0:
            raise RequestError("router_rounds must be a non-negative integer")
        maze_limit = payload.get("maze_expansion_limit", 0)
        if not isinstance(maze_limit, int) or isinstance(maze_limit, bool) \
                or maze_limit < 0:
            raise RequestError(
                "maze_expansion_limit must be a non-negative integer"
            )
        return cls(
            benchmark=benchmark,
            scale=scale,
            ratio_percent=ratio,
            method=method,
            workers=workers,
            exec_backend=exec_backend,
            deadline_ms=deadline_ms,
            return_assignment=return_assignment,
            router_rounds=router_rounds,
            maze_expansion_limit=maze_limit,
        )

    def signature(self) -> Tuple[str, float, float, str, int, str, int, int]:
        return (
            self.benchmark, self.scale, self.ratio_percent,
            self.method, self.workers, self.exec_backend,
            self.router_rounds, self.maze_expansion_limit,
        )

    def signature_key(self) -> str:
        b, s, r, m, w, x, rr, mel = self.signature()
        key = f"{b}|scale={s:g}|ratio={r:g}|{m}|workers={w}|exec={x}"
        if rr:
            key += f"|router_rounds={rr}"
        if mel:
            key += f"|maze_limit={mel}"
        return key

    def dedup_key(self) -> Tuple:
        """Identity for queue batching: requests sharing it get one solve.

        For a plain assign request this is the signature (equal signatures
        are bit-identical by construction).  :class:`EcoRequest` overrides
        it to fold in the epoch and the edit-set digest — two ECO deltas
        batch together only when they are the *same* delta against the
        *same* committed state.
        """
        return ("assign",) + self.signature()

    def to_json(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "schema": REQUEST_SCHEMA,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "ratio_percent": self.ratio_percent,
            "method": self.method,
            "workers": self.workers,
        }
        if self.exec_backend != "pool":
            body["exec"] = self.exec_backend
        if self.deadline_ms is not None:
            body["deadline_ms"] = self.deadline_ms
        if self.return_assignment:
            body["return_assignment"] = True
        if self.router_rounds:
            body["router_rounds"] = self.router_rounds
        if self.maze_expansion_limit:
            body["maze_expansion_limit"] = self.maze_expansion_limit
        return body


_ECO_ONLY_KEYS = {"edits", "state_epoch"}


@dataclass(frozen=True)
class EcoRequest(AssignRequest):
    """One ECO delta, as posted to ``/v1/eco``.

    The inherited assign fields name the *resident* the delta applies to:
    ``signature()`` is unchanged, so an ECO request routes to (and warms
    up) exactly the resident that a matching ``/v1/assign`` would.  On
    top of that it carries the typed edit set and the ``state_epoch`` the
    client believes the resident is at — a mismatch is a structured 409,
    because an edit computed against epoch N is meaningless against the
    state left behind by someone else's epoch N+1.
    """

    edits: Tuple[Any, ...] = ()
    state_epoch: int = 0
    # Digest of the canonical edit-set JSON, precomputed at parse time so
    # the queue's dedup_key() stays cheap.
    edit_digest: str = ""

    @classmethod
    def from_json(cls, payload: Any) -> "EcoRequest":
        """Parse and validate one ``/v1/eco`` body (raises :class:`RequestError`)."""
        from repro.eco.edits import EditError, edit_set_digest, parse_edits

        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        schema = payload.get("schema", ECO_REQUEST_SCHEMA)
        if schema != ECO_REQUEST_SCHEMA:
            raise RequestError(
                f"schema {schema!r} is not {ECO_REQUEST_SCHEMA!r}"
            )
        unknown = sorted(set(payload) - _REQUEST_KEYS - _ECO_ONLY_KEYS)
        if unknown:
            raise RequestError(f"unknown request keys: {unknown}")
        state_epoch = payload.get("state_epoch", 0)
        if isinstance(state_epoch, bool) or not isinstance(state_epoch, int) \
                or state_epoch < 0:
            raise RequestError("state_epoch must be a non-negative integer")
        if "edits" not in payload:
            raise RequestError("eco request requires an 'edits' list")
        try:
            edits = tuple(parse_edits(payload["edits"]))
        except EditError as exc:
            raise RequestError(f"invalid edits: {exc}")
        base_payload = {
            k: v for k, v in payload.items() if k in _REQUEST_KEYS
        }
        base_payload["schema"] = REQUEST_SCHEMA
        base = AssignRequest.from_json(base_payload)
        if base.method not in ("sdp", "ilp"):
            raise RequestError(
                f"method {base.method!r} does not support eco_apply "
                "(the ECO engine re-solves through the CPLA iteration)"
            )
        return cls(
            benchmark=base.benchmark,
            scale=base.scale,
            ratio_percent=base.ratio_percent,
            method=base.method,
            workers=base.workers,
            exec_backend=base.exec_backend,
            deadline_ms=base.deadline_ms,
            return_assignment=base.return_assignment,
            router_rounds=base.router_rounds,
            maze_expansion_limit=base.maze_expansion_limit,
            edits=edits,
            state_epoch=state_epoch,
            edit_digest=edit_set_digest(edits),
        )

    def dedup_key(self) -> Tuple:
        """Two ECO jobs dedup only as the same delta against the same epoch."""
        return (
            ("eco",) + self.signature() + (self.state_epoch, self.edit_digest)
        )

    def to_json(self) -> Dict[str, Any]:
        from repro.eco.edits import edits_to_json

        body = super().to_json()
        body["schema"] = ECO_REQUEST_SCHEMA
        body["edits"] = edits_to_json(self.edits)
        body["state_epoch"] = self.state_epoch
        return body


def _number(payload: Dict[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"{key} must be a number")
    return float(value)


# -- assignment serialization ------------------------------------------------


def extract_assignment(bench: Benchmark) -> Dict[str, List[int]]:
    """Net id -> per-segment layer list, for every net of the benchmark."""
    return {
        str(net.id): [seg.layer for seg in net.topology.segments]
        for net in bench.nets
    }


def assignment_digest(bench: Benchmark) -> str:
    """Canonical digest of the complete layer assignment.

    Stable across processes: nets sorted by id, segments in topology
    order.  Two solves agree on this digest iff their assignments are
    bit-identical — it is the currency of the serve-vs-run equivalence
    checks.
    """
    h = hashlib.sha256()
    for net in sorted(bench.nets, key=lambda n: n.id):
        h.update(str(net.id).encode("ascii"))
        h.update(b":")
        h.update(
            ",".join(str(seg.layer) for seg in net.topology.segments).encode("ascii")
        )
        h.update(b";")
    return "sha256:" + h.hexdigest()


def build_response(
    request: AssignRequest,
    report: Any,
    digest: str,
    assignment: Optional[Dict[str, List[int]]] = None,
    serving: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The ``/v1/assign`` success body for one solved request."""
    body: Dict[str, Any] = {
        "schema": RESPONSE_SCHEMA,
        "benchmark": request.benchmark,
        "method": request.method,
        "scale": request.scale,
        "ratio_percent": request.ratio_percent,
        "workers": request.workers,
        "exec": request.exec_backend,
        "quality": {
            "initial_avg_tcp": report.initial_avg_tcp,
            "final_avg_tcp": report.final_avg_tcp,
            "initial_max_tcp": report.initial_max_tcp,
            "final_max_tcp": report.final_max_tcp,
            "initial_via_overflow": report.initial_via_overflow,
            "final_via_overflow": report.final_via_overflow,
            "initial_vias": report.initial_vias,
            "final_vias": report.final_vias,
        },
        "result_class": (
            "overflow" if report.final_via_overflow > 0 else "ok"
        ),
        "released_nets": len(report.critical_net_ids),
        "assignment_digest": digest,
        "runtime_seconds": round(report.runtime, 6),
        "phases": {
            k: round(v, 6) for k, v in sorted(report.clock.totals.items())
        },
    }
    router = getattr(report, "router", None)
    if router:
        body["router"] = router
    if assignment is not None:
        body["assignment"] = assignment
    if serving is not None:
        body["serving"] = serving
    return body


def build_eco_response(
    request: "EcoRequest",
    report: Any,
    assignment: Optional[Dict[str, List[int]]] = None,
    serving: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The ``/v1/eco`` success body for one applied edit set.

    ``report`` is an :class:`repro.eco.engine.EcoReport`; typed as Any so
    this module stays import-light.
    """
    body: Dict[str, Any] = {
        "schema": ECO_RESPONSE_SCHEMA,
        "benchmark": request.benchmark,
        "method": request.method,
        "scale": request.scale,
        "ratio_percent": request.ratio_percent,
        "workers": request.workers,
        "exec": request.exec_backend,
        "state_epoch": report.epoch,
        "edit_digest": report.edit_digest,
        "num_edits": report.num_edits,
        "edited_nets": report.edited_nets,
        "released_nets": report.released,
        "accepted": report.accepted,
        "dirty": dict(report.dirty),
        "quality": {
            "pre_avg_tcp": report.pre_avg_tcp,
            "pre_max_tcp": report.pre_max_tcp,
            "post_avg_tcp": report.post_avg_tcp,
            "post_max_tcp": report.post_max_tcp,
        },
        "assignment_digest": report.digest,
        "runtime_seconds": round(report.seconds, 6),
    }
    if assignment is not None:
        body["assignment"] = assignment
    if serving is not None:
        body["serving"] = serving
    return body


def error_body(kind: str, message: str, **extra: Any) -> Dict[str, Any]:
    """Structured error payload shared by every non-2xx response."""
    err: Dict[str, Any] = {"type": kind, "message": message}
    err.update(extra)
    return {"schema": RESPONSE_SCHEMA, "error": err}
