"""Registry of the 15 ISPD'08 benchmarks used in Table 2 of the paper.

Real instance sizes are scaled to Python-tractable magnitudes while keeping
the *relative* ordering of the suite (bigblue4/newblue7 remain the largest,
adaptec1/bigblue1 the smallest); every instance is deterministic given its
name.  ``scale`` multiplies net counts for quicker smoke runs.

The paper's Table 2 covers adaptec1–5, bigblue1–4 and newblue1, 2, 4, 5, 6,
7 (newblue3 is traditionally excluded as unroutable).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ispd.benchmark import Benchmark
from repro.ispd.synthetic import SyntheticSpec, generate
from repro.timing.rc import RCProfile

# name -> (real nx, real ny, layers, real net count)
SUITE: Dict[str, Tuple[int, int, int, int]] = {
    "adaptec1": (324, 324, 6, 219794),
    "adaptec2": (424, 424, 6, 260159),
    "adaptec3": (774, 779, 6, 466295),
    "adaptec4": (774, 779, 6, 515304),
    "adaptec5": (465, 468, 6, 867441),
    "bigblue1": (227, 227, 6, 282974),
    "bigblue2": (468, 471, 6, 576816),
    "bigblue3": (555, 557, 8, 1122340),
    "bigblue4": (403, 405, 8, 2228930),
    "newblue1": (399, 399, 6, 331663),
    "newblue2": (557, 463, 6, 463213),
    "newblue4": (455, 458, 6, 636195),
    "newblue5": (637, 640, 6, 1257555),
    "newblue6": (463, 464, 6, 1286452),
    "newblue7": (488, 490, 8, 2635625),
}

# The six "small test cases" of Fig. 7 (ILP is tractable there).
SMALL_CASES = ("adaptec1", "adaptec2", "bigblue1", "newblue1", "newblue2", "newblue4")

_GRID_DIVISOR = 16
_NET_DIVISOR = 150
_MIN_GRID, _MAX_GRID = 14, 44
_MIN_NETS, _MAX_NETS = 200, 4500


def spec_for(name: str, scale: float = 1.0, rc: Optional[RCProfile] = None) -> SyntheticSpec:
    """The deterministic :class:`SyntheticSpec` for a suite benchmark name."""
    if name not in SUITE:
        raise KeyError(f"unknown benchmark {name!r}; choose from {sorted(SUITE)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    real_nx, real_ny, layers, real_nets = SUITE[name]

    def clip(v: float, lo: int, hi: int) -> int:
        return int(max(lo, min(hi, round(v))))

    nx = clip(real_nx / _GRID_DIVISOR, _MIN_GRID, _MAX_GRID)
    ny = clip(real_ny / _GRID_DIVISOR, _MIN_GRID, _MAX_GRID)
    nets = clip(
        real_nets / _NET_DIVISOR * scale,
        max(int(_MIN_NETS * min(scale, 1.0)), 30),
        max(int(_MAX_NETS * scale), 60),
    )
    return SyntheticSpec(
        name=name,
        nx=nx,
        ny=ny,
        num_layers=layers,
        num_nets=nets,
        seed=2016,
        rc=rc,
    )


def load_benchmark(name: str, scale: float = 1.0, rc: Optional[RCProfile] = None) -> Benchmark:
    """Generate the named synthetic benchmark (deterministic per name)."""
    return generate(spec_for(name, scale=scale, rc=rc))
