"""The in-memory benchmark container shared by parser and generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.grid.graph import Edge2D, GridGraph
from repro.grid.layers import LayerStack
from repro.route.net import Net


@dataclass
class Benchmark:
    """A routing instance: grid, layer stack, nets, capacity adjustments.

    ``adjustments`` maps ``(edge, layer)`` to the adjusted track count (the
    ISPD'08 "capacity adjustment" records); they are already applied to
    ``grid`` — the mapping is kept so the writer can round-trip the file.
    """

    name: str
    grid: GridGraph
    nets: List[Net] = field(default_factory=list)
    adjustments: Dict[Tuple[Edge2D, int], int] = field(default_factory=dict)
    lower_left: Tuple[float, float] = (0.0, 0.0)

    @property
    def stack(self) -> LayerStack:
        return self.grid.stack

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def net_by_name(self, name: str) -> Net:
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(f"no net named {name!r} in benchmark {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Benchmark({self.name}: {self.grid.nx_tiles}x{self.grid.ny_tiles}"
            f"x{self.stack.num_layers}, {self.num_nets} nets)"
        )
