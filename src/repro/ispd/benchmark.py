"""The in-memory benchmark container shared by parser and generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.grid.graph import Edge2D, GridGraph
from repro.grid.layers import LayerStack
from repro.ispd.store import NetStore
from repro.route.net import Net


@dataclass
class Benchmark:
    """A routing instance: grid, layer stack, nets, capacity adjustments.

    ``adjustments`` maps ``(edge, layer)`` to the adjusted track count (the
    ISPD'08 "capacity adjustment" records); they are already applied to
    ``grid`` — the mapping is kept so the writer can round-trip the file.

    ``store`` is the structured-array pin/net storage backing ``nets`` when
    the instance came from the streaming parser or the synthetic generator;
    ``None`` for hand-built benchmarks whose nets own their pins directly.
    """

    name: str
    grid: GridGraph
    nets: List[Net] = field(default_factory=list)
    adjustments: Dict[Tuple[Edge2D, int], int] = field(default_factory=dict)
    lower_left: Tuple[float, float] = (0.0, 0.0)
    store: Optional[NetStore] = None
    # RouterStats.as_dict() snapshot recorded when this instance was routed
    # (filled by pipeline.prepare); empty until then.  The optimizer engines
    # copy it into RunReport.router so ledger entries carry it.
    router_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def stack(self) -> LayerStack:
        return self.grid.stack

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def net_by_name(self, name: str) -> Net:
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(f"no net named {name!r} in benchmark {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Benchmark({self.name}: {self.grid.nx_tiles}x{self.grid.ny_tiles}"
            f"x{self.stack.num_layers}, {self.num_nets} nets)"
        )
