"""ISPD'08 benchmark writer — the inverse of :mod:`repro.ispd.parser`.

Used by the synthetic generator to materialize instances on disk and by the
round-trip tests that pin down the format semantics.
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from repro.grid.layers import Direction
from repro.ispd.benchmark import Benchmark


def write_ispd08(bench: Benchmark, target: Union[str, TextIO, None] = None) -> str:
    """Serialize ``bench`` in ISPD'08 format.

    ``target`` may be a path, an open text handle, or ``None``; the text is
    returned either way.  Pin tile coordinates are emitted at tile centres so
    parsing the output reproduces the same tiles.
    """
    buf = io.StringIO()
    stack = bench.stack
    grid = bench.grid
    num_layers = stack.num_layers

    buf.write(f"grid {grid.nx_tiles} {grid.ny_tiles} {num_layers}\n")

    def cap_list(direction: Direction) -> str:
        vals = []
        for layer in stack:
            if layer.direction is direction:
                vals.append(layer.default_capacity)
            else:
                vals.append(0.0)
        return " ".join(_fmt(v) for v in vals)

    buf.write(f"vertical capacity {cap_list(Direction.VERTICAL)}\n")
    buf.write(f"horizontal capacity {cap_list(Direction.HORIZONTAL)}\n")
    buf.write(
        "minimum width " + " ".join(_fmt(l.min_width) for l in stack) + "\n"
    )
    buf.write(
        "minimum spacing " + " ".join(_fmt(l.min_spacing) for l in stack) + "\n"
    )
    buf.write(
        "via spacing " + " ".join(_fmt(stack.via_spacing) for _ in stack) + "\n"
    )
    llx, lly = bench.lower_left
    buf.write(f"{_fmt(llx)} {_fmt(lly)} {_fmt(stack.tile_width)} {_fmt(stack.tile_height)}\n")

    buf.write(f"num net {len(bench.nets)}\n")
    if bench.store is not None:
        _write_nets_from_store(buf, bench, llx, lly)
    else:
        for net in bench.nets:
            buf.write(f"{net.name} {net.id} {len(net.pins)}\n")
            for pin in net.pins:
                px = llx + (pin.x + 0.5) * stack.tile_width
                py = lly + (pin.y + 0.5) * stack.tile_height
                buf.write(f"{_fmt(px)} {_fmt(py)} {pin.layer}\n")

    buf.write(f"{len(bench.adjustments)}\n")
    for (edge, layer), tracks in sorted(bench.adjustments.items()):
        orient, x, y = edge
        if orient == "H":
            x2, y2 = x + 1, y
        else:
            x2, y2 = x, y + 1
        reduced = tracks * stack.layer(layer).pitch
        buf.write(f"{x} {y} {layer} {x2} {y2} {layer} {_fmt(reduced)}\n")

    text = buf.getvalue()
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    elif target is not None:
        target.write(text)
    return text


def _write_nets_from_store(buf: TextIO, bench: Benchmark, llx: float, lly: float) -> None:
    """Bulk-format the net section from the structured arrays.

    Byte-identical to the per-Pin path, but never materializes a Pin: the
    tile-centre coordinates are computed vectorized and formatted through
    the same ``_fmt`` convention.
    """
    import numpy as np

    store = bench.store
    stack = bench.stack
    pt = store.pin_table
    px = llx + (pt["x"].astype(np.float64) + 0.5) * stack.tile_width
    py = lly + (pt["y"].astype(np.float64) + 0.5) * stack.tile_height
    if np.all(px == np.floor(px)) and np.all(py == np.floor(py)):
        xs = [str(v) for v in px.astype(np.int64).tolist()]
        ys = [str(v) for v in py.astype(np.int64).tolist()]
    else:
        xs = [_fmt(v) for v in px.tolist()]
        ys = [_fmt(v) for v in py.tolist()]
    layers = pt["layer"].tolist()
    ids = store.net_table["id"].tolist()
    starts = store.net_table["pin_start"].tolist()
    counts = store.net_table["pin_count"].tolist()
    pieces = []
    for name, net_id, start, count in zip(store.names, ids, starts, counts):
        pieces.append(f"{name} {net_id} {count}\n")
        for j in range(start, start + count):
            pieces.append(f"{xs[j]} {ys[j]} {layers[j]}\n")
    buf.write("".join(pieces))


def _fmt(value: float) -> str:
    """Integers without trailing '.0', floats as-is."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
