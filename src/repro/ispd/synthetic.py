"""Seeded synthetic ISPD'08-style benchmark generator.

The real ISPD'08 instances cannot ship with this repo, and their full sizes
(0.2M–2.6M nets) are beyond a pure-Python flow anyway.  The generator below
produces scaled instances preserving the properties the paper's experiments
depend on:

- mostly short, locally clustered nets (the congestion background);
- an explicit population of long, multi-fanout nets — the ones whose worst
  path delay makes them "critical" and released for re-assignment;
- per-direction capacities sized from the generated demand so the grid runs
  at a realistic utilization with genuine hot spots;
- a sprinkling of capacity adjustments (reduced edges), exercising the same
  code path real benchmark blockages do.

Everything derives from a single seed, so each named benchmark is a fixed,
reproducible instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.grid.graph import GridGraph
from repro.grid.layers import Direction, Layer, LayerStack, alternating_directions
from repro.ispd.benchmark import Benchmark
from repro.ispd.store import NetStore, NetStoreBuilder
from repro.timing.rc import RCProfile, industrial_rc
from repro.utils import make_rng


@dataclass
class SyntheticSpec:
    """Parameters of one synthetic instance."""

    name: str
    nx: int
    ny: int
    num_layers: int
    num_nets: int
    seed: int = 2016
    target_utilization: float = 0.55
    track_tier_shrink: float = 0.55
    critical_fraction: float = 0.02
    pin_cap_range: Tuple[float, float] = (0.6, 1.8)
    adjustment_fraction: float = 0.02
    rc: Optional[RCProfile] = None

    def __post_init__(self) -> None:
        if self.nx < 4 or self.ny < 4:
            raise ValueError("grid must be at least 4x4 tiles")
        if self.num_layers < 2:
            raise ValueError("need at least 2 layers (one per direction)")
        if self.num_nets < 1:
            raise ValueError("need at least one net")
        if not 0 < self.target_utilization < 1:
            raise ValueError("target_utilization must be in (0, 1)")


def generate(spec: SyntheticSpec) -> Benchmark:
    """Generate the :class:`Benchmark` described by ``spec``."""
    rng = make_rng(spec.seed, "synthetic", spec.name)
    store = _generate_store(spec, rng)
    stack = _build_stack(spec, store)
    grid = GridGraph(spec.nx, spec.ny, stack)
    bench = Benchmark(
        name=spec.name, grid=grid, nets=store.materialize(), store=store
    )
    _apply_adjustments(spec, bench, rng)
    return bench


# -- net population ----------------------------------------------------------


def _clip(v: int, lo: int, hi: int) -> int:
    return max(lo, min(hi, v))


def _generate_store(spec: SyntheticSpec, rng) -> NetStore:
    """Fill a :class:`NetStore` with the synthetic net population.

    The rng draw sequence is load-bearing: every checked-in baseline digest
    derives from these exact instances, so draws here must stay one-to-one
    with the historical per-Pin generator (one ``uniform`` per pin, in the
    same order relative to the geometry draws).
    """
    builder = NetStoreBuilder()
    num_critical = max(3, int(round(spec.critical_fraction * spec.num_nets)))
    num_critical = min(num_critical, spec.num_nets)
    cap_lo, cap_hi = spec.pin_cap_range

    def pin(x: int, y: int) -> None:
        cap = float(rng.uniform(cap_lo, cap_hi))
        builder.add_pin(_clip(x, 0, spec.nx - 1), _clip(y, 0, spec.ny - 1), 1, cap)

    # Long, high-fanout nets first: these are the timing-critical population.
    for i in range(num_critical):
        fanout = int(rng.integers(4, 17))
        span_x = int(spec.nx * rng.uniform(0.45, 0.9))
        span_y = int(spec.ny * rng.uniform(0.45, 0.9))
        x0 = int(rng.integers(0, max(spec.nx - span_x, 1)))
        y0 = int(rng.integers(0, max(spec.ny - span_y, 1)))
        builder.add_net(i, f"crit{i}", fanout + 1)
        pin(x0, y0)
        for _ in range(fanout):
            px = x0 + int(rng.integers(0, span_x + 1))
            py = y0 + int(rng.integers(0, span_y + 1))
            pin(px, py)

    # Background nets: local clusters with small fanout.
    for i in range(num_critical, spec.num_nets):
        r = rng.random()
        if r < 0.60:
            fanout = 1
        elif r < 0.85:
            fanout = int(rng.integers(2, 4))
        else:
            fanout = int(rng.integers(4, 9))
        cx = int(rng.integers(0, spec.nx))
        cy = int(rng.integers(0, spec.ny))
        spread = max(2, int(rng.exponential(scale=max(spec.nx, spec.ny) / 10.0)))
        builder.add_net(i, f"net{i}", fanout + 1)
        pin(cx, cy)
        for _ in range(fanout):
            px = cx + int(rng.integers(-spread, spread + 1))
            py = cy + int(rng.integers(-spread, spread + 1))
            pin(px, py)
    return builder.build()


# -- capacity sizing ------------------------------------------------------------


def _build_stack(spec: SyntheticSpec, store: NetStore) -> LayerStack:
    profile = spec.rc or industrial_rc(spec.num_layers)
    directions = alternating_directions(spec.num_layers)

    # Directional demand estimated from pin bounding boxes (the lower bound
    # any router must spend) — one reduceat sweep over the pin table.
    counts = store.net_table["pin_count"]
    starts = store.net_table["pin_start"][counts > 0]
    xs = store.pin_table["x"]
    ys = store.pin_table["y"]
    if len(starts):
        demand_x = int(
            (np.maximum.reduceat(xs, starts) - np.minimum.reduceat(xs, starts)).sum()
        )
        demand_y = int(
            (np.maximum.reduceat(ys, starts) - np.minimum.reduceat(ys, starts)).sum()
        )
    else:
        demand_x = demand_y = 0

    edges_h = max((spec.nx - 1) * spec.ny, 1)
    edges_v = max(spec.nx * (spec.ny - 1), 1)

    # Real BEOL stacks double wire width per tier, so upper (fast) layers
    # hold *fewer* tracks — the scarcity that makes layer assignment a
    # contention problem.  Track counts shrink per tier; the per-direction
    # total is sized so routing runs at the target utilization.
    def tier_weight(layer_idx: int) -> float:
        return spec.track_tier_shrink ** ((layer_idx - 1) // 2)

    def per_layer_tracks(demand: int, edges: int, direction: Direction) -> dict:
        weights = {
            i + 1: tier_weight(i + 1)
            for i, d in enumerate(directions)
            if d is direction
        }
        total_needed = demand / edges / spec.target_utilization
        weight_sum = sum(weights.values()) or 1.0
        base = total_needed / weight_sum
        return {l: max(int(math.ceil(base * w)), 1) for l, w in weights.items()}

    tracks_h = per_layer_tracks(demand_x, edges_h, Direction.HORIZONTAL)
    tracks_v = per_layer_tracks(demand_y, edges_v, Direction.VERTICAL)

    width, spacing = 1.0, 1.0
    pitch = width + spacing
    layers = []
    for i, direction in enumerate(directions):
        tracks = (
            tracks_h[i + 1]
            if direction is Direction.HORIZONTAL
            else tracks_v[i + 1]
        )
        layers.append(
            Layer(
                index=i + 1,
                direction=direction,
                unit_resistance=profile.unit_resistance[i],
                unit_capacitance=profile.unit_capacitance[i],
                min_width=width,
                min_spacing=spacing,
                default_capacity=tracks * pitch,
            )
        )
    return LayerStack(
        layers=tuple(layers),
        via_resistances=profile.via_resistance,
        via_capacitances=profile.via_capacitance,
        via_width=1.0,
        via_spacing=1.0,
        tile_width=10.0,
        tile_height=10.0,
    )


def _apply_adjustments(spec: SyntheticSpec, bench: Benchmark, rng) -> None:
    """Reduce a small fraction of edges, emulating routing blockages."""
    grid = bench.grid
    for layer in grid.stack:
        orient = "H" if layer.direction is Direction.HORIZONTAL else "V"
        edges = list(grid.iter_edges(orient))
        if not edges:
            continue
        count = int(len(edges) * spec.adjustment_fraction)
        if count == 0:
            continue
        picks = rng.choice(len(edges), size=count, replace=False)
        for idx in picks:
            edge = edges[int(idx)]
            current = grid.capacity(edge, layer.index)
            reduced = max(current // 2, 1)
            grid.set_capacity(edge, layer.index, reduced)
            bench.adjustments[(edge, layer.index)] = reduced
