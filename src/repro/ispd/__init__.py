"""ISPD'08 global-routing benchmark substrate.

The paper evaluates on the ISPD'08 suite (adaptec/bigblue/newblue).  Those
files are not redistributable here, so this subpackage provides both halves
of the substitution documented in DESIGN.md:

- :mod:`repro.ispd.parser` / :mod:`repro.ispd.writer` — genuine ISPD'08
  format I/O, so the real files work unchanged if available;
- :mod:`repro.ispd.synthetic` — a seeded generator producing scaled
  instances with the same names, relative sizes, and an explicit population
  of long multi-fanout (timing-critical) nets;
- :mod:`repro.ispd.suite` — the registry of the 15 benchmarks of Table 2.
"""

from repro.ispd.benchmark import Benchmark
from repro.ispd.parser import parse_ispd08, ParseError
from repro.ispd.writer import write_ispd08
from repro.ispd.synthetic import SyntheticSpec, generate
from repro.ispd.suite import SUITE, load_benchmark, spec_for
from repro.ispd.routes import parse_routes, write_routes
from repro.ispd.evaluator import EvaluationResult, evaluate_solution

__all__ = [
    "parse_routes",
    "write_routes",
    "EvaluationResult",
    "evaluate_solution",
    "Benchmark",
    "parse_ispd08",
    "ParseError",
    "write_ispd08",
    "SyntheticSpec",
    "generate",
    "SUITE",
    "load_benchmark",
    "spec_for",
]
