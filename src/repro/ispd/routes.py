"""ISPD'08 routing *solution* format I/O.

The contest defines an output format consumed by the official evaluator:
one block per net listing its 3-D wires, each a segment between two grid
points annotated with layers::

    net_name net_id
    (x1, y1, l1)-(x2, y2, l2)
    ...
    !

Straight wires on one layer are routed metal; zero-length entries whose
layers differ are via stacks.  Coordinates are real units (tile centres).

This module writes the current layer assignment in that format and parses
it back onto a :class:`~repro.ispd.benchmark.Benchmark`, so solutions can
be stored, diffed, and exchanged with external tools.
"""

from __future__ import annotations

import io
import re
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.ispd.benchmark import Benchmark
from repro.route.net import Net
from repro.route.tree import build_topology
from repro.utils import get_logger

log = get_logger(__name__)

_POINT = re.compile(
    r"\(\s*(-?[\d.]+)\s*,\s*(-?[\d.]+)\s*,\s*(\d+)\s*\)"
)


def _tile_center(bench: Benchmark, x: int, y: int) -> Tuple[float, float]:
    llx, lly = bench.lower_left
    return (
        llx + (x + 0.5) * bench.stack.tile_width,
        lly + (y + 0.5) * bench.stack.tile_height,
    )


def write_routes(bench: Benchmark, target: Union[str, TextIO, None] = None) -> str:
    """Serialize every routed net's 3-D solution.

    Requires topologies with assigned layers.  Wires are emitted per
    segment; via stacks as zero-length layer spans at their tiles.
    """
    buf = io.StringIO()
    for net in bench.nets:
        topo = net.topology
        if topo is None:
            raise ValueError(f"net {net.name} has no topology; route it first")
        buf.write(f"{net.name} {net.id}\n")
        for seg in topo.segments:
            if seg.layer <= 0:
                raise ValueError(
                    f"net {net.name} segment {seg.id} unassigned; "
                    "assign layers before writing routes"
                )
            (x1, y1), (x2, y2) = seg.endpoints
            px1, py1 = _tile_center(bench, x1, y1)
            px2, py2 = _tile_center(bench, x2, y2)
            buf.write(
                f"({_fmt(px1)}, {_fmt(py1)}, {seg.layer})-"
                f"({_fmt(px2)}, {_fmt(py2)}, {seg.layer})\n"
            )
        for via in topo.via_stacks():
            px, py = _tile_center(bench, *via.tile)
            buf.write(
                f"({_fmt(px)}, {_fmt(py)}, {via.lower})-"
                f"({_fmt(px)}, {_fmt(py)}, {via.upper})\n"
            )
        buf.write("!\n")
    text = buf.getvalue()
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    elif target is not None:
        target.write(text)
    return text


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def parse_routes(
    bench: Benchmark, source: Union[str, TextIO], apply: bool = True
) -> Dict[int, List[Tuple[Tuple[int, int, int], Tuple[int, int, int]]]]:
    """Parse a solution file against ``bench``.

    Returns per net id the list of 3-D wire entries in tile coordinates.
    With ``apply=True`` (default) the routes are installed on the nets:
    topologies are rebuilt from the wires and segment layers set from the
    solution (the grid's usage counters are *not* touched — commit via
    :func:`repro.route.occupancy.commit_net` as needed).
    """
    if isinstance(source, str):
        if "\n" not in source and not source.lstrip().startswith("("):
            with open(source, "r", encoding="utf-8") as handle:
                return parse_routes(bench, handle, apply)
        source = io.StringIO(source)

    llx, lly = bench.lower_left
    tw, th = bench.stack.tile_width, bench.stack.tile_height

    def to_tile(px: float, py: float) -> Tuple[int, int]:
        return int((px - llx) // tw), int((py - lly) // th)

    nets_by_id = {net.id: net for net in bench.nets}
    wires: Dict[int, List] = {}
    current: Optional[Net] = None
    for line_no, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line:
            continue
        if line == "!":
            current = None
            continue
        points = _POINT.findall(line)
        if len(points) == 2:
            if current is None:
                raise ValueError(f"line {line_no}: wire outside a net block")
            (px1, py1, l1), (px2, py2, l2) = points
            x1, y1 = to_tile(float(px1), float(py1))
            x2, y2 = to_tile(float(px2), float(py2))
            wires.setdefault(current.id, []).append(
                ((x1, y1, int(l1)), (x2, y2, int(l2)))
            )
            continue
        tokens = line.split()
        if len(tokens) >= 2 and tokens[-1].lstrip("-").isdigit():
            net_id = int(tokens[-1])
            if net_id not in nets_by_id:
                raise ValueError(f"line {line_no}: unknown net id {net_id}")
            current = nets_by_id[net_id]
            wires.setdefault(net_id, [])
            continue
        raise ValueError(f"line {line_no}: unparsable line {line!r}")

    if apply:
        _apply_routes(bench, wires)
    return wires


def _apply_routes(bench: Benchmark, wires: Dict[int, List]) -> None:
    from repro.grid.graph import edge_between

    for net in bench.nets:
        entries = wires.get(net.id)
        if entries is None:
            continue
        edges = []
        layer_of_edge = {}
        for (x1, y1, l1), (x2, y2, l2) in entries:
            if (x1, y1) == (x2, y2):
                continue  # via stack; re-derived from the topology
            if l1 != l2:
                raise ValueError(
                    f"net {net.name}: wire changes layer mid-flight "
                    f"({l1} -> {l2})"
                )
            step_x = 0 if x1 == x2 else (1 if x2 > x1 else -1)
            step_y = 0 if y1 == y2 else (1 if y2 > y1 else -1)
            cx, cy = x1, y1
            while (cx, cy) != (x2, y2):
                nx_, ny_ = cx + step_x, cy + step_y
                edge = edge_between((cx, cy), (nx_, ny_))
                edges.append(edge)
                layer_of_edge[edge] = l1
                cx, cy = nx_, ny_
        net.route_edges = edges
        topo = build_topology(net)
        for seg in topo.segments:
            seg_layers = {layer_of_edge[e] for e in seg.edges()}
            if len(seg_layers) != 1:
                raise ValueError(
                    f"net {net.name} segment {seg.id}: inconsistent layers "
                    f"{sorted(seg_layers)} in solution"
                )
            seg.layer = seg_layers.pop()
