"""Structured-array net storage — the scale tier's ingest backbone.

The real ISPD'08 instances carry 0.2M–2.6M nets; materializing a Python
object per pin while parsing them is what kept the suite at toy scale.
:class:`NetStore` keeps the whole net population in three numpy structured
arrays instead:

- ``net_table`` — one row per net: ``id``, ``pin_start``, ``pin_count``
  (pins of net *i* are ``pin_table[pin_start[i] : pin_start[i]+pin_count[i]]``);
- ``pin_table`` — one row per pin: tile ``x``/``y``, ``layer``, ``cap``;
- ``names`` — the net names (Python strings are unavoidable, but one short
  string per net is cheap next to per-pin objects).

:class:`~repro.route.net.Net` objects built from a store (see
:meth:`NetStore.materialize`) are thin views: they answer ``pin_tiles``,
``num_pins`` and ``hpwl()`` straight from the arrays and only materialize
:class:`~repro.route.net.Pin` objects when a consumer (topology build, the
Elmore engine) genuinely asks for them.  Whole-population queries —
``hpwl_array`` for the router's net ordering — are vectorized.

Builders accumulate rows in plain Python lists and convert chunk-wise, so
the streaming parser never holds more than one chunk of tokenized text.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (net.py imports us)
    from repro.route.net import Net

PIN_DTYPE = np.dtype(
    [
        ("x", np.int32),
        ("y", np.int32),
        ("layer", np.int16),
        ("cap", np.float64),
    ]
)

NET_DTYPE = np.dtype(
    [
        ("id", np.int64),
        ("pin_start", np.int64),
        ("pin_count", np.int32),
    ]
)


class NetStore:
    """Immutable structured-array storage for a benchmark's net population."""

    __slots__ = ("net_table", "pin_table", "names")

    def __init__(
        self, net_table: np.ndarray, pin_table: np.ndarray, names: List[str]
    ) -> None:
        if net_table.dtype != NET_DTYPE:
            net_table = net_table.astype(NET_DTYPE)
        if pin_table.dtype != PIN_DTYPE:
            pin_table = pin_table.astype(PIN_DTYPE)
        if len(names) != len(net_table):
            raise ValueError(
                f"{len(names)} names for {len(net_table)} net rows"
            )
        self.net_table = net_table
        self.pin_table = pin_table
        self.names = names

    # -- population queries -------------------------------------------------

    @property
    def num_nets(self) -> int:
        return len(self.net_table)

    @property
    def num_pins(self) -> int:
        return len(self.pin_table)

    def pin_slice(self, row: int) -> np.ndarray:
        """The pin rows of net ``row`` (a view, not a copy)."""
        start = int(self.net_table["pin_start"][row])
        count = int(self.net_table["pin_count"][row])
        return self.pin_table[start : start + count]

    def pin_tiles(self, row: int) -> List[Tuple[int, int]]:
        """Pin tiles of one net as plain ``(x, y)`` tuples."""
        pins = self.pin_slice(row)
        return list(zip(pins["x"].tolist(), pins["y"].tolist()))

    def all_pin_tiles(self) -> List[List[Tuple[int, int]]]:
        """Per-net pin tiles for the whole population, row order.

        Equivalent to ``[store.pin_tiles(r) for r in range(num_nets)]`` but
        converts the pin table to python scalars in one pass instead of two
        numpy slice calls per net.
        """
        tiles = list(
            zip(self.pin_table["x"].tolist(), self.pin_table["y"].tolist())
        )
        starts = self.net_table["pin_start"].tolist()
        counts = self.net_table["pin_count"].tolist()
        return [tiles[s : s + c] for s, c in zip(starts, counts)]

    def hpwl_array(self) -> np.ndarray:
        """Half-perimeter wirelength of every net, vectorized.

        One ``np.maximum.reduceat``/``np.minimum.reduceat`` sweep over the
        pin table — the router orders tens of thousands of nets by this.
        """
        n = self.num_nets
        out = np.zeros(n, dtype=np.int64)
        if n == 0 or self.num_pins == 0:
            return out
        counts = self.net_table["pin_count"]
        nonempty = counts > 0
        starts = self.net_table["pin_start"][nonempty]
        xs = self.pin_table["x"]
        ys = self.pin_table["y"]
        spans = (
            np.maximum.reduceat(xs, starts)
            - np.minimum.reduceat(xs, starts)
            + np.maximum.reduceat(ys, starts)
            - np.minimum.reduceat(ys, starts)
        )
        out[nonempty] = spans
        return out

    # -- materialization -----------------------------------------------------

    def materialize_pins(self, row: int) -> List["Pin"]:  # noqa: F821
        """Build the :class:`Pin` objects of one net (called lazily)."""
        from repro.route.net import Pin

        pins = self.pin_slice(row)
        return [
            Pin(int(x), int(y), int(layer), float(cap))
            for x, y, layer, cap in zip(
                pins["x"].tolist(),
                pins["y"].tolist(),
                pins["layer"].tolist(),
                pins["cap"].tolist(),
            )
        ]

    def materialize(self) -> List["Net"]:
        """One array-backed :class:`Net` view per store row."""
        from repro.route.net import Net

        ids = self.net_table["id"].tolist()
        return [
            Net(id=net_id, name=name, store=self, row=row)
            for row, (net_id, name) in enumerate(zip(ids, self.names))
        ]


class NetStoreBuilder:
    """Chunk-wise accumulator the parser and generator fill.

    Rows are buffered in Python lists and flushed into numpy chunks every
    ``chunk_pins`` pins, so peak overhead is one chunk of boxed values
    regardless of instance size.
    """

    def __init__(self, chunk_pins: int = 65536) -> None:
        if chunk_pins < 1:
            raise ValueError("chunk_pins must be >= 1")
        self.chunk_pins = chunk_pins
        self.names: List[str] = []
        self._ids: List[int] = []
        self._counts: List[int] = []
        self._pin_chunks: List[np.ndarray] = []
        self._buf_x: List[int] = []
        self._buf_y: List[int] = []
        self._buf_layer: List[int] = []
        self._buf_cap: List[float] = []

    def add_net(self, net_id: int, name: str, pin_count: int) -> None:
        self._ids.append(net_id)
        self.names.append(name)
        self._counts.append(pin_count)

    def add_pin(self, x: int, y: int, layer: int, cap: float) -> None:
        self._buf_x.append(x)
        self._buf_y.append(y)
        self._buf_layer.append(layer)
        self._buf_cap.append(cap)
        if len(self._buf_x) >= self.chunk_pins:
            self._flush()

    def add_pin_block(
        self,
        xs: Iterable[int],
        ys: Iterable[int],
        layers: Iterable[int],
        caps: Iterable[float],
    ) -> None:
        """Append many pins at once (already-vectorized callers)."""
        self._flush()
        chunk = np.empty(len(xs), dtype=PIN_DTYPE)  # type: ignore[arg-type]
        chunk["x"] = xs
        chunk["y"] = ys
        chunk["layer"] = layers
        chunk["cap"] = caps
        self._pin_chunks.append(chunk)

    def _flush(self) -> None:
        if not self._buf_x:
            return
        chunk = np.empty(len(self._buf_x), dtype=PIN_DTYPE)
        chunk["x"] = self._buf_x
        chunk["y"] = self._buf_y
        chunk["layer"] = self._buf_layer
        chunk["cap"] = self._buf_cap
        self._pin_chunks.append(chunk)
        self._buf_x.clear()
        self._buf_y.clear()
        self._buf_layer.clear()
        self._buf_cap.clear()

    def build(self) -> NetStore:
        self._flush()
        if self._pin_chunks:
            pin_table = np.concatenate(self._pin_chunks)
        else:
            pin_table = np.empty(0, dtype=PIN_DTYPE)
        counts = np.asarray(self._counts, dtype=np.int32)
        if counts.sum() != len(pin_table):
            raise ValueError(
                f"net pin counts sum to {int(counts.sum())} but "
                f"{len(pin_table)} pins were added"
            )
        net_table = np.empty(len(self._ids), dtype=NET_DTYPE)
        net_table["id"] = self._ids
        net_table["pin_count"] = counts
        starts = np.zeros(len(counts), dtype=np.int64)
        if len(counts):
            np.cumsum(counts[:-1], out=starts[1:])
        net_table["pin_start"] = starts
        return NetStore(net_table, pin_table, list(self.names))


def store_from_nets(nets: Sequence["Net"]) -> NetStore:  # noqa: F821
    """Build a store from materialized Net objects (tests, adapters)."""
    builder = NetStoreBuilder()
    for net in nets:
        builder.add_net(net.id, net.name, net.num_pins)
        for pin in net.pins:
            builder.add_pin(pin.x, pin.y, pin.layer, pin.capacitance)
    return builder.build()
