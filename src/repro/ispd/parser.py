"""ISPD'08 global-routing benchmark parser.

Grammar (see Nam, Sze & Yildiz, ISPD'08, ref. [17] of the paper)::

    grid <nx> <ny> <layers>
    vertical capacity   <c1> ... <cL>
    horizontal capacity <c1> ... <cL>
    minimum width       <w1> ... <wL>
    minimum spacing     <s1> ... <sL>
    via spacing         <v1> ... <vL>
    <lower_left_x> <lower_left_y> <tile_width> <tile_height>
    num net <n>
    <net_name> <net_id> <num_pins> [<min_width>]
    <pin_x> <pin_y> <pin_layer>          (num_pins lines, real coordinates)
    ...
    <num_adjustments>
    <x1> <y1> <l1> <x2> <y2> <l2> <reduced_capacity>

Capacities are in length units; track counts are capacity divided by
(width + spacing) per layer.  RC values are not part of the format — the
caller supplies an :class:`~repro.timing.rc.RCProfile` (defaults to
:func:`~repro.timing.rc.industrial_rc`), matching the paper's use of
out-of-band "industrial settings".
"""

from __future__ import annotations

import io
from typing import List, Optional, TextIO, Tuple, Union

from repro.grid.graph import GridGraph, edge_between
from repro.grid.layers import Direction, Layer, LayerStack, alternating_directions
from repro.ispd.benchmark import Benchmark
from repro.route.net import Net, Pin
from repro.timing.rc import RCProfile, industrial_rc


class ParseError(ValueError):
    """Raised on malformed ISPD'08 input, with a line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


class _Lines:
    """Token-line iterator that skips blanks/comments and tracks line numbers."""

    def __init__(self, handle: TextIO) -> None:
        self._iter = enumerate(handle, start=1)
        self.line_no = 0

    def next_tokens(self) -> List[str]:
        for no, raw in self._iter:
            stripped = raw.split("#", 1)[0].strip()
            if stripped:
                self.line_no = no
                return stripped.split()
        raise ParseError(self.line_no, "unexpected end of file")

    def maybe_next_tokens(self) -> Optional[List[str]]:
        try:
            return self.next_tokens()
        except ParseError:
            return None


def _floats(tokens: List[str], lines: _Lines, expect: int, what: str) -> List[float]:
    if len(tokens) != expect:
        raise ParseError(lines.line_no, f"{what}: expected {expect} values, got {len(tokens)}")
    try:
        return [float(t) for t in tokens]
    except ValueError as exc:
        raise ParseError(lines.line_no, f"{what}: {exc}") from exc


def parse_ispd08(
    source: Union[str, TextIO],
    name: str = "benchmark",
    rc: Optional[RCProfile] = None,
    pin_capacitance: float = 1.0,
) -> Benchmark:
    """Parse an ISPD'08 benchmark from a path, file object, or text.

    ``source`` may be a filesystem path, an open text handle, or a string
    containing the benchmark text itself (detected by the leading ``grid``
    keyword).
    """
    if isinstance(source, str):
        if source.lstrip().startswith("grid"):
            return _parse(io.StringIO(source), name, rc, pin_capacitance)
        with open(source, "r", encoding="utf-8") as handle:
            return _parse(handle, name, rc, pin_capacitance)
    return _parse(source, name, rc, pin_capacitance)


def _parse(
    handle: TextIO, name: str, rc: Optional[RCProfile], pin_capacitance: float
) -> Benchmark:
    lines = _Lines(handle)

    tokens = lines.next_tokens()
    if tokens[0].lower() != "grid" or len(tokens) != 4:
        raise ParseError(lines.line_no, f"expected 'grid nx ny layers', got {tokens}")
    nx, ny, num_layers = (int(t) for t in tokens[1:])
    if num_layers < 1:
        raise ParseError(lines.line_no, "layer count must be >= 1")

    def capacity_line(expected_kw: Tuple[str, ...]) -> List[float]:
        toks = lines.next_tokens()
        kw_len = len(expected_kw)
        if tuple(t.lower() for t in toks[:kw_len]) != expected_kw:
            raise ParseError(lines.line_no, f"expected {' '.join(expected_kw)}")
        return _floats(toks[kw_len:], lines, num_layers, " ".join(expected_kw))

    vcap = capacity_line(("vertical", "capacity"))
    hcap = capacity_line(("horizontal", "capacity"))
    widths = capacity_line(("minimum", "width"))
    spacings = capacity_line(("minimum", "spacing"))
    via_spacings = capacity_line(("via", "spacing"))

    toks = lines.next_tokens()
    llx, lly, tile_w, tile_h = _floats(toks, lines, 4, "origin/tile line")
    if tile_w <= 0 or tile_h <= 0:
        raise ParseError(lines.line_no, "tile dimensions must be positive")

    # Directions follow the nonzero capacities; fall back to HVHV...
    directions = list(alternating_directions(num_layers))
    for i in range(num_layers):
        if hcap[i] > 0 and vcap[i] == 0:
            directions[i] = Direction.HORIZONTAL
        elif vcap[i] > 0 and hcap[i] == 0:
            directions[i] = Direction.VERTICAL

    profile = rc or industrial_rc(num_layers)
    if profile.num_layers != num_layers:
        raise ParseError(
            lines.line_no,
            f"RC profile has {profile.num_layers} layers, benchmark has {num_layers}",
        )
    layers = []
    for i in range(num_layers):
        cap = hcap[i] if directions[i] is Direction.HORIZONTAL else vcap[i]
        layers.append(
            Layer(
                index=i + 1,
                direction=directions[i],
                unit_resistance=profile.unit_resistance[i],
                unit_capacitance=profile.unit_capacitance[i],
                min_width=widths[i],
                min_spacing=spacings[i],
                default_capacity=cap,
            )
        )
    stack = LayerStack(
        layers=tuple(layers),
        via_resistances=profile.via_resistance,
        via_capacitances=profile.via_capacitance,
        via_width=max(min(widths), 1e-9),
        via_spacing=max(via_spacings),
        tile_width=tile_w,
        tile_height=tile_h,
    )
    grid = GridGraph(nx, ny, stack)

    toks = lines.next_tokens()
    if [t.lower() for t in toks[:2]] != ["num", "net"]:
        raise ParseError(lines.line_no, f"expected 'num net <n>', got {toks}")
    num_nets = int(toks[2])

    def to_tile(x: float, y: float) -> Tuple[int, int]:
        tx = int((x - llx) // tile_w)
        ty = int((y - lly) // tile_h)
        tx = min(max(tx, 0), nx - 1)
        ty = min(max(ty, 0), ny - 1)
        return tx, ty

    nets: List[Net] = []
    for _ in range(num_nets):
        header = lines.next_tokens()
        if len(header) not in (3, 4):
            raise ParseError(lines.line_no, f"bad net header {header}")
        net_name = header[0]
        net_id = int(header[1])
        num_pins = int(header[2])
        if num_pins < 1:
            raise ParseError(lines.line_no, f"net {net_name} has {num_pins} pins")
        pins = []
        for _ in range(num_pins):
            ptoks = lines.next_tokens()
            px, py, pl = _floats(ptoks, lines, 3, f"pin of net {net_name}")
            layer_idx = int(pl)
            if not 1 <= layer_idx <= num_layers:
                raise ParseError(lines.line_no, f"pin layer {layer_idx} out of range")
            tx, ty = to_tile(px, py)
            pins.append(Pin(tx, ty, layer_idx, capacitance=pin_capacitance))
        nets.append(Net(id=net_id, name=net_name, pins=pins))

    bench = Benchmark(name=name, grid=grid, nets=nets, lower_left=(llx, lly))

    # Optional capacity adjustments.
    toks = lines.maybe_next_tokens()
    if toks is not None:
        num_adj = int(toks[0])
        for _ in range(num_adj):
            atoks = lines.next_tokens()
            vals = _floats(atoks, lines, 7, "capacity adjustment")
            x1, y1, l1, x2, y2, l2, reduced = (
                int(vals[0]), int(vals[1]), int(vals[2]),
                int(vals[3]), int(vals[4]), int(vals[5]), vals[6],
            )
            if l1 != l2:
                raise ParseError(lines.line_no, "adjustment must stay on one layer")
            edge = edge_between((x1, y1), (x2, y2))
            layer = stack.layer(l1)
            tracks = int(reduced // layer.pitch)
            grid.set_capacity(edge, l1, tracks)
            bench.adjustments[(edge, l1)] = tracks
    return bench
