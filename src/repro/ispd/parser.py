"""ISPD'08 global-routing benchmark parser.

Grammar (see Nam, Sze & Yildiz, ISPD'08, ref. [17] of the paper)::

    grid <nx> <ny> <layers>
    vertical capacity   <c1> ... <cL>
    horizontal capacity <c1> ... <cL>
    minimum width       <w1> ... <wL>
    minimum spacing     <s1> ... <sL>
    via spacing         <v1> ... <vL>
    <lower_left_x> <lower_left_y> <tile_width> <tile_height>
    num net <n>
    <net_name> <net_id> <num_pins> [<min_width>]
    <pin_x> <pin_y> <pin_layer>          (num_pins lines, real coordinates)
    ...
    <num_adjustments>
    <x1> <y1> <l1> <x2> <y2> <l2> <reduced_capacity>

Capacities are in length units; track counts are capacity divided by
(width + spacing) per layer.  RC values are not part of the format — the
caller supplies an :class:`~repro.timing.rc.RCProfile` (defaults to
:func:`~repro.timing.rc.industrial_rc`), matching the paper's use of
out-of-band "industrial settings".

The net section is the bulk of a real instance (0.2M–2.6M nets), so it is
parsed in streaming chunks: pin tokens accumulate in flat Python lists and
are converted ``chunk_pins`` at a time with one ``np.array`` call, tile
mapping and layer validation run vectorized on the chunk, and the rows land
in a :class:`~repro.ispd.store.NetStoreBuilder`.  No per-pin Python object
is created; the :class:`~repro.route.net.Net` views handed back on
``Benchmark.nets`` materialize :class:`~repro.route.net.Pin` objects only
when a consumer asks for them.
"""

from __future__ import annotations

import io
from typing import List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.grid.graph import GridGraph, edge_between
from repro.grid.layers import Direction, Layer, LayerStack, alternating_directions
from repro.ispd.benchmark import Benchmark
from repro.ispd.store import NetStoreBuilder
from repro.timing.rc import RCProfile, industrial_rc

DEFAULT_CHUNK_PINS = 65536


class ParseError(ValueError):
    """Raised on malformed ISPD'08 input, with a line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


class _Lines:
    """Token-line iterator that skips blanks/comments and tracks line numbers."""

    def __init__(self, handle: TextIO) -> None:
        self._iter = enumerate(handle, start=1)
        self.line_no = 0

    def next_tokens(self) -> List[str]:
        for no, raw in self._iter:
            stripped = raw.split("#", 1)[0].strip()
            if stripped:
                self.line_no = no
                return stripped.split()
        raise ParseError(self.line_no, "unexpected end of file")

    def maybe_next_tokens(self) -> Optional[List[str]]:
        try:
            return self.next_tokens()
        except ParseError:
            return None


def _floats(tokens: List[str], lines: _Lines, expect: int, what: str) -> List[float]:
    if len(tokens) != expect:
        raise ParseError(lines.line_no, f"{what}: expected {expect} values, got {len(tokens)}")
    try:
        return [float(t) for t in tokens]
    except ValueError as exc:
        raise ParseError(lines.line_no, f"{what}: {exc}") from exc


def parse_ispd08(
    source: Union[str, TextIO],
    name: str = "benchmark",
    rc: Optional[RCProfile] = None,
    pin_capacitance: float = 1.0,
    chunk_pins: int = DEFAULT_CHUNK_PINS,
) -> Benchmark:
    """Parse an ISPD'08 benchmark from a path, file object, or text.

    ``source`` may be a filesystem path, an open text handle, or a string
    containing the benchmark text itself (detected by the leading ``grid``
    keyword).  ``chunk_pins`` bounds how many pins are tokenized before a
    bulk numpy conversion; the parse result is independent of its value.
    """
    if isinstance(source, str):
        if source.lstrip().startswith("grid"):
            return _parse(io.StringIO(source), name, rc, pin_capacitance, chunk_pins)
        with open(source, "r", encoding="utf-8") as handle:
            return _parse(handle, name, rc, pin_capacitance, chunk_pins)
    return _parse(source, name, rc, pin_capacitance, chunk_pins)


class _PinChunker:
    """Accumulates pin token triples and flushes them vectorized.

    Error reporting stays line-accurate: each buffered pin remembers its
    source line and net name, and the first offending pin (in file order)
    wins when a chunk fails validation.
    """

    def __init__(
        self,
        builder: NetStoreBuilder,
        llx: float,
        lly: float,
        tile_w: float,
        tile_h: float,
        nx: int,
        ny: int,
        num_layers: int,
        pin_capacitance: float,
        chunk_pins: int,
    ) -> None:
        if chunk_pins < 1:
            raise ValueError("chunk_pins must be >= 1")
        self._builder = builder
        self._llx, self._lly = llx, lly
        self._tile_w, self._tile_h = tile_w, tile_h
        self._nx, self._ny = nx, ny
        self._num_layers = num_layers
        self._cap = pin_capacitance
        self._chunk_pins = chunk_pins
        self._tokens: List[str] = []
        self._lines: List[int] = []
        self._net_names: List[str] = []

    def add(self, tokens: List[str], line_no: int, net_name: str) -> None:
        if len(tokens) != 3:
            self.flush()
            raise ParseError(
                line_no,
                f"pin of net {net_name}: expected 3 values, got {len(tokens)}",
            )
        self._tokens += tokens
        self._lines.append(line_no)
        self._net_names.append(net_name)
        if len(self._lines) >= self._chunk_pins:
            self.flush()

    def _locate_bad_token(self) -> None:
        for i, token in enumerate(self._tokens):
            try:
                float(token)
            except ValueError as exc:
                pin = i // 3
                raise ParseError(
                    self._lines[pin], f"pin of net {self._net_names[pin]}: {exc}"
                ) from exc

    def flush(self) -> None:
        if not self._lines:
            return
        try:
            vals = np.array(self._tokens, dtype=np.float64)
        except ValueError:
            self._locate_bad_token()
            raise  # pragma: no cover - _locate_bad_token always raises first
        vals = vals.reshape(-1, 3)
        layers_f = vals[:, 2]
        finite = np.isfinite(layers_f)
        if not finite.all():
            pin = int(np.argmin(finite))
            raise ParseError(
                self._lines[pin],
                f"pin of net {self._net_names[pin]}: non-finite layer",
            )
        # int() truncation toward zero, matching the scalar parser's int(pl).
        layers = layers_f.astype(np.int64)
        bad = (layers < 1) | (layers > self._num_layers)
        if bad.any():
            pin = int(np.argmax(bad))
            raise ParseError(
                self._lines[pin], f"pin layer {int(layers[pin])} out of range"
            )
        tx = (vals[:, 0] - self._llx) // self._tile_w
        ty = (vals[:, 1] - self._lly) // self._tile_h
        np.clip(tx, 0, self._nx - 1, out=tx)
        np.clip(ty, 0, self._ny - 1, out=ty)
        n = len(self._lines)
        self._builder.add_pin_block(
            tx.astype(np.int32),
            ty.astype(np.int32),
            layers.astype(np.int16),
            np.full(n, self._cap, dtype=np.float64),
        )
        self._tokens.clear()
        self._lines.clear()
        self._net_names.clear()


def _parse(
    handle: TextIO,
    name: str,
    rc: Optional[RCProfile],
    pin_capacitance: float,
    chunk_pins: int = DEFAULT_CHUNK_PINS,
) -> Benchmark:
    lines = _Lines(handle)

    tokens = lines.next_tokens()
    if tokens[0].lower() != "grid" or len(tokens) != 4:
        raise ParseError(lines.line_no, f"expected 'grid nx ny layers', got {tokens}")
    nx, ny, num_layers = (int(t) for t in tokens[1:])
    if num_layers < 1:
        raise ParseError(lines.line_no, "layer count must be >= 1")

    def capacity_line(expected_kw: Tuple[str, ...]) -> List[float]:
        toks = lines.next_tokens()
        kw_len = len(expected_kw)
        if tuple(t.lower() for t in toks[:kw_len]) != expected_kw:
            raise ParseError(lines.line_no, f"expected {' '.join(expected_kw)}")
        return _floats(toks[kw_len:], lines, num_layers, " ".join(expected_kw))

    vcap = capacity_line(("vertical", "capacity"))
    hcap = capacity_line(("horizontal", "capacity"))
    widths = capacity_line(("minimum", "width"))
    spacings = capacity_line(("minimum", "spacing"))
    via_spacings = capacity_line(("via", "spacing"))

    toks = lines.next_tokens()
    llx, lly, tile_w, tile_h = _floats(toks, lines, 4, "origin/tile line")
    if tile_w <= 0 or tile_h <= 0:
        raise ParseError(lines.line_no, "tile dimensions must be positive")

    # Directions follow the nonzero capacities; fall back to HVHV...
    directions = list(alternating_directions(num_layers))
    for i in range(num_layers):
        if hcap[i] > 0 and vcap[i] == 0:
            directions[i] = Direction.HORIZONTAL
        elif vcap[i] > 0 and hcap[i] == 0:
            directions[i] = Direction.VERTICAL

    profile = rc or industrial_rc(num_layers)
    if profile.num_layers != num_layers:
        raise ParseError(
            lines.line_no,
            f"RC profile has {profile.num_layers} layers, benchmark has {num_layers}",
        )
    layers = []
    for i in range(num_layers):
        cap = hcap[i] if directions[i] is Direction.HORIZONTAL else vcap[i]
        layers.append(
            Layer(
                index=i + 1,
                direction=directions[i],
                unit_resistance=profile.unit_resistance[i],
                unit_capacitance=profile.unit_capacitance[i],
                min_width=widths[i],
                min_spacing=spacings[i],
                default_capacity=cap,
            )
        )
    stack = LayerStack(
        layers=tuple(layers),
        via_resistances=profile.via_resistance,
        via_capacitances=profile.via_capacitance,
        via_width=max(min(widths), 1e-9),
        via_spacing=max(via_spacings),
        tile_width=tile_w,
        tile_height=tile_h,
    )
    grid = GridGraph(nx, ny, stack)

    toks = lines.next_tokens()
    if [t.lower() for t in toks[:2]] != ["num", "net"]:
        raise ParseError(lines.line_no, f"expected 'num net <n>', got {toks}")
    num_nets = int(toks[2])

    builder = NetStoreBuilder(chunk_pins=chunk_pins)
    chunker = _PinChunker(
        builder, llx, lly, tile_w, tile_h, nx, ny, num_layers,
        pin_capacitance, chunk_pins,
    )

    def fail(line_no: int, message: str) -> None:
        # Buffered pins precede the current line; an error among them must
        # surface first, matching the unchunked parser's error order.
        chunker.flush()
        raise ParseError(line_no, message)

    next_tokens = lines.next_tokens  # bound-method hoist for the hot loop
    for _ in range(num_nets):
        try:
            header = next_tokens()
        except ParseError:
            chunker.flush()
            raise
        if len(header) not in (3, 4):
            fail(lines.line_no, f"bad net header {header}")
        net_name = header[0]
        try:
            net_id = int(header[1])
            num_pins = int(header[2])
        except ValueError:
            fail(lines.line_no, f"bad net header {header}")
        if num_pins < 1:
            fail(lines.line_no, f"net {net_name} has {num_pins} pins")
        builder.add_net(net_id, net_name, num_pins)
        for _ in range(num_pins):
            try:
                ptoks = next_tokens()
            except ParseError:
                chunker.flush()
                raise
            chunker.add(ptoks, lines.line_no, net_name)
    chunker.flush()

    store = builder.build()
    bench = Benchmark(
        name=name,
        grid=grid,
        nets=store.materialize(),
        lower_left=(llx, lly),
        store=store,
    )

    # Optional capacity adjustments.
    toks = lines.maybe_next_tokens()
    if toks is not None:
        num_adj = int(toks[0])
        for _ in range(num_adj):
            atoks = lines.next_tokens()
            vals = _floats(atoks, lines, 7, "capacity adjustment")
            x1, y1, l1, x2, y2, l2, reduced = (
                int(vals[0]), int(vals[1]), int(vals[2]),
                int(vals[3]), int(vals[4]), int(vals[5]), vals[6],
            )
            if l1 != l2:
                raise ParseError(lines.line_no, "adjustment must stay on one layer")
            edge = edge_between((x1, y1), (x2, y2))
            layer = stack.layer(l1)
            tracks = int(reduced // layer.pitch)
            grid.set_capacity(edge, l1, tracks)
            bench.adjustments[(edge, l1)] = tracks
    return bench
