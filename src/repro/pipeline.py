"""End-to-end pipeline convenience layer.

The paper's Problem 1 takes "initial routing and layer assignment" as given;
:func:`prepare` produces that input (2-D route -> segment trees -> initial
DP layer assignment) for any benchmark, and :func:`run_method` dispatches to
the optimizer under comparison.  Every example, test, and bench harness goes
through these two calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.analysis.runreport import RunReport
from repro.core.engine import CPLAConfig, CPLAEngine
from repro.ispd.benchmark import Benchmark
from repro.obs import metrics, tracer
from repro.ispd.suite import load_benchmark
from repro.route.assignment import AssignerConfig, InitialAssigner
from repro.route.router import GlobalRouter, RouterConfig
from repro.route.tree import build_topology
from repro.tila.engine import TILAConfig, TILAEngine
from repro.timing.elmore import TimingConfig
from repro.utils import get_logger

log = get_logger(__name__)


def prepare(
    benchmark: Union[str, Benchmark],
    scale: float = 1.0,
    router_config: Optional[RouterConfig] = None,
    assigner_config: Optional[AssignerConfig] = None,
) -> Benchmark:
    """Produce the optimizer input: routed, segmented, layer-assigned nets.

    ``benchmark`` is either a suite name (generated synthetically) or an
    already-loaded :class:`Benchmark` whose nets are still unrouted.
    """
    bench = (
        load_benchmark(benchmark, scale=scale)
        if isinstance(benchmark, str)
        else benchmark
    )
    with tracer.span("pipeline.prepare", benchmark=bench.name, nets=len(bench.nets)):
        router = GlobalRouter(bench.grid, router_config)
        router.route(bench.nets)
        bench.router_stats = router.stats.as_dict()
        with tracer.span("pipeline.build_topology"):
            for net in bench.nets:
                build_topology(net)
        with tracer.span("pipeline.initial_assign"):
            InitialAssigner(bench.grid, assigner_config).assign(bench.nets)
    metrics.inc("pipeline.prepares")
    log.debug(
        "%s prepared: %d nets, %d vias, wire overflow %d",
        bench.name, len(bench.nets), bench.grid.total_vias(),
        bench.grid.total_wire_overflow(),
    )
    return bench


def run_method(
    bench: Benchmark,
    method: str,
    critical_ratio: float = 0.005,
    cpla_config: Optional[CPLAConfig] = None,
    tila_config: Optional[TILAConfig] = None,
    timing_config: Optional[TimingConfig] = None,
) -> RunReport:
    """Run one optimizer on a prepared benchmark.

    ``method`` is ``"sdp"``, ``"ilp"``, ``"tila"``, or ``"tila+flow"``.
    The engines mutate the benchmark in place (they are incremental), so
    comparisons should :func:`prepare` a fresh instance per method.
    """
    metrics.inc("pipeline.runs")
    with tracer.span("pipeline.run_method", benchmark=bench.name, method=method):
        if method in ("sdp", "ilp"):
            config = cpla_config or CPLAConfig()
            config.method = method
            config.critical_ratio = critical_ratio
            # One-shot call: close the engine (and its worker pool) when
            # done.  Callers wanting a resident, reusable engine construct
            # CPLAEngine directly (see repro.service.resident).
            with CPLAEngine(bench, config, timing_config) as engine:
                return engine.run()
        if method in ("tila", "tila+flow"):
            config = tila_config or TILAConfig()
            config.engine = "dp" if method == "tila" else "dp+flow"
            config.critical_ratio = critical_ratio
            return TILAEngine(bench, config, timing_config).run()
        raise ValueError(f"unknown method {method!r}")


@dataclass
class ComparisonResult:
    """Paired TILA/CPLA runs on identical prepared inputs."""

    baseline: RunReport
    ours: RunReport

    @property
    def avg_ratio(self) -> float:
        return self.ours.final_avg_tcp / self.baseline.final_avg_tcp

    @property
    def max_ratio(self) -> float:
        return self.ours.final_max_tcp / self.baseline.final_max_tcp


def compare(
    name: str,
    critical_ratio: float = 0.005,
    scale: float = 1.0,
    method: str = "sdp",
    cpla_config: Optional[CPLAConfig] = None,
    tila_config: Optional[TILAConfig] = None,
) -> ComparisonResult:
    """The paper's headline comparison on one benchmark.

    Both methods see the identical initial routing/assignment (and hence the
    same released net set), matching the paper's "release the same set of
    nets for both" protocol.
    """
    baseline = run_method(
        prepare(name, scale=scale), "tila", critical_ratio, tila_config=tila_config
    )
    ours = run_method(
        prepare(name, scale=scale), method, critical_ratio, cpla_config=cpla_config
    )
    return ComparisonResult(baseline=baseline, ours=ours)
