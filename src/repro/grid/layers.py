"""Metal-layer model.

Each metal layer routes wires in a single preferred direction (Fig. 2(a) of
the paper); layers alternate horizontal/vertical going up the stack.  Higher
layers are wider and hence less resistive, lower layers are thinner and more
resistive — the asymmetry that makes layer assignment a timing lever.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple


class Direction(enum.Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "H"
    VERTICAL = "V"

    @property
    def other(self) -> "Direction":
        if self is Direction.HORIZONTAL:
            return Direction.VERTICAL
        return Direction.HORIZONTAL

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Layer:
    """A single metal layer.

    Parameters
    ----------
    index:
        1-based layer number; layer 1 is the lowest metal.
    direction:
        Preferred (and only) routing direction on this layer.
    unit_resistance:
        Wire resistance per G-cell pitch, in ohms.
    unit_capacitance:
        Wire capacitance per G-cell pitch, in femtofarads.
    min_width / min_spacing:
        Wire width and spacing, in the benchmark's database units; together
        they set the routing-track pitch used to convert raw ISPD capacities
        (given in length units) into integer track counts.
    default_capacity:
        Raw routing capacity of one G-cell edge on this layer, in the same
        length units as ``min_width``/``min_spacing``.
    """

    index: int
    direction: Direction
    unit_resistance: float
    unit_capacitance: float
    min_width: float = 1.0
    min_spacing: float = 1.0
    default_capacity: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"layer index must be >= 1, got {self.index}")
        if self.unit_resistance <= 0:
            raise ValueError("unit_resistance must be positive")
        if self.unit_capacitance < 0:
            raise ValueError("unit_capacitance must be non-negative")
        if self.min_width <= 0 or self.min_spacing < 0:
            raise ValueError("invalid width/spacing")

    @property
    def pitch(self) -> float:
        """Routing-track pitch: wire width plus spacing."""
        return self.min_width + self.min_spacing

    @property
    def default_tracks(self) -> int:
        """Default number of routing tracks across one G-cell edge."""
        return int(self.default_capacity // self.pitch)


@dataclass(frozen=True)
class LayerStack:
    """An ordered stack of metal layers plus via parameters.

    ``via_resistances[k]`` is the resistance of a via cut between layer
    ``k+1`` and layer ``k+2`` (0-based list over the L-1 adjacent pairs).
    ``via_capacitances`` follows the same indexing and may be all-zero; the
    paper's delay model only uses via resistance (Eqn. (3)).
    """

    layers: Tuple[Layer, ...]
    via_resistances: Tuple[float, ...]
    via_capacitances: Tuple[float, ...] = ()
    via_width: float = 1.0
    via_spacing: float = 1.0
    tile_width: float = 10.0
    tile_height: float = 10.0

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a layer stack needs at least one layer")
        for pos, layer in enumerate(self.layers, start=1):
            if layer.index != pos:
                raise ValueError(
                    f"layers must be sorted with contiguous indices; "
                    f"position {pos} holds layer {layer.index}"
                )
        if len(self.via_resistances) != len(self.layers) - 1:
            raise ValueError(
                f"need {len(self.layers) - 1} via resistances, "
                f"got {len(self.via_resistances)}"
            )
        if any(r < 0 for r in self.via_resistances):
            raise ValueError("via resistances must be non-negative")
        if self.via_capacitances and len(self.via_capacitances) != len(self.layers) - 1:
            raise ValueError("via_capacitances length must be L-1 (or empty)")
        if self.via_width <= 0 or self.via_spacing < 0:
            raise ValueError("invalid via width/spacing")

    # -- basic accessors -------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def layer(self, index: int) -> Layer:
        """Return the layer with the given 1-based index."""
        if not 1 <= index <= len(self.layers):
            raise IndexError(f"layer {index} out of range 1..{len(self.layers)}")
        return self.layers[index - 1]

    def direction_of(self, index: int) -> Direction:
        return self.layer(index).direction

    def layers_of(self, direction: Direction) -> Tuple[int, ...]:
        """Indices of all layers routing in ``direction``, bottom to top."""
        return tuple(
            layer.index for layer in self.layers if layer.direction is direction
        )

    def top_layer_of(self, direction: Direction) -> int:
        candidates = self.layers_of(direction)
        if not candidates:
            raise ValueError(f"no layer routes in direction {direction}")
        return candidates[-1]

    # -- via helpers -----------------------------------------------------

    def via_resistance_between(self, lower: int, upper: int) -> float:
        """Total via resistance of a stacked via from ``lower`` to ``upper``.

        Mirrors the summation in Eqn. (3): the cuts between layers
        ``lower .. upper-1`` are traversed.  ``lower == upper`` costs zero.
        """
        if lower > upper:
            lower, upper = upper, lower
        self.layer(lower)
        self.layer(upper)
        return float(sum(self.via_resistances[lower - 1 : upper - 1]))

    def via_capacitance_between(self, lower: int, upper: int) -> float:
        """Total via capacitance of a stacked via (0 when not modelled)."""
        if not self.via_capacitances:
            return 0.0
        if lower > upper:
            lower, upper = upper, lower
        return float(sum(self.via_capacitances[lower - 1 : upper - 1]))

    @property
    def via_pitch_sq(self) -> float:
        """``(via width + via spacing)**2`` — denominator of Eqn. (1)."""
        return (self.via_width + self.via_spacing) ** 2


def alternating_directions(
    num_layers: int, first: Direction = Direction.HORIZONTAL
) -> Tuple[Direction, ...]:
    """The usual HVHV... direction pattern for ``num_layers`` layers."""
    out = []
    current = first
    for _ in range(num_layers):
        out.append(current)
        current = current.other
    return tuple(out)


def uniform_stack(
    num_layers: int,
    *,
    unit_resistance: Sequence[float],
    unit_capacitance: Sequence[float],
    via_resistance: Sequence[float],
    capacity: Sequence[float],
    min_width: Sequence[float] = (),
    min_spacing: Sequence[float] = (),
    first_direction: Direction = Direction.HORIZONTAL,
    via_width: float = 1.0,
    via_spacing: float = 1.0,
    tile_width: float = 10.0,
    tile_height: float = 10.0,
) -> LayerStack:
    """Convenience constructor assembling a :class:`LayerStack` from arrays."""
    directions = alternating_directions(num_layers, first_direction)
    widths = list(min_width) or [1.0] * num_layers
    spacings = list(min_spacing) or [1.0] * num_layers
    layers = tuple(
        Layer(
            index=i + 1,
            direction=directions[i],
            unit_resistance=float(unit_resistance[i]),
            unit_capacitance=float(unit_capacitance[i]),
            min_width=float(widths[i]),
            min_spacing=float(spacings[i]),
            default_capacity=float(capacity[i]),
        )
        for i in range(num_layers)
    )
    return LayerStack(
        layers=layers,
        via_resistances=tuple(float(r) for r in via_resistance),
        via_width=via_width,
        via_spacing=via_spacing,
        tile_width=tile_width,
        tile_height=tile_height,
    )
