"""The 3-D grid graph (Fig. 2(b) of the paper).

A layout is tiled into ``nx_tiles * ny_tiles`` G-cells.  Wires run along
*edges* between adjacent tiles on layers whose preferred direction matches
the edge orientation; vias run in the z-direction through tiles.  This module
owns all capacity and usage bookkeeping:

- per-(edge, layer) wire capacity in routing tracks, with ISPD'08-style
  capacity adjustments;
- per-(tile, layer-pair) via usage, with the via-capacity model of Eqn. (1);
- overflow metrics used throughout the evaluation (``OV#`` in Table 2).

Edges are addressed by :data:`Edge2D` tuples ``(orient, x, y)`` where
``('H', x, y)`` joins tiles ``(x, y)`` and ``(x+1, y)``, and ``('V', x, y)``
joins ``(x, y)`` and ``(x, y+1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.grid.layers import Direction, LayerStack

Edge2D = Tuple[str, int, int]
Tile = Tuple[int, int]

_ORIENT_TO_DIRECTION = {"H": Direction.HORIZONTAL, "V": Direction.VERTICAL}


def edge_between(a: Tile, b: Tile) -> Edge2D:
    """The 2-D edge joining two adjacent tiles (order-insensitive)."""
    (ax, ay), (bx, by) = a, b
    if ax == bx and abs(ay - by) == 1:
        return ("V", ax, min(ay, by))
    if ay == by and abs(ax - bx) == 1:
        return ("H", min(ax, bx), ay)
    raise ValueError(f"tiles {a} and {b} are not adjacent")


def edge_endpoints(edge: Edge2D) -> Tuple[Tile, Tile]:
    """The two tiles an edge joins."""
    orient, x, y = edge
    if orient == "H":
        return (x, y), (x + 1, y)
    if orient == "V":
        return (x, y), (x, y + 1)
    raise ValueError(f"bad edge orientation {orient!r}")


def edge_direction(edge: Edge2D) -> Direction:
    """Routing direction required of a layer hosting this edge."""
    return _ORIENT_TO_DIRECTION[edge[0]]


@dataclass
class GridSnapshot:
    """Opaque copy of a grid's mutable usage state (see ``GridGraph.snapshot``)."""

    usage: Dict[int, np.ndarray]
    via_usage: np.ndarray


class GridGraph:
    """Routing grid with per-layer wire capacities and via accounting.

    Parameters
    ----------
    nx_tiles, ny_tiles:
        Grid dimensions in G-cells.
    stack:
        The metal :class:`~repro.grid.layers.LayerStack`.  Each layer's
        ``default_tracks`` seeds the capacity of every edge of matching
        direction; per-edge adjustments may then lower (or raise) individual
        capacities, as ISPD'08 benchmarks do.
    """

    def __init__(self, nx_tiles: int, ny_tiles: int, stack: LayerStack) -> None:
        if nx_tiles < 1 or ny_tiles < 1:
            raise ValueError("grid must have at least one tile per dimension")
        self.nx_tiles = int(nx_tiles)
        self.ny_tiles = int(ny_tiles)
        self.stack = stack
        self._cap: Dict[int, np.ndarray] = {}
        self._usage: Dict[int, np.ndarray] = {}
        for layer in stack:
            shape = self._array_shape(layer.direction)
            self._cap[layer.index] = np.full(shape, layer.default_tracks, dtype=np.int64)
            self._usage[layer.index] = np.zeros(shape, dtype=np.int64)
        # via usage between layer l and l+1 (cut index l-1), per tile
        self._via_usage = np.zeros(
            (self.nx_tiles, self.ny_tiles, max(stack.num_layers - 1, 0)),
            dtype=np.int64,
        )

    # -- geometry --------------------------------------------------------

    def _array_shape(self, direction: Direction) -> Tuple[int, int]:
        if direction is Direction.HORIZONTAL:
            return (max(self.nx_tiles - 1, 0), self.ny_tiles)
        return (self.nx_tiles, max(self.ny_tiles - 1, 0))

    def contains_tile(self, tile: Tile) -> bool:
        x, y = tile
        return 0 <= x < self.nx_tiles and 0 <= y < self.ny_tiles

    def contains_edge(self, edge: Edge2D) -> bool:
        orient, x, y = edge
        if orient == "H":
            return 0 <= x < self.nx_tiles - 1 and 0 <= y < self.ny_tiles
        if orient == "V":
            return 0 <= x < self.nx_tiles and 0 <= y < self.ny_tiles - 1
        return False

    def iter_tiles(self) -> Iterator[Tile]:
        for x in range(self.nx_tiles):
            for y in range(self.ny_tiles):
                yield (x, y)

    def iter_edges(self, orient: str) -> Iterator[Edge2D]:
        """All 2-D edges of one orientation."""
        if orient == "H":
            for x in range(self.nx_tiles - 1):
                for y in range(self.ny_tiles):
                    yield ("H", x, y)
        elif orient == "V":
            for x in range(self.nx_tiles):
                for y in range(self.ny_tiles - 1):
                    yield ("V", x, y)
        else:
            raise ValueError(f"bad orientation {orient!r}")

    def layers_for_edge(self, edge: Edge2D) -> Tuple[int, ...]:
        """Indices of layers that can host wires on this edge."""
        return self.stack.layers_of(edge_direction(edge))

    def _check(self, edge: Edge2D, layer: int) -> Tuple[int, int]:
        if not self.contains_edge(edge):
            raise ValueError(f"edge {edge} outside {self.nx_tiles}x{self.ny_tiles} grid")
        if self.stack.direction_of(layer) is not edge_direction(edge):
            raise ValueError(
                f"layer {layer} routes {self.stack.direction_of(layer)}, "
                f"cannot host edge {edge}"
            )
        return edge[1], edge[2]

    # -- wire capacity / usage --------------------------------------------

    def capacity(self, edge: Edge2D, layer: int) -> int:
        """Wire capacity (tracks) of ``edge`` on ``layer``."""
        x, y = self._check(edge, layer)
        return int(self._cap[layer][x, y])

    def set_capacity(self, edge: Edge2D, layer: int, tracks: int) -> None:
        """Override one edge's capacity (ISPD capacity adjustment)."""
        if tracks < 0:
            raise ValueError("capacity cannot be negative")
        x, y = self._check(edge, layer)
        self._cap[layer][x, y] = int(tracks)

    def usage(self, edge: Edge2D, layer: int) -> int:
        x, y = self._check(edge, layer)
        return int(self._usage[layer][x, y])

    def remaining(self, edge: Edge2D, layer: int) -> int:
        """Free tracks on (edge, layer); may be negative when overflowed."""
        x, y = self._check(edge, layer)
        return int(self._cap[layer][x, y] - self._usage[layer][x, y])

    def add_wire(self, edge: Edge2D, layer: int, count: int = 1) -> None:
        """Occupy ``count`` tracks of (edge, layer).  Overflow is permitted
        (and later reported), matching the soft-capacity behaviour of global
        routers."""
        x, y = self._check(edge, layer)
        self._usage[layer][x, y] += int(count)

    def remove_wire(self, edge: Edge2D, layer: int, count: int = 1) -> None:
        x, y = self._check(edge, layer)
        if self._usage[layer][x, y] < count:
            raise ValueError(
                f"removing {count} wires from {edge} layer {layer} "
                f"with only {self._usage[layer][x, y]} present"
            )
        self._usage[layer][x, y] -= int(count)

    # -- vias --------------------------------------------------------------

    @property
    def vias_per_track(self) -> int:
        """``nv`` of constraint (4d): via sites along one track in a tile."""
        pitch = self.stack.via_width + self.stack.via_spacing
        return max(int(self.stack.tile_width // pitch), 1)

    def add_via_stack(self, tile: Tile, lower: int, upper: int, count: int = 1) -> None:
        """Record a stacked via through ``tile`` spanning layers lower..upper."""
        if lower > upper:
            lower, upper = upper, lower
        if not self.contains_tile(tile):
            raise ValueError(f"tile {tile} outside grid")
        self.stack.layer(lower)
        self.stack.layer(upper)
        x, y = tile
        if upper > lower:
            self._via_usage[x, y, lower - 1 : upper - 1] += int(count)

    def remove_via_stack(self, tile: Tile, lower: int, upper: int, count: int = 1) -> None:
        if lower > upper:
            lower, upper = upper, lower
        x, y = tile
        span = self._via_usage[x, y, lower - 1 : upper - 1]
        if np.any(span < count):
            raise ValueError(f"via usage underflow at {tile} layers {lower}..{upper}")
        if upper > lower:
            self._via_usage[x, y, lower - 1 : upper - 1] -= int(count)

    def via_usage_at(self, tile: Tile, cut_lower_layer: int) -> int:
        """Vias through ``tile`` crossing the cut above ``cut_lower_layer``."""
        x, y = tile
        return int(self._via_usage[x, y, cut_lower_layer - 1])

    def _adjacent_edge_free_tracks(self, tile: Tile, layer: int) -> int:
        """Sum of remaining tracks of the (up to) two co-directional edges
        touching ``tile`` on ``layer`` — the ``cap_e0 + cap_e1`` of Eqn. (1)."""
        x, y = tile
        direction = self.stack.direction_of(layer)
        if direction is Direction.HORIZONTAL:
            candidates = [("H", x - 1, y), ("H", x, y)]
        else:
            candidates = [("V", x, y - 1), ("V", x, y)]
        total = 0
        for edge in candidates:
            if self.contains_edge(edge):
                total += max(self.remaining(edge, layer), 0)
        return total

    def via_capacity(self, tile: Tile, cut_lower_layer: int) -> int:
        """Via capacity of the cut above ``cut_lower_layer`` at ``tile``.

        Implements Eqn. (1).  The paper states the formula for one layer's
        pair of adjacent edges; a via crossing the cut blocks track area on
        both bounding layers, so we take the minimum of the two layers'
        values (following the multi-layer capacity model of Hsu et al.,
        ICCAD'08, ref. [11] of the paper).
        """
        if not self.contains_tile(tile):
            raise ValueError(f"tile {tile} outside grid")
        lower = cut_lower_layer
        upper = cut_lower_layer + 1
        self.stack.layer(lower)
        self.stack.layer(upper)
        caps = []
        for layer in (lower, upper):
            wire = self.stack.layer(layer)
            free = self._adjacent_edge_free_tracks(tile, layer)
            area = wire.pitch * self.stack.tile_width * free
            caps.append(int(area // self.stack.via_pitch_sq))
        return min(caps)

    # -- overflow metrics ----------------------------------------------------

    def total_wire_overflow(self) -> int:
        """Sum over (edge, layer) of tracks used beyond capacity."""
        total = 0
        for layer in self.stack:
            over = self._usage[layer.index] - self._cap[layer.index]
            total += int(np.clip(over, 0, None).sum())
        return total

    def total_via_overflow(self) -> int:
        """``OV#`` of Table 2: via usage beyond Eqn. (1) capacity, summed
        over every tile and cut."""
        total = 0
        for (x, y) in self.iter_tiles():
            for cut in range(1, self.stack.num_layers):
                used = self.via_usage_at((x, y), cut)
                if used == 0:
                    continue
                cap = self.via_capacity((x, y), cut)
                if used > cap:
                    total += used - cap
        return total

    def total_vias(self) -> int:
        """Total via cuts in use (the ``via#`` column of Table 2)."""
        return int(self._via_usage.sum())

    def total_wirelength(self) -> int:
        """Total occupied tracks summed over all edges and layers."""
        return int(sum(int(u.sum()) for u in self._usage.values()))

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> GridSnapshot:
        """Copy the mutable usage state for later :meth:`restore`."""
        return GridSnapshot(
            usage={l: u.copy() for l, u in self._usage.items()},
            via_usage=self._via_usage.copy(),
        )

    def restore(self, snap: GridSnapshot) -> None:
        for layer, arr in snap.usage.items():
            self._usage[layer][...] = arr
        self._via_usage[...] = snap.via_usage

    # -- aggregate views ---------------------------------------------------

    def usage_array(self, layer: int) -> np.ndarray:
        """Read-only view of one layer's usage array (tests/analysis)."""
        return self._usage[layer].copy()

    def capacity_array(self, layer: int) -> np.ndarray:
        return self._cap[layer].copy()

    def density_map(self) -> np.ndarray:
        """Per-tile 2-D routing density (Fig. 3(b)): total wire usage of the
        edges incident to each tile, across all layers."""
        dens = np.zeros((self.nx_tiles, self.ny_tiles), dtype=np.float64)
        for layer in self.stack:
            use = self._usage[layer.index]
            if layer.direction is Direction.HORIZONTAL:
                dens[:-1, :] += use
                dens[1:, :] += use
            else:
                dens[:, :-1] += use
                dens[:, 1:] += use
        return dens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridGraph({self.nx_tiles}x{self.ny_tiles}, "
            f"{self.stack.num_layers} layers, vias={self.total_vias()})"
        )


def manhattan_path_edges(path: List[Tile]) -> List[Edge2D]:
    """Edges traversed by a tile-by-tile path (consecutive tiles adjacent)."""
    return [edge_between(a, b) for a, b in zip(path, path[1:])]
