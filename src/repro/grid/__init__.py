"""3-D global-routing grid model.

This subpackage implements the layer/grid model of Section 2.1 of the paper:

- :mod:`repro.grid.layers` — metal layers with unidirectional preferred
  routing, per-layer RC values, and via resistances between adjacent layers.
- :mod:`repro.grid.graph` — the 3-D grid graph: tiles (G-cells), wire edges
  with per-layer capacities, via-capacity accounting per Eqn. (1), and
  usage/overflow bookkeeping used by every router and optimizer in the repo.
"""

from repro.grid.layers import Direction, Layer, LayerStack
from repro.grid.graph import Edge2D, GridGraph

__all__ = ["Direction", "Layer", "LayerStack", "Edge2D", "GridGraph"]
