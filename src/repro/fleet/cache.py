"""Cross-request result cache of the gateway: signature -> digest + payload.

Requests with equal problem signatures are bit-identical by construction
(that is the invariant the whole serving tier is built on), so the
gateway may answer an idempotent repeat from cache without touching any
shard — or any solver.  One entry holds the full success payload of the
original ``/v1/assign`` response, its sha256 assignment digest, and the
trace identity of the solve that produced it, so a cache hit can record
a ``fleet.cache_hit`` link span pointing at the original solve's trace.

Only plain ``/v1/assign`` 200s are cached (``return_assignment: true``
responses carry megabytes of layers and are deliberately excluded; ECO
responses advance an epoch, so caching one would replay a state
transition).  A ``/v1/eco`` success *invalidates* the affected
signature: the resident's committed state moved, and although a later
full solve would reproduce the same digest, the epoch bookkeeping a
client observes must come from the shard, not from a stale cache line.

The cache is a bounded LRU, touched only from the gateway's single
asyncio loop — no lock needed or taken.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs import metrics


@dataclass
class CacheEntry:
    """One cached ``/v1/assign`` success."""

    digest: str
    payload: Dict[str, Any]
    # Trace identity of the solve that produced the payload — the target
    # of the ``fleet.cache_hit`` link span recorded on every hit.
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    stored_at: float = field(default_factory=time.monotonic)
    hits: int = 0


class ResultCache:
    """Bounded LRU of :class:`CacheEntry` keyed by signature key."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0 (0 disables caching)")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            metrics.inc("fleet.cache_misses")
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        metrics.inc("fleet.cache_hits")
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        if self.capacity == 0:  # caching disabled
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            metrics.inc("fleet.cache_evictions")

    def invalidate(self, key: str) -> bool:
        """Drop a signature's entry (ECO landed); True when present."""
        if self._entries.pop(key, None) is not None:
            metrics.inc("fleet.cache_invalidations")
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, Any]:
        """Topology-endpoint snapshot (``GET /fleet/shards``)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "keys": list(self._entries),
        }
