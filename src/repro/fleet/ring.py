"""Deterministic consistent-hash ring over problem signatures.

The fleet tier routes every request by its problem signature
(:meth:`repro.ispd.request.AssignRequest.signature_key`), and three
parties must independently agree on the mapping: the gateway (to pick
the shard holding the warm resident), each shard (to find the ring
successor it replicates warm state to, and to recognize failed-over
traffic), and the load generator (to know which shard to kill).  They
never exchange the mapping — they each build this ring from the same
sorted shard-id list and hash the same strings.

Determinism is therefore non-negotiable: positions come from sha256, a
function of the bytes alone, never from Python's ``hash()`` (which is
salted per process by ``PYTHONHASHSEED``).  ``tests/test_fleet.py``
pins this with a varied-hash-seed subprocess test.

Each shard owns ``vnodes`` pseudo-random positions ("virtual nodes") so
load spreads evenly and a membership change only remaps the key ranges
adjacent to the added/removed shard's positions — the classic
consistent-hashing minimal-movement property, which a hypothesis
property test asserts directly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

DEFAULT_VNODES = 64


def _position(text: str) -> int:
    """Ring position of a string: the first 8 bytes of its sha256."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping signature keys to shard ids."""

    def __init__(
        self, shards: Iterable[str], vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._shards: List[str] = []
        # Sorted (position, shard_id) pairs; ties (astronomically unlikely
        # with 64-bit positions) break on the shard id, deterministically.
        self._points: List[Tuple[int, str]] = []
        for shard in sorted(set(shards)):
            self._insert(shard)
        if not self._shards:
            raise ValueError("ring needs at least one shard")

    # -- membership -------------------------------------------------------

    def _insert(self, shard: str) -> None:
        self._shards.append(shard)
        self._shards.sort()
        for i in range(self.vnodes):
            point = (_position(f"{shard}#{i}"), shard)
            bisect.insort(self._points, point)

    def add(self, shard: str) -> None:
        """Explicit rebalance: join one shard (no-op if present)."""
        if shard not in self._shards:
            self._insert(shard)

    def remove(self, shard: str) -> None:
        """Explicit rebalance: leave one shard (its ranges move to successors)."""
        if shard not in self._shards:
            return
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.remove(shard)
        self._points = [p for p in self._points if p[1] != shard]

    @property
    def shards(self) -> Tuple[str, ...]:
        return tuple(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    # -- lookup -----------------------------------------------------------

    def _walk_from(self, key: str) -> Iterable[str]:
        """Shard ids in ring order starting at ``key``'s position."""
        start = bisect.bisect_right(self._points, (_position(key), ""))
        n = len(self._points)
        for offset in range(n):
            yield self._points[(start + offset) % n][1]

    def owner(self, key: str) -> str:
        """The shard owning ``key``: first position clockwise from its hash."""
        return next(iter(self._walk_from(key)))

    def successors(self, key: str) -> List[str]:
        """All shards in failover order for ``key`` (owner first, distinct).

        The gateway tries these in order when shards die mid-request; the
        owning shard replicates its warm state to ``successors(key)[1]``.
        Every party computes the identical list from the identical ring.
        """
        seen: List[str] = []
        for shard in self._walk_from(key):
            if shard not in seen:
                seen.append(shard)
                if len(seen) == len(self._shards):
                    break
        return seen

    def replica_target(self, key: str, shard_id: str) -> str | None:
        """Where ``shard_id`` should replicate ``key``'s warm state.

        The first shard in failover order that is not ``shard_id`` itself —
        for the owner that is the ring successor, which is exactly where
        the gateway will send the key's traffic if the owner dies.  ``None``
        on a single-shard ring (nowhere to replicate).
        """
        for shard in self.successors(key):
            if shard != shard_id:
                return shard
        return None

    def assignments(self, keys: Iterable[str]) -> Dict[str, str]:
        """key -> owner for a batch of keys (rebalance bookkeeping)."""
        return {key: self.owner(key) for key in keys}
