"""The fleet front end: a sharding, caching, failing-over HTTP gateway.

``repro gateway`` sits in front of N resident ``repro serve`` shard
nodes and presents the identical single-node API (``POST /v1/assign``,
``POST /v1/eco``) at fleet scale:

- **sharding** — requests route by problem signature over a
  deterministic consistent-hash ring (:mod:`repro.fleet.ring`), so the
  same benchmark+config always lands on the shard holding its warm
  resident;
- **result cache** — idempotent ``/v1/assign`` repeats answer straight
  from the gateway's digest-keyed LRU (:mod:`repro.fleet.cache`),
  touching no shard and no solver; a ``/v1/eco`` success invalidates
  the affected signature;
- **health + failover** — shards are health-checked via ``/readyz``;
  a transport failure mid-request marks the shard dead and retries the
  ring's next live shard (which a warm replica makes cheap, see
  :mod:`repro.fleet.replica`).  HTTP *error statuses are not failover*:
  a 429/504/409 is a shard's answer, and it passes through to the
  client as the raw bytes the shard produced — byte-compatible with
  single-node serving;
- **backpressure** — per-shard in-flight caps with a bounded wait line;
  beyond it the gateway answers 429 + ``Retry-After`` itself.

Tracing: the gateway continues (or mints) the W3C ``traceparent``, opens
a detached ``gateway.request`` span, and forwards its context to the
shard — so ``repro obs trace show`` renders gateway -> shard -> engine
as one connected tree.  Cache hits record a ``fleet.cache_hit`` link
span pointing at the original solve's trace.

Bit-identity stays the currency: a gateway-served digest equals the
single-node digest for every request, under failover and cache hits
alike (CI's fleet-smoke job kills a shard mid-load to prove it).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.fleet.cache import CacheEntry, ResultCache
from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.ispd.request import (
    AssignRequest,
    EcoRequest,
    RequestError,
    error_body,
)
from repro.obs import metrics, tracer
from repro.obs.tracer import TraceContext
from repro.service import http
from repro.utils import get_logger

log = get_logger(__name__)

Address = Tuple[str, int]

_REQUEST_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0)

# Transport-level failures that justify trying the next shard: the shard
# never produced an HTTP answer, so retrying elsewhere cannot double-count
# an application-level state transition the client observed.
_FAILOVER_ERRORS = (ConnectionError, OSError, EOFError, asyncio.IncompleteReadError)


@dataclass
class GatewayConfig:
    """Knobs of one gateway instance."""

    shards: Dict[str, Address] = field(default_factory=dict)
    host: str = "127.0.0.1"
    port: int = 8282
    vnodes: int = DEFAULT_VNODES
    cache_capacity: int = 256
    # Per-shard backpressure: at most ``max_inflight_per_shard`` proxied
    # requests on one shard, at most ``max_waiting_per_shard`` queued
    # behind them; beyond that the gateway 429s without asking the shard.
    max_inflight_per_shard: int = 8
    max_waiting_per_shard: int = 32
    health_interval_seconds: float = 1.0
    connect_timeout_seconds: float = 5.0
    request_timeout_seconds: float = 300.0
    max_body_bytes: int = 1 << 20
    header_timeout_seconds: float = 10.0

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("gateway needs at least one shard")
        if self.max_inflight_per_shard < 1:
            raise ValueError("max_inflight_per_shard must be >= 1")


class ShardState:
    """Liveness + backpressure accounting of one shard."""

    def __init__(self, shard_id: str, address: Address, inflight: int) -> None:
        self.id = shard_id
        self.address = address
        self.live = True  # optimistic until the first health check
        self.waiters = 0
        self.semaphore = asyncio.Semaphore(inflight)
        self.failures = 0
        self.proxied = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "address": f"{self.address[0]}:{self.address[1]}",
            "live": self.live,
            "proxied": self.proxied,
            "failures": self.failures,
        }


class Gateway:
    """One gateway process: ring + cache + health + proxy front."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.ring = HashRing(config.shards, vnodes=config.vnodes)
        self.cache = ResultCache(config.cache_capacity)
        self.shards = {
            sid: ShardState(sid, addr, config.max_inflight_per_shard)
            for sid, addr in config.shards.items()
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._health_task: Optional[asyncio.Task] = None
        self._started_at = time.monotonic()
        self.port: Optional[int] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        metrics.enable()
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        await self._health_sweep()  # know the fleet before accepting
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop(), name="gateway-health"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "gateway on http://%s:%d over %d shards (%s)",
            self.config.host, self.port, len(self.shards),
            ", ".join(sorted(self.shards)),
        )

    async def serve_forever(self, install_signals: bool = True) -> int:
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig, self.initiate_shutdown, f"signal {sig.name}"
                    )
                except (NotImplementedError, RuntimeError, ValueError):
                    break
        assert self._stopped is not None
        await self._stopped.wait()
        return 0

    def initiate_shutdown(self, reason: str = "requested") -> None:
        if self._stopped is None or self._stopped.is_set():
            return
        log.info("gateway shutdown (%s)", reason)
        if self._health_task is not None:
            self._health_task.cancel()
        if self._server is not None:
            self._server.close()
        self._stopped.set()

    async def wait_closed(self) -> None:
        if self._server is not None:
            await self._server.wait_closed()
        if self._health_task is not None:
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass

    @property
    def live_shards(self) -> List[str]:
        return [sid for sid, s in self.shards.items() if s.live]

    # -- health -----------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_seconds)
            await self._health_sweep()

    async def _health_sweep(self) -> None:
        await asyncio.gather(
            *(self._probe(shard) for shard in self.shards.values()),
            return_exceptions=True,
        )
        metrics.set_gauge("fleet.live_shards", len(self.live_shards))

    async def _probe(self, shard: ShardState) -> None:
        try:
            status, _headers, _blob = await self._exchange(
                shard.address, "GET", "/readyz", b"", {},
                timeout=self.config.connect_timeout_seconds,
            )
            live = status == 200
        except _FAILOVER_ERRORS + (asyncio.TimeoutError,):
            live = False
        if live != shard.live:
            log.info(
                "shard %s %s", shard.id, "recovered" if live else "went dark"
            )
            metrics.inc("fleet.shard_up" if live else "fleet.shard_down")
        shard.live = live

    # -- HTTP client ------------------------------------------------------

    async def _exchange(
        self,
        address: Address,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One upstream HTTP exchange; returns (status, headers, raw body)."""
        timeout = timeout or self.config.request_timeout_seconds
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(*address),
            timeout=self.config.connect_timeout_seconds,
        )
        try:
            extra = "".join(f"{k}: {v}\r\n" for k, v in headers.items())
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {address[0]}:{address[1]}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                + extra
                + "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            header_blob = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=timeout
            )
            lines = header_blob[:-4].decode("latin-1").split("\r\n")
            status = int(lines[0].split(" ", 2)[1])
            resp_headers: Dict[str, str] = {}
            for line in lines[1:]:
                if ":" in line:
                    key, value = line.split(":", 1)
                    resp_headers[key.strip().lower()] = value.strip()
            length = int(resp_headers.get("content-length", "0") or "0")
            blob = (
                await asyncio.wait_for(reader.readexactly(length), timeout=timeout)
                if length else b""
            )
            return status, resp_headers, blob
        finally:
            writer.close()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.monotonic()
        try:
            method, path, headers_in, body = await http.read_request(
                reader, self.config.max_body_bytes,
                self.config.header_timeout_seconds,
            )
        except http.HttpError as exc:
            ctx = TraceContext(tracer.new_trace_id())
            await http.respond(
                writer, exc.status,
                _tag(error_body("bad_request", str(exc)), ctx),
                _trace_headers({}, ctx),
            )
            return
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError, asyncio.LimitOverrunError):
            writer.close()
            return
        ctx = (
            TraceContext.from_traceparent(headers_in.get("traceparent"))
            or TraceContext(tracer.new_trace_id())
        )
        span = tracer.start_span(
            "gateway.request", ctx=ctx, method=method, path=path
        )
        hop_ctx = TraceContext(
            ctx.trace_id, span.id if span is not None else ctx.span_id
        )
        error_type: Optional[str] = None
        raw: Optional[Tuple[int, bytes, str, Dict[str, str]]] = None
        try:
            routed = await self._route(method, path, body, headers_in, hop_ctx)
        except Exception as exc:  # crash isolation, like the shard server
            log.warning(
                "unhandled gateway error %s %s", method, path, exc_info=True
            )
            metrics.inc("fleet.internal_errors")
            error_type = type(exc).__name__
            routed = (
                500,
                error_body("internal", f"{type(exc).__name__}: {exc}"),
                {},
            )
        if len(routed) == 4:  # passthrough: (status, blob, content_type, headers)
            raw = routed  # type: ignore[assignment]
        metrics.observe(
            "fleet.request_seconds", time.monotonic() - started, _REQUEST_BUCKETS
        )
        if raw is not None:
            status, blob, content_type, headers = raw
            metrics.inc(f"fleet.http_{status}")
            await http.respond_raw(
                writer, status, blob, content_type,
                _trace_headers(headers, hop_ctx),
            )
        else:
            status, payload, headers = routed  # type: ignore[misc]
            metrics.inc(f"fleet.http_{status}")
            await http.respond(
                writer, status,
                _tag(payload, hop_ctx),
                _trace_headers(headers, hop_ctx),
            )
        if span is not None:
            span.set_attr("status", status)
            if error_type is None and status >= 500:
                error_type = f"http_{status}"
            span.finish(error_type)

    # -- routing ----------------------------------------------------------

    async def _route(self, method, path, body, headers_in, ctx):
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "alive",
                "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                "shards": len(self.shards),
                "live_shards": len(self.live_shards),
            }, {}
        if path == "/readyz" and method == "GET":
            live = self.live_shards
            if live:
                return 200, {
                    "status": "ready", "live_shards": len(live)
                }, {}
            return 503, {"status": "no_live_shards"}, {}
        if path == "/metrics" and method == "GET":
            metrics.set_gauge("fleet.cache_entries", len(self.cache))
            metrics.set_gauge("fleet.live_shards", len(self.live_shards))
            return 200, metrics.registry().render_prometheus(), {}
        if path == "/fleet/shards" and method == "GET":
            return 200, {
                "schema": "repro.fleet_topology/v1",
                "shards": [
                    self.shards[sid].snapshot() for sid in sorted(self.shards)
                ],
                "vnodes": self.config.vnodes,
                "cache": self.cache.stats(),
            }, {}
        if path in ("/v1/assign", "/v1/eco") and method == "POST":
            return await self._proxy(path, body, headers_in, ctx)
        if path in ("/healthz", "/readyz", "/metrics", "/fleet/shards",
                    "/v1/assign", "/v1/eco"):
            return 405, error_body(
                "method_not_allowed", f"{method} not supported on {path}"
            ), {}
        return 404, error_body("not_found", f"no route {path}"), {}

    async def _proxy(self, path, body, headers_in, ctx):
        """Shard one ``/v1/assign``/``/v1/eco`` request; the tentpole path."""
        parser = (
            EcoRequest.from_json if path == "/v1/eco"
            else AssignRequest.from_json
        )
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = parser(payload)
        except (RequestError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            # Same parser, same error shape as a shard's own 400 — a bad
            # request is rejected at the edge without burning a shard slot.
            metrics.inc("fleet.bad_requests")
            return 400, error_body("bad_request", str(exc)), {}
        key = request.signature_key()
        cacheable = path == "/v1/assign" and not request.return_assignment
        if cacheable:
            entry = self.cache.get(key)
            if entry is not None:
                return self._serve_cache_hit(key, entry, ctx)

        # Forward the gateway span's context so the shard's serve.request
        # span parents under it: one connected gateway->shard->engine tree.
        hop_headers = {"traceparent": ctx.to_traceparent()}
        attempts = 0
        # A request is a failover once it cannot be served by the first
        # shard the ring names for it — whether the health sweep already
        # declared that shard dead (skip) or it died mid-request (below).
        failed_over = False
        for shard_id in self.ring.successors(key):
            shard = self.shards[shard_id]
            if not shard.live:
                failed_over = True
                continue
            if shard.waiters >= self.config.max_waiting_per_shard:
                metrics.inc("fleet.backpressure_429")
                return 429, error_body(
                    "overloaded",
                    f"gateway backlog for shard {shard_id} is full",
                    retry_after_seconds=1,
                ), {"Retry-After": "1"}
            attempts += 1
            shard.waiters += 1
            try:
                await shard.semaphore.acquire()
            finally:
                shard.waiters -= 1
            try:
                status, resp_headers, blob = await self._exchange(
                    shard.address, "POST", path, body, hop_headers
                )
            except _FAILOVER_ERRORS as exc:
                # The shard never answered: mark it dead and fail over to
                # the ring's next live shard.  Bit-identity makes the
                # retry safe — the successor produces the same digest.
                shard.live = False
                shard.failures += 1
                failed_over = True
                metrics.inc("fleet.transport_failures")
                log.warning(
                    "shard %s failed mid-request (%s: %s); failing over",
                    shard_id, type(exc).__name__, exc,
                )
                continue
            except asyncio.TimeoutError:
                # The shard is still working — answering 504 here mirrors
                # the shard's own deadline taxonomy; re-running a live
                # solve on another shard would double the work, not halve
                # the wait.
                metrics.inc("fleet.upstream_timeouts")
                return 504, error_body(
                    "deadline_exceeded",
                    f"shard {shard_id} exceeded the gateway timeout",
                ), {}
            finally:
                shard.semaphore.release()
            shard.proxied += 1
            metrics.inc("fleet.proxied")
            if failed_over:
                metrics.inc("fleet.failovers")
                metrics.inc("fleet.failover_successes")
            self._post_process(path, key, status, resp_headers, blob, cacheable)
            # Raw passthrough: the client sees the exact bytes the shard
            # produced (429 Retry-After, 504, ECO 409 epoch body included).
            return (
                status,
                blob,
                resp_headers.get("content-type", http.JSON_CONTENT_TYPE),
                _passthrough_headers(resp_headers),
            )
        metrics.inc("fleet.no_live_shards")
        return 503, error_body(
            "no_live_shards",
            f"no live shard for signature {key} "
            f"({attempts} of {len(self.shards)} tried)",
        ), {}

    def _serve_cache_hit(self, key, entry, ctx):
        """Answer from cache; no shard, no solver, one link span."""
        link = tracer.start_span(
            "fleet.cache_hit",
            ctx=ctx,
            signature=key,
            link_trace_id=entry.trace_id,
            link_span_id=entry.span_id,
        )
        if link is not None:
            link.finish()
        payload = dict(entry.payload)
        payload["trace_id"] = ctx.trace_id
        payload["fleet"] = {
            "cache_hit": True,
            "origin_trace_id": entry.trace_id,
        }
        return 200, payload, {"X-Fleet-Cache": "hit"}

    def _post_process(
        self, path, key, status, resp_headers, blob, cacheable
    ) -> None:
        """Cache bookkeeping after a successful upstream exchange."""
        if status != 200:
            return
        if path == "/v1/eco":
            # The resident's committed state moved: a cached epoch-0
            # payload is still digest-correct but epoch-stale.  Drop it.
            self.cache.invalidate(key)
            return
        if not cacheable:
            return
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        digest = payload.get("assignment_digest")
        if not digest:
            return
        # Link target of future cache hits: the shard stamped the solve's
        # trace id into the body and its serve.request span id into the
        # response traceparent.
        hop = TraceContext.from_traceparent(resp_headers.get("traceparent"))
        self.cache.put(key, CacheEntry(
            digest=digest,
            payload=payload,
            trace_id=payload.get("trace_id"),
            span_id=hop.span_id if hop is not None else None,
        ))


def _tag(payload: Any, ctx: TraceContext) -> Any:
    if isinstance(payload, dict):
        payload.setdefault("trace_id", ctx.trace_id)
    return payload


def _trace_headers(
    headers: Optional[Dict[str, str]], ctx: TraceContext
) -> Dict[str, str]:
    headers = dict(headers or {})
    headers.setdefault("X-Trace-Id", ctx.trace_id or "")
    if ctx.span_id is not None:
        headers.setdefault("traceparent", ctx.to_traceparent())
    return headers


def _passthrough_headers(resp_headers: Dict[str, str]) -> Dict[str, str]:
    """Upstream headers the client must see unmodified."""
    out: Dict[str, str] = {}
    if "retry-after" in resp_headers:
        out["Retry-After"] = resp_headers["retry-after"]
    if "x-trace-id" in resp_headers:
        out["X-Trace-Id"] = resp_headers["x-trace-id"]
    return out


async def run_gateway(config: GatewayConfig) -> int:
    """Start a gateway and block until shutdown; returns the exit code."""
    gateway = Gateway(config)
    await gateway.start()
    code = await gateway.serve_forever()
    await gateway.wait_closed()
    return code


class GatewayThread:
    """A :class:`Gateway` on a background thread (tests and loadgen)."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.port: Optional[int] = None
        self.gateway: Optional[Gateway] = None
        self._ready = threading.Event()
        self._failed: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="fleet-gateway", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._failed = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.gateway = Gateway(self.config)
        await self.gateway.start()
        self.port = self.gateway.port
        self._ready.set()
        await self.gateway.serve_forever(install_signals=False)
        await self.gateway.wait_closed()

    def start(self, timeout: float = 60.0) -> "GatewayThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("gateway did not come up")
        if self._failed is not None:
            raise RuntimeError(f"gateway failed: {self._failed!r}")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self.gateway is not None and self._loop is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                self.gateway.initiate_shutdown, "stop()"
            )
        self._thread.join(timeout)

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
