"""Fleet tier: sharded multi-node serving above the resident server.

One ``repro serve`` process is a *shard*; this package is everything
that turns N shards into one service:

- :mod:`repro.fleet.ring` — deterministic consistent-hash ring over
  problem signatures (sha256 positions, ``PYTHONHASHSEED``-proof), with
  explicit rebalance on membership change;
- :mod:`repro.fleet.gateway` — the ``repro gateway`` front end: shards
  ``/v1/assign``/``/v1/eco`` by ring ownership, health-checks via
  ``/readyz``, applies per-shard backpressure, fails over to the ring's
  next live shard on transport death, and passes shard error bytes
  through unmodified;
- :mod:`repro.fleet.cache` — the gateway's cross-request result cache
  (signature -> sha256 assignment digest + payload, bounded LRU,
  epoch-invalidated by ``/v1/eco``): idempotent repeats never touch a
  solver;
- :mod:`repro.fleet.replica` — warm-state replication over the dist
  protocol's authenticated framing, so failover resumes from the dead
  shard's post-prepare checkpoint + ADMM warm store instead of cold.

Bit-identity is the tier's invariant: a gateway-served digest equals the
single-node ``repro serve`` digest for every request — cache hits and
failovers included.  ``repro bench-serve --gateway --shards N`` drives
the whole topology in-process and writes ``fleet:<method>`` run-ledger
entries gated in CI (`--min-cache-hit-rate`,
``--max-failover-cold-starts``).  See ``docs/SERVING.md``.
"""

from __future__ import annotations

from repro.fleet.cache import CacheEntry, ResultCache
from repro.fleet.gateway import (
    Gateway,
    GatewayConfig,
    GatewayThread,
    run_gateway,
)
from repro.fleet.replica import (
    ReplicaReceiver,
    ReplicaState,
    ReplicaStore,
    Replicator,
    ShardFleet,
    capture_state,
    push_state,
)
from repro.fleet.ring import DEFAULT_VNODES, HashRing

__all__ = [
    "CacheEntry",
    "DEFAULT_VNODES",
    "Gateway",
    "GatewayConfig",
    "GatewayThread",
    "HashRing",
    "ReplicaReceiver",
    "ReplicaState",
    "ReplicaStore",
    "Replicator",
    "ResultCache",
    "ShardFleet",
    "capture_state",
    "push_state",
    "run_gateway",
]
