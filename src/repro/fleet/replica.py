"""Warm-state replication: shards stream solver state to their successor.

A shard failover that lands on a cold successor pays the full cold-start
bill (ADMM from scratch); the ROADMAP's fleet item asks for failover
that *resumes warm*.  After every full solve — and after every applied
ECO delta — the owning shard captures a :class:`ReplicaState` and pushes
it to the ring successor of the problem signature over the dist
protocol's authenticated length-prefixed framing
(:mod:`repro.dist.protocol`, ``multiprocessing.connection`` transport,
frame types ``replica``/``replica_ack``).

One replica state carries:

- the **post-prepare checkpoint** (the baseline layer snapshot): the
  successor re-prepares the benchmark deterministically and *verifies*
  its local baseline against the shipped one — a cross-node determinism
  check that refuses to seed from divergent state;
- the **ADMM warm store** (partition signature -> relaxed ``X``): warm
  reruns are bit-identical to fresh runs (tests/test_engine_reuse.py),
  so importing the owner's store changes latency, never the digest;
- the **ECO history** (edit sets applied since the last full solve) and
  the resulting epoch: a failed-over ``/v1/eco`` client can keep
  chaining epochs, because the successor replays the history bit-exactly
  before applying the client's next delta.

Push is synchronous on the solve path (the states are small — a few
arrays per touched partition) and failure-tolerant: a dead or slow
successor costs one logged warning, never the request.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from multiprocessing.connection import Client, Listener
from typing import Any, Dict, List, Optional, Tuple

from repro.dist.protocol import (
    ProtocolError,
    pack_payload,
    recv_message,
    send_message,
    unpack_payload,
)
from repro.fleet.ring import HashRing
from repro.obs import metrics
from repro.utils import get_logger

log = get_logger(__name__)

Address = Tuple[str, int]


@dataclass
class ReplicaState:
    """Everything a successor needs to resume a signature warm."""

    signature_key: str
    digest: str
    epoch: int
    runs: int
    # Post-prepare layer checkpoint: {(net_id, seg_id): layer}.
    baseline: Dict[Tuple[int, int], int]
    # ADMM warm store (partition signature -> relaxed X), or None for
    # methods without managed warm state.
    warm_store: Optional[Dict[Tuple, Any]] = None
    # Edit sets (JSON form) applied since the last full solve, in order.
    history: List[List[Dict[str, Any]]] = field(default_factory=list)


class ReplicaStore:
    """Thread-safe replica states held by a shard, keyed by signature.

    Written by the :class:`ReplicaReceiver` thread, read by the engine
    thread when :class:`~repro.service.resident.EngineHost` builds a
    resident for a signature this shard does not own.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._states: Dict[str, ReplicaState] = {}

    def put(self, state: ReplicaState) -> None:
        with self._lock:
            self._states[state.signature_key] = state

    def get(self, key: str) -> Optional[ReplicaState]:
        with self._lock:
            return self._states.get(key)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._states)

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)


class ReplicaReceiver(threading.Thread):
    """Background listener accepting replica pushes from fleet peers.

    Authenticated exactly like the dist fabric's remote workers: the
    ``multiprocessing.connection`` HMAC challenge with a shared authkey.
    One connection is served at a time — pushes are short, and a peer
    that stalls mid-frame only stalls replication, never serving.
    """

    def __init__(
        self, listen: Address, authkey: bytes, store: Optional[ReplicaStore] = None
    ) -> None:
        super().__init__(name="replica-receiver", daemon=True)
        self.store = store if store is not None else ReplicaStore()
        self._listener = Listener(listen, authkey=authkey)
        self._closing = False

    @property
    def address(self) -> Address:
        """The bound address (resolves a port-0 listen)."""
        return self._listener.address  # type: ignore[return-value]

    def run(self) -> None:
        while not self._closing:
            try:
                conn = self._listener.accept()
            except Exception:
                # Auth failure from a stranger, or the listener closing
                # out from under accept() during shutdown.
                if self._closing:
                    break
                continue
            try:
                with conn:
                    self._serve_connection(conn)
            except (EOFError, OSError, ProtocolError) as exc:
                log.warning("replica connection dropped: %s", exc)

    def _serve_connection(self, conn) -> None:
        while True:
            try:
                message = recv_message(conn, timeout=30.0)
            except EOFError:
                return
            if message is None:  # idle peer; let it re-connect
                return
            if message.get("type") != "replica":
                raise ProtocolError(
                    f"unexpected frame type {message.get('type')!r}"
                )
            state = unpack_payload(message["payload"])
            if not isinstance(state, ReplicaState):
                raise ProtocolError("replica payload is not a ReplicaState")
            self.store.put(state)
            metrics.inc("fleet.replica_received")
            log.info(
                "replica received: %s (epoch %d, %d warm entries)",
                state.signature_key, state.epoch,
                len(state.warm_store or ()),
            )
            send_message(conn, {
                "type": "replica_ack",
                "key": state.signature_key,
                "epoch": state.epoch,
                "ok": True,
            })

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        if self.is_alive():
            self.join(timeout=5.0)


def push_state(
    address: Address,
    authkey: bytes,
    state: ReplicaState,
    timeout: float = 10.0,
) -> bool:
    """Ship one replica state to a peer's receiver; True on ack."""
    conn = Client(address, authkey=authkey)
    try:
        send_message(conn, {
            "type": "replica",
            "key": state.signature_key,
            "epoch": state.epoch,
            "payload": pack_payload(state),
        })
        reply = recv_message(conn, timeout=timeout)
        return bool(
            reply is not None
            and reply.get("type") == "replica_ack"
            and reply.get("ok")
        )
    finally:
        conn.close()


def capture_state(resident) -> ReplicaState:
    """Snapshot a :class:`~repro.service.resident.ResidentEngine`.

    Called on the engine thread right after a solve or an applied ECO
    delta, so the resident is quiescent and consistent.
    """
    from repro.ispd.request import assignment_digest

    engine = getattr(resident, "_engine", None)
    warm_store = None
    if engine is not None and hasattr(engine, "export_warm_store"):
        warm_store = engine.export_warm_store()
    return ReplicaState(
        signature_key=resident.key,
        digest=assignment_digest(resident.bench),
        epoch=resident.state_epoch,
        runs=resident.runs,
        baseline=dict(resident._baseline),
        warm_store=warm_store,
        history=[list(h) for h in getattr(resident, "_history", ())],
    )


class Replicator:
    """Per-shard push side: routes replica states to the ring successor."""

    def __init__(
        self,
        shard_id: str,
        ring: HashRing,
        peers: Dict[str, Address],
        authkey: bytes,
        timeout: float = 10.0,
    ) -> None:
        self.shard_id = shard_id
        self.ring = ring
        self.peers = dict(peers)
        self.authkey = authkey
        self.timeout = timeout

    def push(self, resident) -> bool:
        """Capture and ship one resident's state; never raises."""
        target = self.ring.replica_target(resident.key, self.shard_id)
        if target is None:  # single-shard ring: nowhere to replicate
            return False
        address = self.peers.get(target)
        if address is None:
            log.warning("no replica address for fleet peer %r", target)
            return False
        try:
            state = capture_state(resident)
            ok = push_state(address, self.authkey, state, self.timeout)
        except (OSError, EOFError, ProtocolError, ValueError) as exc:
            metrics.inc("fleet.replica_push_failures")
            log.warning(
                "replica push %s -> %s failed: %s",
                resident.key, target, exc,
            )
            return False
        if ok:
            metrics.inc("fleet.replica_pushes")
        else:
            metrics.inc("fleet.replica_push_failures")
        return ok


@dataclass
class ShardFleet:
    """A shard's view of the fleet, handed to its engine host.

    ``ring`` decides ownership (a build for a signature this shard does
    not own is failed-over traffic), ``store`` holds replicas received
    from peers, ``replicator`` pushes this shard's state outward.
    """

    shard_id: str
    ring: HashRing
    store: ReplicaStore
    replicator: Optional[Replicator] = None
