"""Process-wide counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds three namespaces:

- **counters** — monotonically increasing totals (``inc``);
- **gauges** — last-written values (``set_gauge``);
- **histograms** — fixed upper-bound buckets (``observe``); bucket counts
  are stored per-bucket and rendered cumulatively in the Prometheus text
  format, Prometheus ``le`` semantics (value counted in the first bucket
  whose bound is ``>= value``).

Instrumented code uses the module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`) against the default registry; they are
guarded by a module flag so the disabled path is one global check with no
allocation.  Metric names are dotted (``sdp.iterations``); the Prometheus
rendering sanitizes them to ``repro_sdp_iterations``.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils import get_logger

log = get_logger(__name__)

# Generic latency-ish buckets (seconds) used when observe() is called
# without an explicit bucket spec.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

_enabled = False


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn metrics off and clear the default registry."""
    global _enabled
    _enabled = False
    registry().reset()


def is_enabled() -> bool:
    return _enabled


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum/count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        cleaned = set()
        for b in buckets:
            b = float(b)
            if math.isnan(b):
                raise ValueError("histogram bucket bound cannot be NaN")
            # Infinite bounds are dropped, not stored: +Inf duplicates the
            # implicit overflow slot (rendering both would emit two
            # le="+Inf" buckets) and a -Inf bound can never catch a value.
            if math.isinf(b):
                continue
            cleaned.add(b)
        bounds = tuple(sorted(cleaned))
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        self.buckets = bounds
        # one slot per finite bound plus the +Inf overflow slot
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Counts per ``le`` bound, Prometheus-style (last one == count)."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Thread-safe container of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.merge_conflicts = 0

    # -- writes -----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    def observe(
        self, name: str, value: float, buckets: Optional[Sequence[float]] = None
    ) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(buckets or DEFAULT_BUCKETS)
            hist.observe(value)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.merge_conflicts = 0

    # -- export -----------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot (the ``RunReport`` / worker-payload form)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: hist.as_dict() for name, hist in self.histograms.items()
                },
            }

    def merge_dict(self, data: Dict[str, Dict[str, object]]) -> None:
        """Fold a snapshot produced by :meth:`as_dict` into this registry.

        Counters and histogram buckets add; gauges are last-write-wins.  A
        histogram payload whose bucket layout disagrees with the local one
        (different bounds, or a counts list that does not match its own
        bounds) is rejected loudly: dropped, logged, and counted in
        :attr:`merge_conflicts` — silently misaligned bucket adds would
        corrupt every percentile derived from the histogram.
        """
        with self._lock:
            for name, value in data.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            for name, value in data.get("gauges", {}).items():
                self.gauges[name] = value
            for name, payload in data.get("histograms", {}).items():
                bounds = tuple(float(b) for b in payload.get("buckets", ()))
                counts = list(payload.get("counts", ()))
                hist = self.histograms.get(name)
                if hist is None and len(counts) == len(bounds) + 1:
                    try:
                        candidate = Histogram(bounds)
                    except ValueError:
                        candidate = None
                    # Non-finite/duplicate bounds collapse in the
                    # constructor; only adopt a faithful reconstruction.
                    hist = candidate if (
                        candidate is not None and candidate.buckets == bounds
                    ) else None
                    if hist is not None:
                        self.histograms[name] = hist
                if (
                    hist is None
                    or hist.buckets != bounds
                    or len(counts) != len(hist.counts)
                ):
                    self.merge_conflicts += 1
                    log.warning(
                        "dropping histogram %r during merge: bucket layout "
                        "%s/%d counts does not match local %s",
                        name, bounds, len(counts),
                        hist.buckets if hist is not None else "(unbuildable)",
                    )
                    continue
                for i, c in enumerate(counts):
                    hist.counts[i] += c
                hist.sum += payload.get("sum", 0.0)
                hist.count += payload.get("count", 0)

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition of every metric in the registry.

        Sanitized names are made collision-free across all three metric
        kinds: when two distinct dotted names sanitize identically (e.g.
        ``a.b`` and ``a_b``), the first in sorted order keeps the plain
        name and later ones get a ``_2``, ``_3``, ... suffix — duplicate
        metric families would make the whole exposition unparseable.
        """
        lines: List[str] = []
        with self._lock:
            names = _sanitized_names(
                prefix,
                set(self.counters) | set(self.gauges) | set(self.histograms),
            )
            for name in sorted(self.counters):
                metric = names[name] + "_total"
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {_fmt(self.counters[name])}")
            for name in sorted(self.gauges):
                metric = names[name]
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_fmt(self.gauges[name])}")
            for name in sorted(self.histograms):
                hist = self.histograms[name]
                metric = names[name]
                lines.append(f"# TYPE {metric} histogram")
                cumulative = hist.cumulative()
                for bound, c in zip(hist.buckets, cumulative):
                    lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {c}')
                lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative[-1]}')
                lines.append(f"{metric}_sum {_fmt(hist.sum)}")
                lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(prefix: str, name: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{safe}"


def _sanitized_names(prefix: str, names: Iterable[str]) -> Dict[str, str]:
    """Deterministic collision-free sanitized name per dotted metric name."""
    out: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for name in sorted(names):
        base = _sanitize(prefix, name)
        serial = used.get(base, 0) + 1
        used[base] = serial
        out[name] = base if serial == 1 else f"{base}_{serial}"
    return out


def _fmt(value: float) -> str:
    value = float(value)
    # Prometheus spells non-finite sample values +Inf / -Inf / NaN; repr()
    # would emit 'inf'/'nan', which scrapers reject.
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


_default = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default


# -- guarded module-level helpers (the instrumentation API) ----------------


def inc(name: str, value: float = 1.0) -> None:
    if _enabled:
        _default.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    if _enabled:
        _default.set_gauge(name, value)


def observe(
    name: str, value: float, buckets: Optional[Sequence[float]] = None
) -> None:
    if _enabled:
        _default.observe(name, value, buckets)
