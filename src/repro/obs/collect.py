"""Bring worker-process telemetry back into the parent.

With ``workers > 1`` the engine solves leaves in a ``ProcessPoolExecutor``:
every span, metric, and wall-clock phase recorded inside the worker lives
in the *worker's* memory and dies with it unless shipped home.  The
protocol is:

1. the worker task starts with :func:`reset_worker_state` (a forked child
   inherits the parent's buffers — they must not be re-exported);
2. after solving, the worker returns :func:`capture_worker_telemetry` in
   its payload — a picklable :class:`WorkerTelemetry`;
3. the parent calls :func:`merge_worker_telemetry`, which extends the trace
   buffer (re-parenting the worker's root spans under the parent span that
   dispatched the task), folds metric snapshots into the parent registry,
   and accumulates the worker's wall-clock phases into a caller-supplied
   :class:`~repro.utils.WallClock` (kept separate from the parent clock —
   worker seconds overlap the parent's ``solve`` phase wall time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import convergence, metrics, tracer
from repro.utils import WallClock


@dataclass
class WorkerTelemetry:
    """Everything a pool worker measured while solving one task."""

    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    phases: Dict[str, float] = field(default_factory=dict)
    # Convergence solve records (repro.obs.convergence); partition records
    # are parent-side only, so the payload carries just the solves.
    convergence: List[Dict[str, Any]] = field(default_factory=list)


def reset_worker_state() -> None:
    """Clear inherited/leftover telemetry at the start of a worker task."""
    tracer.reset()
    metrics.registry().reset()
    convergence.reset()


def init_worker_observability(
    tracing: bool = False,
    metric_counts: bool = False,
    convergence_records: bool = False,
) -> None:
    """Arm observability inside a worker process for one task.

    Enables the requested subsystems (idempotent) and clears any state a
    forked child inherited from the parent or a previous task of the same
    long-lived worker — persistent pools reuse workers across tasks, so
    without the reset each task would re-export its predecessors'
    spans/metrics on top of its own.
    """
    if tracing:
        tracer.enable()
    if metric_counts:
        metrics.enable()
    if convergence_records:
        convergence.enable()
    reset_worker_state()


def capture_worker_telemetry(clock: Optional[WallClock] = None) -> WorkerTelemetry:
    """Drain this process's telemetry into a picklable payload.

    ``clock`` phases are always captured (the worker-timing fix works even
    with observability off); spans and metrics are drained only when their
    subsystems are enabled, so the payload stays tiny on the default path.
    """
    return WorkerTelemetry(
        spans=tracer.drain() if tracer.is_enabled() else [],
        metrics=metrics.registry().as_dict() if metrics.is_enabled() else {},
        phases=dict(clock.totals) if clock is not None else {},
        convergence=convergence.drain_solves() if convergence.is_enabled() else [],
    )


def merge_worker_telemetry(
    telemetry: Optional[WorkerTelemetry],
    worker_clock: Optional[WallClock] = None,
    parent_span_id: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> None:
    """Fold one worker payload into the parent-process stores.

    Root spans of the worker (``parent is None``) are attached to
    ``parent_span_id`` so the merged trace nests engine → leaf → solver
    even across the process boundary.  When the worker solved under a
    shipped :class:`~repro.obs.tracer.TraceContext` its spans already
    carry the right parent and trace, and both fixups are no-ops; the
    re-parent/``trace_id`` backfill stays as the fallback for payloads
    produced without a context.
    """
    if telemetry is None:
        return
    if telemetry.spans:
        spans = []
        for s in telemetry.spans:
            if parent_span_id is not None and s.get("parent") is None:
                s = {**s, "parent": parent_span_id}
            if trace_id is not None and not s.get("trace_id"):
                s = {**s, "trace_id": trace_id}
            spans.append(s)
        tracer.extend(spans)
    if telemetry.metrics:
        metrics.registry().merge_dict(telemetry.metrics)
    if telemetry.convergence:
        convergence.extend_solves(telemetry.convergence)
    if worker_clock is not None:
        for name, seconds in telemetry.phases.items():
            worker_clock.add(name, seconds)
