"""Trace assembly and analysis over exported JSON-lines spans.

``repro run --trace-out`` / ``repro bench-serve --trace-out`` write flat
span records (one JSON object per line, see :mod:`repro.obs.tracer`).
This module turns that file back into causal trees and answers the
operational questions behind ``repro obs trace``:

- **show** — the span tree of one trace as a waterfall (wall-clock
  aligned across processes via each span's ``wall`` field);
- **critical** — the critical path through a request: starting at the
  root, repeatedly descend into the longest child; each step reports
  *self-time* (duration minus the sum of direct children) vs child time,
  so the line that actually burned the wall clock is explicit;
- **summary** — aggregation by span name across every trace in the file,
  plus the connectivity check (``--check``) CI runs: every span must
  carry a ``trace_id`` and resolve its ``parent`` within its own trace.

Error spans (``error: true``, recorded when a span body raised) are
marked ``!`` in every view and counted separately in the summary.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

_UNTRACED = "(untraced)"

# Waterfall geometry.
_BAR_WIDTH = 32
_NAME_WIDTH = 44


def load_spans(path: str) -> List[Dict[str, Any]]:
    """All span records of a JSON-lines trace file, in file order.

    Raises :class:`ValueError` on unparsable lines — a corrupt trace
    should fail loudly, exactly like a corrupt ledger.
    """
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})")
            if not isinstance(record, dict) or "id" not in record:
                raise ValueError(f"{path}:{lineno}: not a span record")
            spans.append(record)
    return spans


@dataclass
class Trace:
    """One assembled trace: spans indexed, children linked, roots found."""

    trace_id: str
    spans: List[Dict[str, Any]] = field(default_factory=list)
    by_id: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    children: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    roots: List[Dict[str, Any]] = field(default_factory=list)
    # Spans whose non-null parent id is missing from this trace — each one
    # is a broken causal link (connectivity violation).
    orphans: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def root(self) -> Optional[Dict[str, Any]]:
        """The principal root: the longest-duration true root."""
        return max(self.roots, key=lambda s: s.get("dur", 0.0), default=None)

    @property
    def duration(self) -> float:
        root = self.root
        return float(root.get("dur", 0.0)) if root else 0.0

    @property
    def errors(self) -> List[Dict[str, Any]]:
        return [s for s in self.spans if s.get("error")]

    def self_seconds(self, span: Dict[str, Any]) -> float:
        """Duration minus the direct children's durations (>= 0)."""
        own = float(span.get("dur", 0.0))
        kids = sum(
            float(c.get("dur", 0.0))
            for c in self.children.get(span["id"], ())
        )
        return max(0.0, own - kids)


def assemble(spans: List[Dict[str, Any]]) -> Dict[str, Trace]:
    """Group flat records into :class:`Trace` trees, keyed by trace id.

    Spans without a ``trace_id`` land in the ``(untraced)`` pseudo-trace —
    present so nothing silently disappears, and flagged by :func:`check`.
    """
    traces: Dict[str, Trace] = {}
    for span in spans:
        key = span.get("trace_id") or _UNTRACED
        trace = traces.get(key)
        if trace is None:
            trace = traces[key] = Trace(trace_id=key)
        trace.spans.append(span)
        trace.by_id[span["id"]] = span
    for trace in traces.values():
        for span in trace.spans:
            parent = span.get("parent")
            if parent is None:
                trace.roots.append(span)
            elif parent in trace.by_id:
                trace.children.setdefault(parent, []).append(span)
            else:
                trace.orphans.append(span)
                trace.roots.append(span)  # render it somewhere visible
        for kids in trace.children.values():
            kids.sort(key=_span_order)
        trace.roots.sort(key=_span_order)
    return traces


def _span_order(span: Dict[str, Any]) -> Tuple[float, str]:
    # Wall clock orders spans across processes; perf_counter start values
    # only order spans within one process and pre-``wall`` trace files.
    return (float(span.get("wall") or span.get("start") or 0.0), span["id"])


def select_trace(
    traces: Dict[str, Trace], prefix: Optional[str] = None
) -> Trace:
    """Pick one trace: by id prefix, else the slowest (longest root)."""
    real = {k: t for k, t in traces.items() if k != _UNTRACED}
    pool = real or traces
    if not pool:
        raise ValueError("trace file holds no spans")
    if prefix:
        matches = [t for k, t in sorted(pool.items()) if k.startswith(prefix)]
        if not matches:
            raise ValueError(f"no trace id starts with {prefix!r}")
        if len(matches) > 1:
            raise ValueError(
                f"trace id prefix {prefix!r} is ambiguous "
                f"({len(matches)} matches)"
            )
        return matches[0]
    return max(pool.values(), key=lambda t: t.duration)


# -- waterfall rendering -----------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{1000.0 * seconds:.1f}ms"


def _label(span: Dict[str, Any]) -> str:
    name = span.get("name", "?")
    if span.get("error"):
        name += f" !{span.get('error_type', 'error')}"
    attrs = span.get("attrs") or {}
    status = attrs.get("status")
    if status is not None:
        name += f" [{status}]"
    return name


def render_tree(trace: Trace) -> str:
    """Indented waterfall of one trace, wall-aligned across processes."""
    walls = [
        float(s["wall"]) for s in trace.spans if float(s.get("wall") or 0.0)
    ]
    base = min(walls) if walls else 0.0
    span_end = max(
        (
            float(s.get("wall") or 0.0) + float(s.get("dur", 0.0))
            for s in trace.spans
        ),
        default=0.0,
    )
    total = max(span_end - base, 1e-9)

    lines = [
        f"trace {trace.trace_id}  "
        f"({len(trace.spans)} spans, {_fmt_ms(trace.duration)}"
        + (f", {len(trace.errors)} error(s)" if trace.errors else "")
        + ")"
    ]

    def bar(span: Dict[str, Any]) -> str:
        wall = float(span.get("wall") or 0.0)
        if not wall:
            return " " * _BAR_WIDTH
        offset = (wall - base) / total
        frac = float(span.get("dur", 0.0)) / total
        left = min(_BAR_WIDTH - 1, int(offset * _BAR_WIDTH))
        width = max(1, min(_BAR_WIDTH - left, int(math.ceil(frac * _BAR_WIDTH))))
        fill = "!" if span.get("error") else "#"
        return ("." * left + fill * width).ljust(_BAR_WIDTH, ".")

    def walk(span: Dict[str, Any], depth: int) -> None:
        label = ("  " * depth + _label(span))[:_NAME_WIDTH]
        lines.append(
            f"  {label:<{_NAME_WIDTH}} |{bar(span)}| "
            f"{_fmt_ms(float(span.get('dur', 0.0))):>10} "
            f"self {_fmt_ms(trace.self_seconds(span)):>10}  "
            f"pid {span.get('pid', '?')}"
        )
        for child in trace.children.get(span["id"], ()):
            walk(child, depth + 1)

    for root in trace.roots:
        walk(root, 0)
    return "\n".join(lines)


# -- critical path -----------------------------------------------------------


def critical_path(trace: Trace) -> List[Dict[str, Any]]:
    """Longest chain of child spans from the principal root.

    At every level descend into the child with the largest duration —
    the request's wall clock is dominated by that chain, and each step's
    self-time says whether the time went to that span's own work or to
    its children.
    """
    path: List[Dict[str, Any]] = []
    span = trace.root
    seen = set()
    while span is not None and span["id"] not in seen:
        seen.add(span["id"])
        path.append(span)
        span = max(
            trace.children.get(span["id"], ()),
            key=lambda s: float(s.get("dur", 0.0)),
            default=None,
        )
    return path


def render_critical(trace: Trace) -> str:
    """The ``repro obs trace critical`` report for one trace."""
    path = critical_path(trace)
    if not path:
        return f"trace {trace.trace_id}: no spans"
    total = float(path[0].get("dur", 0.0)) or 1e-9
    lines = [
        f"critical path of trace {trace.trace_id}  "
        f"({_fmt_ms(trace.duration)} total, {len(path)} spans deep)",
        f"  {'span':<{_NAME_WIDTH}} {'dur':>10} {'self':>10} "
        f"{'self%':>6}  pid",
    ]
    for depth, span in enumerate(path):
        dur = float(span.get("dur", 0.0))
        self_s = trace.self_seconds(span)
        label = ("  " * depth + _label(span))[:_NAME_WIDTH]
        lines.append(
            f"  {label:<{_NAME_WIDTH}} {_fmt_ms(dur):>10} "
            f"{_fmt_ms(self_s):>10} {self_s / total:>6.1%}  "
            f"{span.get('pid', '?')}"
        )
    leaf = path[-1]
    lines.append(
        f"  leaf: {leaf.get('name', '?')} on pid {leaf.get('pid', '?')} "
        f"({_fmt_ms(float(leaf.get('dur', 0.0)))})"
    )
    off_path = trace.duration - sum(trace.self_seconds(s) for s in path)
    if off_path > 1e-9:
        lines.append(
            f"  off-path time: {_fmt_ms(off_path)} "
            "(siblings of the chain above)"
        )
    return "\n".join(lines)


# -- summary / connectivity check --------------------------------------------


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def summarize(traces: Dict[str, Trace]) -> Dict[str, Any]:
    """Aggregate by span name across every trace of a file."""
    names: Dict[str, Dict[str, Any]] = {}
    for trace in traces.values():
        for span in trace.spans:
            row = names.setdefault(span.get("name", "?"), {
                "count": 0, "errors": 0, "durs": [], "self": 0.0,
            })
            row["count"] += 1
            row["errors"] += 1 if span.get("error") else 0
            row["durs"].append(float(span.get("dur", 0.0)))
            row["self"] += trace.self_seconds(span)
    table = []
    for name, row in names.items():
        durs = row.pop("durs")
        table.append({
            "name": name,
            "count": row["count"],
            "errors": row["errors"],
            "total_ms": round(1000.0 * sum(durs), 3),
            "mean_ms": round(1000.0 * sum(durs) / len(durs), 3),
            "p95_ms": round(1000.0 * _percentile(durs, 0.95), 3),
            "self_ms": round(1000.0 * row["self"], 3),
        })
    table.sort(key=lambda r: -r["total_ms"])
    real = [t for k, t in traces.items() if k != _UNTRACED]
    return {
        "traces": len(real),
        "spans": sum(len(t.spans) for t in traces.values()),
        "errors": sum(len(t.errors) for t in traces.values()),
        "orphans": sum(len(t.orphans) for t in traces.values()),
        "untraced": len(traces.get(_UNTRACED, Trace(_UNTRACED)).spans),
        "by_name": table,
    }


def check(traces: Dict[str, Trace]) -> List[str]:
    """Connectivity violations across a whole trace file (CI gate).

    Every span must carry a ``trace_id``, resolve its ``parent`` inside
    its own trace, and every real trace must form a single tree (exactly
    one root).  Returns human-readable violations; empty == pass.
    """
    violations: List[str] = []
    untraced = traces.get(_UNTRACED)
    if untraced is not None:
        violations.append(
            f"{len(untraced.spans)} span(s) carry no trace_id "
            f"(e.g. {untraced.spans[0].get('name', '?')!r})"
        )
    for key in sorted(traces):
        if key == _UNTRACED:
            continue
        trace = traces[key]
        for span in trace.orphans:
            violations.append(
                f"trace {key[:12]}: span {span['id']} "
                f"({span.get('name', '?')!r}) references missing parent "
                f"{span.get('parent')!r}"
            )
        true_roots = [s for s in trace.roots if s.get("parent") is None]
        if not true_roots:
            violations.append(f"trace {key[:12]}: no root span")
        elif len(true_roots) > 1:
            violations.append(
                f"trace {key[:12]}: {len(true_roots)} root spans "
                f"({', '.join(repr(s.get('name', '?')) for s in true_roots)})"
                " — expected a single tree"
            )
    return violations


def render_summary(
    traces: Dict[str, Trace], violations: Optional[List[str]] = None
) -> str:
    """The ``repro obs trace summary`` report."""
    stats = summarize(traces)
    lines = [
        f"traces {stats['traces']}  spans {stats['spans']}  "
        f"errors {stats['errors']}  orphans {stats['orphans']}  "
        f"untraced {stats['untraced']}",
        f"  {'span name':<28} {'count':>6} {'err':>4} {'total':>10} "
        f"{'mean':>9} {'p95':>9} {'self':>10}",
    ]
    for row in stats["by_name"]:
        lines.append(
            f"  {row['name']:<28.28} {row['count']:>6} {row['errors']:>4} "
            f"{row['total_ms']:>9.1f}m {row['mean_ms']:>8.1f}m "
            f"{row['p95_ms']:>8.1f}m {row['self_ms']:>9.1f}m"
        )
    if violations is not None:
        if violations:
            lines.append("connectivity check FAILED:")
            lines.extend(f"  - {v}" for v in violations)
        else:
            lines.append(
                f"connectivity check passed: {stats['traces']} trace(s), "
                "every span's parent and trace_id resolve"
            )
    return "\n".join(lines)
