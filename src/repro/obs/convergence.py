"""Convergence diagnostics: per-solve ADMM curves and per-partition attribution.

The recorder answers "why did this run converge slowly?" at two levels:

- **solve records** (:class:`SolveRecord`) — written by the ADMM SDP solver
  itself: one record per :meth:`~repro.solver.sdp.ADMMSDPSolver.solve` with
  the residual/objective samples taken at each ``check_every`` boundary,
  the projection wall-clock, and the warm/cold start disposition.  Records
  made inside pool workers ride home in the
  :class:`~repro.obs.collect.WorkerTelemetry` payload;
- **partition records** (:class:`PartitionRecord`) — written by the engine
  in the parent process: one record per partition leaf per engine
  iteration, attributing solver behaviour (iterations, convergence, solve
  seconds) to a concrete leaf together with its post-mapping overflow
  events and the worst critical-path delay (Tcp) among the nets it touches.

Like the tracer and metrics, the subsystem is OFF by default and the
disabled path is a single module-global flag check — the engine and solver
call sites stay unconditional in the hot loops.  Enabled-state buffers are
process-wide and cleared by :func:`disable`/:func:`reset`.

The :func:`summarize` helper turns a :func:`snapshot` into the compact
percentile summary stored in run-ledger entries (:mod:`repro.obs.ledger`).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

_enabled = False
_lock = threading.Lock()
_solves: List["SolveRecord"] = []
_partitions: List["PartitionRecord"] = []
_buckets: List["BucketRecord"] = []


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the recorder off and clear both buffers."""
    global _enabled
    _enabled = False
    reset()


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Clear the solve, partition, and bucket buffers (worker-task prologue)."""
    with _lock:
        _solves.clear()
        _partitions.clear()
        _buckets.clear()


@dataclass
class SolveRecord:
    """One numerical solve, with its convergence curve.

    ``samples`` holds one dict per residual check —
    ``{"iteration", "objective", "primal", "dual", "rho"}`` — cheap enough
    to keep whole (a few hundred iterations / ``check_every`` entries).
    """

    solver: str
    matrix_order: int
    num_constraints: int
    warm_start: bool
    iterations: int
    converged: bool
    objective: float
    primal_residual: float
    dual_residual: float
    solve_seconds: float
    projection_seconds: float
    psd_identity_fraction: float
    samples: List[Dict[str, float]] = field(default_factory=list)


@dataclass
class PartitionRecord:
    """Solver behaviour attributed to one partition leaf (parent-side)."""

    engine_iteration: int
    leaf_index: int
    num_segments: int
    matrix_order: int
    num_constraints: int
    iterations: int
    converged: bool
    warm_start: bool
    mode: str
    objective: float
    solve_seconds: float
    overflow_events: int
    tcp_contribution: float


@dataclass
class BucketRecord:
    """One batched-backend kernel call over a shape bucket (parent-side).

    Written by :class:`repro.batchsolve.solver.BatchLeafSolver`: the
    bucket's matrix order (``num_constraints`` is the largest constraint
    count stacked — counts may vary within a bucket), how many members
    stacked, how long the lockstep loop ran, and how much
    member-iteration work freezing early convergers saved.  The "why are
    my buckets fragmenting" walkthrough in docs/OBSERVABILITY.md reads
    these records.
    """

    matrix_order: int
    num_constraints: int
    members: int
    iterations: int
    member_iterations: int
    converged: int
    frozen_fraction: float
    solve_seconds: float


def record_solve(record: SolveRecord) -> None:
    if _enabled:
        with _lock:
            _solves.append(record)


def record_partition(record: PartitionRecord) -> None:
    if _enabled:
        with _lock:
            _partitions.append(record)


def record_bucket(record: BucketRecord) -> None:
    if _enabled:
        with _lock:
            _buckets.append(record)


def snapshot() -> Dict[str, List[Dict[str, Any]]]:
    """Plain-dict copy of the buffers (the ``RunReport.convergence`` form).

    The ``buckets`` key appears only when the batched backend recorded
    kernel calls, so pool/dist/sequential snapshots keep their shape.
    """
    with _lock:
        out = {
            "solves": [asdict(r) for r in _solves],
            "partitions": [asdict(r) for r in _partitions],
        }
        if _buckets:
            out["buckets"] = [asdict(r) for r in _buckets]
        return out


def drain_solves() -> List[Dict[str, Any]]:
    """Return and clear the solve records (worker-payload capture).

    Partition records are parent-side only, so the worker payload carries
    just the solves.
    """
    with _lock:
        out = [asdict(r) for r in _solves]
        _solves.clear()
    return out


def extend_solves(records: List[Dict[str, Any]]) -> None:
    """Fold solve records captured in a worker back into this process."""
    if not records:
        return
    with _lock:
        _solves.extend(SolveRecord(**r) for r in records)


# -- summarization ----------------------------------------------------------


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted list (0 for empty input)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return float(ordered[idx])


def _dist(values: List[float]) -> Dict[str, float]:
    return {
        "p50": round(_percentile(values, 0.50), 4),
        "p90": round(_percentile(values, 0.90), 4),
        "max": round(max(values), 4) if values else 0.0,
    }


def summarize(
    data: Optional[Dict[str, List[Dict[str, Any]]]], worst: int = 8
) -> Dict[str, Any]:
    """Compact percentile summary of a :func:`snapshot` (ledger-entry form).

    ``worst`` bounds the per-partition attribution kept verbatim: the
    leaves ranked worst-converging first (non-converged, then by iteration
    count and solve seconds) — the "which leaf is slow" answer without
    storing every record in the ledger.
    """
    out: Dict[str, Any] = {}
    if not data:
        return out
    solves = data.get("solves", [])
    partitions = data.get("partitions", [])
    buckets = data.get("buckets", [])
    if solves:
        out["solves"] = {
            "count": len(solves),
            "converged": sum(1 for s in solves if s["converged"]),
            "warm_started": sum(1 for s in solves if s["warm_start"]),
            "iterations": _dist([s["iterations"] for s in solves]),
            "primal_residual_max": max(s["primal_residual"] for s in solves),
            "projection_seconds": round(
                sum(s["projection_seconds"] for s in solves), 4
            ),
            "psd_identity_fraction": round(
                sum(s["psd_identity_fraction"] for s in solves) / len(solves), 4
            ),
        }
    if partitions:
        seconds = [p["solve_seconds"] for p in partitions]
        ranked = sorted(
            partitions,
            key=lambda p: (p["converged"], -p["iterations"], -p["solve_seconds"]),
        )
        out["partitions"] = {
            "count": len(partitions),
            "nonconverged": sum(1 for p in partitions if not p["converged"]),
            "iterations": _dist([p["iterations"] for p in partitions]),
            "solve_seconds": {
                "total": round(sum(seconds), 4),
                "p90": round(_percentile(seconds, 0.90), 4),
                "max": round(max(seconds), 4),
            },
            "overflow_events": sum(p["overflow_events"] for p in partitions),
            "worst": [
                {
                    "engine_iteration": p["engine_iteration"],
                    "leaf_index": p["leaf_index"],
                    "num_segments": p["num_segments"],
                    "iterations": p["iterations"],
                    "converged": p["converged"],
                    "solve_seconds": round(p["solve_seconds"], 4),
                    "overflow_events": p["overflow_events"],
                    "tcp_contribution": round(p["tcp_contribution"], 4),
                }
                for p in ranked[:worst]
            ],
        }
    if buckets:
        members = [b["members"] for b in buckets]
        potential = sum(b["members"] * b["iterations"] for b in buckets)
        actual = sum(b["member_iterations"] for b in buckets)
        out["buckets"] = {
            "count": len(buckets),
            "members": sum(members),
            "singletons": sum(1 for m in members if m == 1),
            "largest": max(members),
            "median_members": _percentile([float(m) for m in members], 0.50),
            "lockstep_iterations": sum(b["iterations"] for b in buckets),
            "member_iterations": actual,
            "frozen_fraction": round(
                1.0 - actual / potential if potential else 0.0, 4
            ),
            "solve_seconds": round(sum(b["solve_seconds"] for b in buckets), 4),
            # The largest buckets verbatim — the fragmentation walkthrough
            # wants to see which shapes actually stacked.
            "largest_buckets": [
                {
                    "matrix_order": b["matrix_order"],
                    "num_constraints": b["num_constraints"],
                    "members": b["members"],
                    "iterations": b["iterations"],
                    "frozen_fraction": b["frozen_fraction"],
                }
                for b in sorted(buckets, key=lambda b: -b["members"])[:worst]
            ],
        }
    return out


def summary_text(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`summarize` result."""
    if not summary:
        return "convergence: (no records)"
    lines = ["convergence:"]
    solves = summary.get("solves")
    if solves:
        it = solves["iterations"]
        lines.append(
            "  solves: {count} ({converged} converged, {warm_started} warm-started)"
            .format(**solves)
        )
        lines.append(
            f"  solver iterations: p50={it['p50']:g} p90={it['p90']:g} "
            f"max={it['max']:g}"
        )
        lines.append(
            f"  projection time: {solves['projection_seconds']:.3f}s, "
            f"PSD identity fraction {solves['psd_identity_fraction']:.2f}"
        )
    buckets = summary.get("buckets")
    if buckets:
        lines.append(
            "  batch buckets: {count} kernel calls over {members} members "
            "({singletons} singletons, largest {largest})".format(**buckets)
        )
        lines.append(
            f"  batch freezing saved {buckets['frozen_fraction']:.0%} of "
            f"member-iterations ({buckets['member_iterations']} run, "
            f"{buckets['lockstep_iterations']} lockstep)"
        )
    parts = summary.get("partitions")
    if parts:
        lines.append(
            f"  partitions: {parts['count']} ({parts['nonconverged']} not "
            f"converged), {parts['overflow_events']} overflow events"
        )
        worst = parts.get("worst", [])
        if worst:
            lines.append("  worst-converging partitions:")
            lines.append(
                "    iter  leaf  segs  solver-its  conv  seconds  overflow      Tcp"
            )
            for p in worst:
                lines.append(
                    "    {engine_iteration:>4}  {leaf_index:>4}  {num_segments:>4}"
                    "  {iterations:>10}  {conv:>4}  {solve_seconds:>7.3f}"
                    "  {overflow_events:>8}  {tcp_contribution:>7.1f}".format(
                        conv="yes" if p["converged"] else "NO", **p
                    )
                )
    return "\n".join(lines)
