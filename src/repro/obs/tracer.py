"""Nestable tracing spans with trace contexts and JSON-lines export.

A span records ``(id, parent, trace_id, name, attrs, start, end, wall,
pid)``.  Nesting is tracked per thread: entering a span pushes it on a
thread-local stack, so a span opened while another is active records that
span as its parent.  Span ids are 16 hex characters embedding the process
id and a per-process sequence (``"%08x%08x" % (pid, seq)``), which makes
ids from ``ProcessPoolExecutor`` workers collision-free when their buffers
are merged back into the parent (:mod:`repro.obs.collect`) and keeps them
valid W3C ``traceparent`` parent-ids.

Cross-process propagation uses an explicit :class:`TraceContext` — a
W3C-style ``(trace_id, span_id)`` pair.  The serving tier derives one per
HTTP request (from an incoming ``traceparent`` header or freshly minted),
ships it over the dist wire protocol / pool task payloads, and the worker
:func:`attach`-es it so its first span parents under the remote caller:

    ctx = tracer.current_context()          # coordinator, inside a span
    ... ship ctx.to_dict() across the process boundary ...
    tracer.attach(TraceContext.from_dict(d))  # worker
    with tracer.span("engine.leaf"):          # parents under the shipped span
        ...

``start``/``end`` are ``time.perf_counter()`` values (per-process epoch,
good for durations); ``wall`` is ``time.time()`` at span start so traces
from different processes can be aligned on one waterfall.

Tracing is disabled by default.  The disabled :func:`span` call is a single
module-global check returning a shared no-op context manager — no span
object is allocated — so call sites may stay in hot loops permanently.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

_enabled = False
_lock = threading.Lock()
_buffer: List[Dict[str, Any]] = []
_seq = itertools.count(1)
_local = threading.local()
# Bumped (under _lock) by reset().  Each thread lazily clears its nesting
# stack and attached context when it notices its recorded epoch is stale,
# so spans left behind by another thread cannot leak into new traces.
_epoch = 0

_ZERO_SPAN_ID = "0" * 16
_HEX_DIGITS = set("0123456789abcdef")


class TraceContext:
    """An explicit W3C-style ``(trace_id, span_id)`` propagation context.

    ``trace_id`` is 32 lowercase hex characters identifying one request (or
    one run); ``span_id`` is the id of the span the next child should
    parent under, or ``None`` when only the trace identity is known (e.g.
    tracing disabled on the emitting side).
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: Optional[str], span_id: Optional[str] = None):
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def to_dict(self) -> Dict[str, Optional[str]]:
        """Wire form for dist frames / pool payloads."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Any) -> Optional["TraceContext"]:
        if not isinstance(data, dict) or not data.get("trace_id"):
            return None
        return cls(data["trace_id"], data.get("span_id"))

    def to_traceparent(self) -> str:
        """W3C ``traceparent`` header value (version 00, sampled)."""
        return f"00-{self.trace_id}-{self.span_id or _ZERO_SPAN_ID}-01"

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` if absent or malformed."""
        if not header:
            return None
        parts = header.strip().lower().split("-")
        if len(parts) < 4:
            return None
        version, trace_id, span_id = parts[0], parts[1], parts[2]
        if version == "ff" or len(version) != 2:
            return None
        if len(trace_id) != 32 or not set(trace_id) <= _HEX_DIGITS:
            return None
        if len(span_id) != 16 or not set(span_id) <= _HEX_DIGITS:
            return None
        if trace_id == "0" * 32:
            return None
        if span_id == _ZERO_SPAN_ID:
            span_id = None
        return cls(trace_id, span_id)


def new_trace_id() -> str:
    """A fresh random 32-hex trace id (one per request or run)."""
    return os.urandom(16).hex()


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off and clear the buffer and nesting state."""
    global _enabled
    _enabled = False
    reset()


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Clear the span buffer and every thread's nesting state.

    Also the first thing a long-lived pool/dist worker does before each
    task: with the ``fork`` start method the child inherits the parent's
    buffer, and without a reset the parent's spans would be returned
    (duplicated) in the worker payload.

    The id sequence deliberately survives a reset.  Persistent workers
    reset once per task, and restarting the sequence would mint the same
    ``pid+seq`` span ids for every task — colliding when the coordinator
    assembles the merged trace.  Instead of touching only the calling
    thread's stack the global epoch is bumped under ``_lock``: other
    threads' stale stacks and attached contexts self-heal on their next
    tracer call.
    """
    global _epoch
    with _lock:
        _buffer.clear()
        _epoch += 1


def _state() -> threading.local:
    """The calling thread's tracer state, healed across :func:`reset`."""
    if getattr(_local, "epoch", None) != _epoch:
        _local.stack = []
        _local.ctx = None
        _local.epoch = _epoch
    return _local


def attach(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Attach a remote context to this thread; returns the previous one.

    While attached, the next root span opened on this thread records
    ``ctx.span_id`` as its parent and ``ctx.trace_id`` as its trace —
    this is how a worker span parents correctly under a span from another
    process.  Restore the returned token with :func:`detach`.
    """
    state = _state()
    previous = state.ctx
    state.ctx = ctx
    return previous


def detach(token: Optional[TraceContext]) -> None:
    """Restore the context previously returned by :func:`attach`."""
    _state().ctx = token


def current_context() -> Optional[TraceContext]:
    """The context a remote child should parent under, from this thread.

    Inside a span this is ``(that span's trace_id, that span's id)``;
    otherwise it is the attached context, if any.
    """
    state = _state()
    if state.stack:
        top = state.stack[-1]
        return TraceContext(top.trace_id, top.id)
    return state.ctx


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    id = None
    trace_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def finish(self, error_type: Optional[str] = None) -> None:
        pass


_NOOP = _NoopSpan()


class Span:
    """One live span; records itself into the buffer on exit/finish."""

    __slots__ = ("id", "parent", "trace_id", "name", "attrs", "start", "end",
                 "wall")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.id = f"{os.getpid() & 0xFFFFFFFF:08x}{next(_seq) & 0xFFFFFFFF:08x}"
        self.parent: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.start = 0.0
        self.end = 0.0
        self.wall = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def _inherit(self, state: threading.local) -> None:
        if state.stack:
            top = state.stack[-1]
            self.parent = top.id
            self.trace_id = top.trace_id
        elif state.ctx is not None:
            self.parent = state.ctx.span_id
            self.trace_id = state.ctx.trace_id

    def _record(self, error_type: Optional[str]) -> None:
        record = {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "dur": self.end - self.start,
            "wall": self.wall,
            "pid": os.getpid(),
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if error_type is not None:
            record["error"] = True
            record["error_type"] = error_type
        if self.attrs:
            record["attrs"] = self.attrs
        with _lock:
            _buffer.append(record)

    def __enter__(self) -> "Span":
        state = _state()
        self._inherit(state)
        state.stack.append(self)
        self.wall = time.time()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        stack = _state().stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:
            # Self-heal: spans above ours were abandoned without exiting
            # (e.g. a generator dropped mid-span) — pop them with ours so
            # they cannot become parents of unrelated future spans.
            del stack[stack.index(self):]
        self._record(exc_type.__name__ if exc_type is not None else None)
        return False

    def finish(self, error_type: Optional[str] = None) -> None:
        """Close a detached span created by :func:`start_span`."""
        self.end = time.perf_counter()
        self._record(error_type)


def span(name: str, **attrs: Any):
    """Open a span (context manager); a shared no-op when disabled."""
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


def start_span(name: str, ctx: Optional[TraceContext] = None,
               **attrs: Any) -> Optional[Span]:
    """Start a *detached* span: never touches the thread's nesting stack.

    For code that holds a span across ``await`` points (the asyncio serve
    handler), where with-statement nesting on a thread-local stack would
    interleave concurrent requests.  Parents under ``ctx`` when given,
    else under the thread's current span/context.  Close it with
    :meth:`Span.finish`.  Returns ``None`` while tracing is disabled.
    """
    if not _enabled:
        return None
    s = Span(name, attrs)
    if ctx is not None:
        s.parent = ctx.span_id
        s.trace_id = ctx.trace_id
    else:
        s._inherit(_state())
    s.wall = time.time()
    s.start = time.perf_counter()
    return s


def current_span_id() -> Optional[str]:
    """Id of the innermost active span on this thread, if any."""
    stack = _state().stack
    return stack[-1].id if stack else None


def snapshot() -> List[Dict[str, Any]]:
    """A copy of the recorded spans (completion order)."""
    with _lock:
        return list(_buffer)


def drain() -> List[Dict[str, Any]]:
    """Return the recorded spans and clear the buffer."""
    with _lock:
        out = list(_buffer)
        _buffer.clear()
    return out


def extend(spans: List[Dict[str, Any]]) -> None:
    """Append externally captured span records (worker merge)."""
    with _lock:
        _buffer.extend(spans)


def export_jsonl(path: str) -> int:
    """Write the buffer as JSON-lines; returns the number of spans."""
    spans = snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        for record in spans:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
    return len(spans)
