"""Nestable tracing spans with an in-memory buffer and JSON-lines export.

A span records ``(id, parent, name, attrs, start, end, pid)``.  Nesting is
tracked per thread: entering a span pushes it on a thread-local stack, so a
span opened while another is active records that span as its parent.  Span
ids embed the process id (``"<pid>:<seq>"``), which makes ids from
``ProcessPoolExecutor`` workers collision-free when their buffers are merged
back into the parent (:mod:`repro.obs.collect`).

Tracing is disabled by default.  The disabled :func:`span` call is a single
module-global check returning a shared no-op context manager — no span
object is allocated — so call sites may stay in hot loops permanently.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

_enabled = False
_lock = threading.Lock()
_buffer: List[Dict[str, Any]] = []
_seq = itertools.count(1)
_local = threading.local()


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off and clear the buffer and nesting state."""
    global _enabled
    _enabled = False
    reset()


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Clear the span buffer and the thread's nesting stack.

    Also the first thing a forked pool worker does before capturing: with
    the ``fork`` start method the child inherits the parent's buffer, and
    without a reset the parent's spans would be returned (duplicated) in
    the worker payload.
    """
    global _seq
    with _lock:
        _buffer.clear()
    _seq = itertools.count(1)
    _local.stack = []


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


class Span:
    """One live span; records itself into the buffer on exit."""

    __slots__ = ("id", "parent", "name", "attrs", "start", "end")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.id = f"{os.getpid()}:{next(_seq)}"
        self.parent: Optional[str] = None
        self.start = 0.0
        self.end = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        if stack:
            self.parent = stack[-1].id
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.end = time.perf_counter()
        stack = getattr(_local, "stack", [])
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "dur": self.end - self.start,
            "pid": os.getpid(),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        with _lock:
            _buffer.append(record)
        return False


def span(name: str, **attrs: Any):
    """Open a span (context manager); a shared no-op when disabled."""
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


def current_span_id() -> Optional[str]:
    """Id of the innermost active span on this thread, if any."""
    stack = getattr(_local, "stack", None)
    return stack[-1].id if stack else None


def snapshot() -> List[Dict[str, Any]]:
    """A copy of the recorded spans (completion order)."""
    with _lock:
        return list(_buffer)


def drain() -> List[Dict[str, Any]]:
    """Return the recorded spans and clear the buffer."""
    with _lock:
        out = list(_buffer)
        _buffer.clear()
    return out


def extend(spans: List[Dict[str, Any]]) -> None:
    """Append externally captured span records (worker merge)."""
    with _lock:
        _buffer.extend(spans)


def export_jsonl(path: str) -> int:
    """Write the buffer as JSON-lines; returns the number of spans."""
    spans = snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        for record in spans:
            fh.write(json.dumps(record, sort_keys=True, default=str))
            fh.write("\n")
    return len(spans)
