"""Observability: tracing spans, a metrics registry, and worker collection.

The subsystem is OFF by default and its disabled path is near-free: both
:func:`repro.obs.tracer.span` and the metric helpers check a module-level
flag and return shared no-op objects, so instrumentation can live inside
the engine hot loops without changing benchmark numbers.

Five modules:

- :mod:`repro.obs.tracer` — nestable spans (name, attrs, start/end,
  parent id) captured into an in-memory buffer, exportable as JSON-lines;
- :mod:`repro.obs.metrics` — process-wide counters, gauges, and
  fixed-bucket histograms behind a :class:`MetricsRegistry`, exportable as
  Prometheus-style text and as a plain dict;
- :mod:`repro.obs.convergence` — per-solve ADMM convergence curves and
  per-partition attribution records (why a run converged slowly, and in
  which leaf);
- :mod:`repro.obs.ledger` — the append-only JSON-lines run ledger and the
  diff/regression-check logic behind ``repro obs``;
- :mod:`repro.obs.collect` — merges traces/metrics/convergence
  records/wall-clock phases returned from ``ProcessPoolExecutor`` workers
  back into the parent process (per-leaf telemetry from Jacobi-mode solves
  would otherwise be lost with the worker process).

Naming and usage conventions are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.obs import collect, convergence, ledger, metrics, tracer
from repro.obs.collect import WorkerTelemetry, capture_worker_telemetry, merge_worker_telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, span


def enable() -> None:
    """Turn on tracing, metrics, and convergence recording."""
    tracer.enable()
    metrics.enable()
    convergence.enable()


def disable() -> None:
    """Turn off and clear tracing, metrics, and convergence recording."""
    tracer.disable()
    metrics.disable()
    convergence.disable()


def is_enabled() -> bool:
    return tracer.is_enabled() or metrics.is_enabled() or convergence.is_enabled()


__all__ = [
    "MetricsRegistry",
    "Span",
    "WorkerTelemetry",
    "capture_worker_telemetry",
    "collect",
    "convergence",
    "disable",
    "enable",
    "is_enabled",
    "ledger",
    "merge_worker_telemetry",
    "metrics",
    "span",
    "tracer",
]
