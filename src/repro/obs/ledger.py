"""Append-only JSON-lines run ledger with diff and regression gating.

Every ``repro run --ledger PATH`` appends one self-describing entry — an
environment/config fingerprint, the quality numbers (Tcp, overflow, vias),
the phase wall-clocks, and the convergence summary percentiles from
:mod:`repro.obs.convergence` — so runs accumulate into a durable,
greppable history instead of scrollback.  The ``repro obs`` subcommands
consume the same file:

- ``repro obs show PATH``   — render one entry (convergence table, the
  worst-converging partitions);
- ``repro obs diff A B``    — field-by-field comparison of two entries;
- ``repro obs check PATH --baseline BASE`` — compare the latest entry
  against the matching baseline entry and exit non-zero past the
  regression thresholds (the CI perf-smoke gate).

Entries are plain dicts (schema ``repro.run_ledger/v1``); unknown keys are
preserved by readers so the format can grow.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs import convergence

SCHEMA = "repro.run_ledger/v1"


def git_commit() -> str:
    """Short commit hash of the repo this module lives in ("unknown" off-git)."""
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True,
            stderr=subprocess.DEVNULL,
        ).strip()
    except Exception:
        return "unknown"


def fingerprint(config: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Environment + configuration identity of one run.

    ``config`` holds the knobs that make runs comparable (scale, ratio,
    workers, ...); its stable hash lets ``check`` refuse to gate a run
    against a baseline produced under different settings.
    """
    config = dict(config or {})
    digest = hashlib.sha256(
        json.dumps(config, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()[:12]
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "commit": git_commit(),
        "config": config,
        "config_digest": digest,
    }


def build_entry(
    report: Any,
    config: Optional[Dict[str, Any]] = None,
    label: Optional[str] = None,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One ledger entry from a :class:`~repro.analysis.runreport.RunReport`.

    ``trace`` links the entry to its exported trace (``{"trace_id": ...,
    "file": ...}``) so an ``obs check`` failure points straight at the
    span tree of the offending run.
    """
    entry: Dict[str, Any] = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "benchmark": report.benchmark,
        "method": report.method,
        "critical_ratio": report.critical_ratio,
        "fingerprint": fingerprint(config),
        "quality": {
            "initial_avg_tcp": report.initial_avg_tcp,
            "final_avg_tcp": report.final_avg_tcp,
            "initial_max_tcp": report.initial_max_tcp,
            "final_max_tcp": report.final_max_tcp,
            "initial_via_overflow": report.initial_via_overflow,
            "final_via_overflow": report.final_via_overflow,
            "initial_vias": report.initial_vias,
            "final_vias": report.final_vias,
        },
        "runtime": {
            "total_seconds": round(report.runtime, 4),
            "phases": {
                k: round(v, 4) for k, v in sorted(report.clock.totals.items())
            },
            "worker_phases": {
                k: round(v, 4)
                for k, v in sorted(report.worker_clock.totals.items())
            },
        },
        "convergence": convergence.summarize(report.convergence),
    }
    scheduler = getattr(report, "scheduler", None)
    if scheduler:
        entry["scheduler"] = scheduler
    router = getattr(report, "router", None)
    if router:
        entry["router"] = router
    if label:
        entry["label"] = label
    if trace:
        entry["trace"] = trace
    return entry


def append_entry(path: str, entry: Dict[str, Any]) -> None:
    """Append one entry as a JSON line (creates the file and parents)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=False, default=str))
        fh.write("\n")


def read_entries(path: str) -> List[Dict[str, Any]]:
    """All entries of a ledger file, in append order.

    Raises :class:`ValueError` on malformed lines or foreign schemas — a
    corrupt ledger should fail the gate, not silently pass it.
    """
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})")
            if entry.get("schema") != SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: schema {entry.get('schema')!r} "
                    f"is not {SCHEMA!r}"
                )
            entries.append(entry)
    if not entries:
        raise ValueError(f"{path}: ledger holds no entries")
    return entries


def select_entry(entries: List[Dict[str, Any]], index: int = -1) -> Dict[str, Any]:
    try:
        return entries[index]
    except IndexError:
        raise ValueError(
            f"entry index {index} out of range (ledger holds {len(entries)})"
        )


def match_baseline(
    entries: List[Dict[str, Any]], current: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Latest baseline entry with the current run's benchmark + method."""
    for entry in reversed(entries):
        if (
            entry.get("benchmark") == current.get("benchmark")
            and entry.get("method") == current.get("method")
        ):
            return entry
    return None


# -- rendering --------------------------------------------------------------


def _pct(initial: float, final: float) -> str:
    if not initial:
        return "n/a"
    return f"{(final / initial - 1.0) * 100:+.2f}%"


def render_entry(entry: Dict[str, Any]) -> str:
    """Human-readable report of one ledger entry (``repro obs show``)."""
    fp = entry.get("fingerprint", {})
    q = entry.get("quality", {})
    rt = entry.get("runtime", {})
    lines = [
        "run {created}  {benchmark}/{method}  ratio={critical_ratio:g}".format(
            created=entry.get("created", "?"),
            benchmark=entry.get("benchmark", "?"),
            method=entry.get("method", "?"),
            critical_ratio=entry.get("critical_ratio", 0.0),
        ),
        f"  commit {fp.get('commit', '?')}  python {fp.get('python', '?')}"
        f"  config {fp.get('config_digest', '?')}",
        "quality:",
        f"  Avg(Tcp)      {q.get('initial_avg_tcp', 0.0):>12.2f} -> "
        f"{q.get('final_avg_tcp', 0.0):>12.2f}  "
        f"({_pct(q.get('initial_avg_tcp', 0.0), q.get('final_avg_tcp', 0.0))})",
        f"  Max(Tcp)      {q.get('initial_max_tcp', 0.0):>12.2f} -> "
        f"{q.get('final_max_tcp', 0.0):>12.2f}  "
        f"({_pct(q.get('initial_max_tcp', 0.0), q.get('final_max_tcp', 0.0))})",
        f"  via overflow  {q.get('initial_via_overflow', 0):>12} -> "
        f"{q.get('final_via_overflow', 0):>12}",
        f"  via count     {q.get('initial_vias', 0):>12} -> "
        f"{q.get('final_vias', 0):>12}",
        f"runtime: {rt.get('total_seconds', 0.0):.2f}s",
    ]
    phases = rt.get("phases", {})
    if phases:
        lines.append(
            "  phases: "
            + "  ".join(f"{k}={v:.2f}s" for k, v in sorted(phases.items()))
        )
    worker_phases = rt.get("worker_phases", {})
    if worker_phases:
        lines.append(
            "  worker phases: "
            + "  ".join(f"{k}={v:.2f}s" for k, v in sorted(worker_phases.items()))
        )
    scheduler = entry.get("scheduler")
    if scheduler and scheduler.get("backend") == "batch":
        lines.extend([
            "batch backend:",
            f"  kernel calls {scheduler.get('bucket_solves', 0)}  "
            f"members {scheduler.get('members', 0)}  "
            f"largest bucket {scheduler.get('max_bucket', 0)}",
            f"  lockstep iterations {scheduler.get('batched_iterations', 0)}  "
            f"member iterations {scheduler.get('member_iterations', 0)}  "
            f"frozen {scheduler.get('frozen_fraction', 0.0):.1%}",
        ])
    elif scheduler:
        util = scheduler.get("utilization", {}) or {}
        util_text = (
            "  ".join(f"{k}={v:.0%}" for k, v in sorted(util.items()))
            if util else "n/a"
        )
        lines.extend([
            "dist scheduler:",
            f"  tasks {scheduler.get('tasks', 0)}  "
            f"retries {scheduler.get('retries', 0)}  "
            f"steals {scheduler.get('steals', 0)}  "
            f"stragglers {scheduler.get('stragglers', 0)}  "
            f"worker restarts {scheduler.get('worker_restarts', 0)}",
            f"  worker utilization (last map): {util_text}",
        ])
    router = entry.get("router")
    if router:
        lines.extend([
            "router:",
            f"  nets routed {router.get('nets_routed', 0)}  "
            f"rerouted {router.get('nets_rerouted', 0)}  "
            f"reroute rounds {router.get('reroute_rounds', 0)}",
            f"  maze aborts {router.get('maze_aborts', 0)}  "
            f"final 2-D overflow {router.get('final_overflow', 0)}",
        ])
    serving = entry.get("serving")
    if serving:
        lat = serving.get("latency_ms", {})
        req = serving.get("requests", {})
        depth = serving.get("queue_depth", {})
        lines.extend([
            "serving:",
            f"  latency p50/p95/p99  {lat.get('p50', 0.0):.0f}/"
            f"{lat.get('p95', 0.0):.0f}/{lat.get('p99', 0.0):.0f} ms",
            f"  cold -> warm         {serving.get('first_request_ms', 0.0):.0f}"
            f" -> {serving.get('warm_request_ms', 0.0):.0f} ms  "
            f"(speedup {serving.get('warm_speedup', 0.0):.2f}x)",
            f"  throughput           {serving.get('throughput_qps', 0.0):.2f} "
            f"qps (target {serving.get('target_qps', 0.0):g})",
            f"  requests             {req.get('ok', 0)} ok, "
            f"{req.get('rejected_429', 0)} rejected, "
            f"{req.get('errors', 0)} errors, {req.get('deduped', 0)} deduped",
            f"  queue depth p50/p95/max  {depth.get('p50', 0):g}/"
            f"{depth.get('p95', 0):g}/{depth.get('max', 0):g}",
        ])
        fleet = serving.get("fleet")
        if fleet:
            lines.extend([
                "fleet:",
                f"  shards {fleet.get('shards', 0)}  cache hit rate "
                f"{fleet.get('cache_hit_rate', 0.0):.0%}  "
                f"({fleet.get('cache_hits', 0)} hits / "
                f"{fleet.get('cache_misses', 0)} misses, "
                f"{fleet.get('cache_invalidations', 0)} invalidations)",
                f"  failovers {fleet.get('failovers', 0)}  "
                f"cold starts {fleet.get('failover_cold_starts', 0)}  "
                f"replica seeds {fleet.get('replica_seeds', 0)}  "
                f"pushes {fleet.get('replica_pushes', 0)}  "
                f"engine runs {fleet.get('engine_runs', 0)}",
            ])
    eco = entry.get("eco")
    if eco:
        lines.extend([
            "eco:",
            f"  epoch {eco.get('epoch', 0)}  round {eco.get('round', 0)}  "
            f"released {eco.get('released', 0)}  "
            f"edits {eco.get('num_edits', 0)}",
            f"  dirty leaves  {eco.get('dirty_leaves', 0)}/"
            f"{eco.get('num_leaves', 0)}  "
            f"(fraction {eco.get('dirty_fraction', 0.0):.1%})  "
            + ("accepted" if eco.get("accepted") else "rolled back"),
        ])
    sweep = entry.get("sweep")
    if sweep:
        knobs = sweep.get("knobs", {})
        knob_text = "  ".join(
            f"{k}={v:g}" for k, v in sorted(knobs.items())
        ) or "n/a"
        lines.extend([
            "sweep:",
            f"  point {sweep.get('point', 0)}/{sweep.get('points', 0)}  "
            + ("PARETO" if sweep.get("pareto") else "dominated"),
            f"  knobs: {knob_text}",
        ])
    trace = entry.get("trace")
    if trace:
        lines.append(
            f"trace: {trace.get('trace_id', '?')}"
            + (f"  ({trace['file']})" if trace.get("file") else "")
            + (
                f"  [{trace['spans']} spans]"
                if trace.get("spans") is not None else ""
            )
        )
    lines.append(convergence.summary_text(entry.get("convergence", {})))
    return "\n".join(lines)


_DIFF_FIELDS = (
    ("final Avg(Tcp)", ("quality", "final_avg_tcp")),
    ("final Max(Tcp)", ("quality", "final_max_tcp")),
    ("final via overflow", ("quality", "final_via_overflow")),
    ("final via count", ("quality", "final_vias")),
    ("runtime seconds", ("runtime", "total_seconds")),
    ("solver iterations p50", ("convergence", "solves", "iterations", "p50")),
    ("solver iterations p90", ("convergence", "solves", "iterations", "p90")),
    ("non-converged partitions", ("convergence", "partitions", "nonconverged")),
    ("overflow events", ("convergence", "partitions", "overflow_events")),
    # Dist-fabric runs (``--exec dist``): absent from pool/sequential runs.
    ("dist retries", ("scheduler", "retries")),
    ("dist steals", ("scheduler", "steals")),
    ("dist stragglers", ("scheduler", "stragglers")),
    # Batched runs (``--exec batch``): absent from every other backend.
    ("batch bucket solves", ("scheduler", "bucket_solves")),
    ("batch lockstep iters", ("scheduler", "batched_iterations")),
    ("batch frozen fraction", ("scheduler", "frozen_fraction")),
    # Router observability (filled by pipeline.prepare): regressions here
    # mean the 2-D routing phase itself got worse, not the optimizer.
    ("router maze aborts", ("router", "maze_aborts")),
    ("router reroute rounds", ("router", "reroute_rounds")),
    ("router final overflow", ("router", "final_overflow")),
    # Serving entries (``repro bench-serve``): absent from solve runs, and
    # _lookup simply skips missing paths.
    ("serve p50 latency ms", ("serving", "latency_ms", "p50")),
    ("serve p95 latency ms", ("serving", "latency_ms", "p95")),
    ("serve throughput qps", ("serving", "throughput_qps")),
    ("serve warm speedup", ("serving", "warm_speedup")),
    # Fleet entries (``repro bench-serve --gateway``): gateway-level
    # behaviour of the sharded topology.
    ("fleet cache hit rate", ("serving", "fleet", "cache_hit_rate")),
    ("fleet failovers", ("serving", "fleet", "failovers")),
    ("fleet cold starts", ("serving", "fleet", "failover_cold_starts")),
    ("fleet replica seeds", ("serving", "fleet", "replica_seeds")),
    ("fleet engine runs", ("serving", "fleet", "engine_runs")),
    # ECO entries (``repro closure`` rounds / eco_apply campaigns): the
    # dirty fraction is the cost of a round; rising means the dirtiness
    # propagation got blunter.
    ("eco dirty fraction", ("eco", "dirty_fraction")),
    ("eco dirty leaves", ("eco", "dirty_leaves")),
    ("eco released nets", ("eco", "released")),
)


def _lookup(entry: Dict[str, Any], path) -> Optional[float]:
    node: Any = entry
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def diff_entries(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """Field-by-field comparison of two entries (``repro obs diff A B``)."""
    header = (
        f"A: {a.get('created', '?')} {a.get('benchmark', '?')}/"
        f"{a.get('method', '?')} commit {a.get('fingerprint', {}).get('commit', '?')}\n"
        f"B: {b.get('created', '?')} {b.get('benchmark', '?')}/"
        f"{b.get('method', '?')} commit {b.get('fingerprint', {}).get('commit', '?')}"
    )
    rows = [f"{'metric':<26} {'A':>12} {'B':>12} {'delta':>10}"]
    for label, path in _DIFF_FIELDS:
        va, vb = _lookup(a, path), _lookup(b, path)
        if va is None and vb is None:
            continue
        sa = f"{va:g}" if va is not None else "-"
        sb = f"{vb:g}" if vb is not None else "-"
        if va and vb is not None:
            delta = f"{(vb / va - 1.0) * 100:+.1f}%"
        else:
            delta = "n/a"
        rows.append(f"{label:<26} {sa:>12} {sb:>12} {delta:>10}")
    return header + "\n" + "\n".join(rows)


def trace_pointer(entry: Dict[str, Any]) -> Optional[str]:
    """Actionable pointer at an entry's exported trace, if it has one.

    ``repro obs check`` prints this under the violation list so a failing
    gate leads straight to the span tree of the offending run.
    """
    trace = entry.get("trace") or {}
    trace_id = trace.get("trace_id")
    if not trace_id:
        return None
    where = trace.get("file") or "<trace file>"
    return (
        f"trace {trace_id} — inspect with: "
        f"repro obs trace critical {where} {trace_id[:12]}"
    )


# -- regression gating ------------------------------------------------------


@dataclass
class CheckThresholds:
    """Relative regression limits for ``repro obs check``.

    ``None`` disables a dimension.  Runtime gating is off by default —
    wall-clock is not comparable across machines; CI opts in with a
    generous ``--max-runtime-regression``.
    """

    avg_tcp: Optional[float] = 0.02
    max_tcp: Optional[float] = 0.05
    iterations_p90: Optional[float] = 0.5
    nonconverged_fraction: Optional[float] = 0.10  # absolute increase
    runtime: Optional[float] = None
    # Serving entries only (``repro bench-serve``).  p95 latency shares
    # runtime's caveat (machine-dependent; CI opts in generously);
    # ``min_warm_speedup`` is an absolute floor on the current entry's
    # cold/warm latency ratio — it needs no baseline and proves resident
    # warm state is actually being reused.
    serve_p95_latency: Optional[float] = None
    min_warm_speedup: Optional[float] = None
    # Absolute increase limit on final via overflow (None = not gated).
    # Gated absolutely because healthy runs sit at exactly 0, where a
    # relative threshold can never fire.
    via_overflow_increase: Optional[float] = None
    # ECO entries only: absolute ceiling on the current entry's
    # eco.dirty_fraction — the share of partitions an edit re-solved.  An
    # incremental engine whose small edits dirty most of the design has
    # lost its reason to exist, so CI pins the fraction directly rather
    # than relative to a baseline.
    max_dirty_fraction: Optional[float] = None
    # Fleet entries only (``repro bench-serve --gateway``), both absolute:
    # a floor on the gateway's cache hit rate (a fleet whose idempotent
    # repeats reach solvers has a broken cache), and a ceiling on failover
    # cold starts (a failover that cannot seed from the replica stream
    # lost the warm-failover property the tier exists for).
    min_cache_hit_rate: Optional[float] = None
    max_failover_cold_starts: Optional[float] = None


def check_entries(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    thresholds: Optional[CheckThresholds] = None,
) -> List[str]:
    """Regressions of ``current`` vs ``baseline`` past the thresholds.

    Returns human-readable violation strings (empty == gate passes).
    Benchmark/method identity is the caller's concern (see
    :func:`match_baseline`).
    """
    thr = thresholds or CheckThresholds()
    violations: List[str] = []

    def gate(label: str, path, limit: Optional[float]) -> None:
        if limit is None:
            return
        base, cur = _lookup(baseline, path), _lookup(current, path)
        if base is None or cur is None or base <= 0:
            return
        rel = cur / base - 1.0
        if rel > limit:
            violations.append(
                f"{label} regressed {rel:+.1%} (limit {limit:+.1%}): "
                f"{base:g} -> {cur:g}"
            )

    gate("final Avg(Tcp)", ("quality", "final_avg_tcp"), thr.avg_tcp)
    gate("final Max(Tcp)", ("quality", "final_max_tcp"), thr.max_tcp)
    gate("runtime", ("runtime", "total_seconds"), thr.runtime)
    gate(
        "solver iterations p90",
        ("convergence", "solves", "iterations", "p90"),
        thr.iterations_p90,
    )
    gate(
        "serving p95 latency",
        ("serving", "latency_ms", "p95"),
        thr.serve_p95_latency,
    )

    if thr.min_warm_speedup is not None:
        speedup = _lookup(current, ("serving", "warm_speedup"))
        if speedup is None:
            violations.append(
                "warm-speedup gate requested but the current entry has no "
                "serving.warm_speedup (not a bench-serve entry?)"
            )
        elif speedup < thr.min_warm_speedup:
            violations.append(
                f"serving warm speedup {speedup:.2f}x is below the "
                f"{thr.min_warm_speedup:.2f}x floor (resident warm state "
                "not being reused?)"
            )

    if thr.max_dirty_fraction is not None:
        fraction = _lookup(current, ("eco", "dirty_fraction"))
        if fraction is None:
            violations.append(
                "dirty-fraction gate requested but the current entry has no "
                "eco.dirty_fraction (not an ECO entry?)"
            )
        elif fraction > thr.max_dirty_fraction:
            violations.append(
                f"eco dirty fraction {fraction:.1%} exceeds the "
                f"{thr.max_dirty_fraction:.1%} ceiling (edits are dirtying "
                "most of the design)"
            )

    if thr.min_cache_hit_rate is not None:
        rate = _lookup(current, ("serving", "fleet", "cache_hit_rate"))
        if rate is None:
            violations.append(
                "cache-hit-rate gate requested but the current entry has no "
                "serving.fleet.cache_hit_rate (not a fleet entry?)"
            )
        elif rate < thr.min_cache_hit_rate:
            violations.append(
                f"fleet cache hit rate {rate:.1%} is below the "
                f"{thr.min_cache_hit_rate:.1%} floor (idempotent repeats "
                "are reaching solvers)"
            )

    if thr.max_failover_cold_starts is not None:
        cold = _lookup(current, ("serving", "fleet", "failover_cold_starts"))
        if cold is None:
            violations.append(
                "failover-cold-start gate requested but the current entry "
                "has no serving.fleet.failover_cold_starts (not a fleet "
                "entry?)"
            )
        elif cold > thr.max_failover_cold_starts:
            violations.append(
                f"fleet failover cold starts {cold:g} exceed the "
                f"{thr.max_failover_cold_starts:g} ceiling (replica "
                "seeding is not keeping failover warm)"
            )

    if thr.via_overflow_increase is not None:
        base_v = _lookup(baseline, ("quality", "final_via_overflow"))
        cur_v = _lookup(current, ("quality", "final_via_overflow"))
        if (
            base_v is not None
            and cur_v is not None
            and cur_v - base_v > thr.via_overflow_increase
        ):
            violations.append(
                f"final via overflow rose {base_v:g} -> {cur_v:g} "
                f"(limit +{thr.via_overflow_increase:g})"
            )

    if thr.nonconverged_fraction is not None:
        def frac(entry: Dict[str, Any]) -> Optional[float]:
            count = _lookup(entry, ("convergence", "partitions", "count"))
            bad = _lookup(entry, ("convergence", "partitions", "nonconverged"))
            if not count or bad is None:
                return None
            return bad / count

        base_f, cur_f = frac(baseline), frac(current)
        if base_f is not None and cur_f is not None:
            if cur_f - base_f > thr.nonconverged_fraction:
                violations.append(
                    "non-converged partition fraction rose "
                    f"{base_f:.1%} -> {cur_f:.1%} "
                    f"(limit +{thr.nonconverged_fraction:.0%})"
                )
    return violations
