"""Asyncio HTTP job server for layer-assignment requests (``repro serve``).

Stdlib only: a minimal HTTP/1.1 implementation over asyncio streams —
request line, headers, ``Content-Length`` body, one request per
connection.  Endpoints:

- ``POST /v1/assign`` — problem JSON in (``repro.assign_request/v1``),
  optimized assignment + Tcp + per-phase clocks out.  Admission goes
  through the bounded job queue: a full queue answers **429** with a
  ``Retry-After`` estimate instead of queueing unboundedly.
- ``POST /v1/eco`` — an ECO delta (``repro.eco_request/v1``: typed edit
  set + ``state_epoch``) applied incrementally against the matching
  resident's committed state.  A stale epoch answers a structured **409**
  with the resident's current epoch; the resident is untouched.
- ``GET  /metrics``  — Prometheus text from the process-wide
  :mod:`repro.obs.metrics` registry (the same registry the engines
  instrument; there is deliberately no second one).
- ``GET  /healthz``  — liveness: 200 whenever the process can answer.
- ``GET  /readyz``   — readiness: 200 while accepting, 503 once draining.
- ``POST /v1/drain`` — begin graceful drain (same path as SIGTERM).

Every request is trace-scoped: an incoming W3C ``traceparent`` header is
continued (or a fresh trace id minted), the ``trace_id`` is returned in
every JSON response body and ``X-Trace-Id`` header — 429/500/504
included — and, when tracing is enabled, a detached ``serve.request``
span roots the request's span tree (engine and worker spans nest under
it through the batch scheduler; see ``repro obs trace``).

Lifecycle: SIGTERM/SIGINT (or ``/v1/drain``) stops admission, lets
in-flight and queued jobs finish on the engine thread, closes resident
engines (and their process pools), then exits 0.  Request handling is
crash-isolated — a poisoned job produces a structured 500 and evicts its
resident; the server keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.ispd.request import (
    AssignRequest,
    EcoRequest,
    RequestError,
    error_body,
)
from repro.obs import metrics, tracer
from repro.obs.tracer import TraceContext
from repro.service import http
from repro.service.batcher import BatchScheduler, JobConflict, JobFailed
from repro.service.jobs import Job, JobExpired, JobQueue, QueueClosed, QueueFull
from repro.service.resident import EngineHost
from repro.utils import get_logger

log = get_logger(__name__)

# End-to-end request latency buckets (seconds).
_REQUEST_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0)


@dataclass
class ServeConfig:
    """Knobs of one server instance."""

    host: str = "127.0.0.1"
    port: int = 8181
    max_queue: int = 32
    max_batch: int = 8
    engine_cache: int = 4
    default_deadline_ms: Optional[float] = 120000.0
    max_body_bytes: int = 1 << 20
    header_timeout_seconds: float = 10.0
    # Admission policy: synthetic instances grow with scale and every
    # worker is a process — cap what one request may demand of the box.
    max_scale: float = 1.0
    max_workers: int = 4
    # Optional TCP listener handed to the dist fabric of ``--exec dist``
    # residents so remote ``repro dist-worker --connect`` workers can join.
    dist_listen: Optional[Tuple[str, int]] = None
    dist_authkey: Optional[bytes] = None
    # Fleet membership (optional; see repro.fleet).  ``fleet_shard_id``
    # names this shard on the consistent-hash ring; ``replica_listen``
    # opens the authenticated replica receiver; ``fleet_peers`` maps every
    # shard id (this one included) to its replica listener address.  When
    # peers are known up front they wire at start(); topologies with
    # ephemeral replica ports call :meth:`AssignServer.join_fleet` after
    # all receivers are bound.
    fleet_shard_id: Optional[str] = None
    replica_listen: Optional[Tuple[str, int]] = None
    fleet_authkey: Optional[bytes] = None
    fleet_peers: Optional[Dict[str, Tuple[str, int]]] = None
    fleet_vnodes: int = 64

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.replica_listen is not None and self.fleet_authkey is None:
            raise ValueError("replica_listen requires fleet_authkey")
        if self.replica_listen is not None and self.fleet_shard_id is None:
            raise ValueError("replica_listen requires fleet_shard_id")


class AssignServer:
    """One resident serving process: queue + batcher + HTTP front."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.queue = JobQueue(self.config.max_queue)
        self.host = EngineHost(
            self.config.engine_cache,
            dist_listen=self.config.dist_listen,
            dist_authkey=self.config.dist_authkey,
        )
        self.scheduler = BatchScheduler(
            self.queue, self.host, self.config.max_batch
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        self._started_at = time.monotonic()
        self.port: Optional[int] = None  # actual port (config.port may be 0)
        self._replica_receiver = None  # repro.fleet.replica.ReplicaReceiver

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the dispatcher (idempotent-free)."""
        metrics.enable()
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        if self.config.replica_listen is not None:
            from repro.fleet.replica import ReplicaReceiver

            self._replica_receiver = ReplicaReceiver(
                self.config.replica_listen, self.config.fleet_authkey
            )
            self._replica_receiver.start()
            log.info(
                "shard %s replica receiver on %s:%d",
                self.config.fleet_shard_id, *self._replica_receiver.address,
            )
            if self.config.fleet_peers:
                self.join_fleet(self.config.fleet_peers)
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "serving on http://%s:%d (queue=%d, batch=%d, engines=%d)",
            self.config.host, self.port,
            self.config.max_queue, self.config.max_batch,
            self.config.engine_cache,
        )

    async def serve_forever(self, install_signals: bool = True) -> int:
        """Run until drained; returns the process exit code (0 = clean)."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig, self.initiate_drain, f"signal {sig.name}"
                    )
                except (NotImplementedError, RuntimeError, ValueError):
                    # Non-main thread or platform without signal support;
                    # draining stays reachable through POST /v1/drain.
                    break
        assert self._stopped is not None
        await self._stopped.wait()
        return 0

    def initiate_drain(self, reason: str = "requested") -> None:
        """Stop admission, finish in-flight work, then stop the server."""
        if self._draining:
            return
        self._draining = True
        log.info(
            "drain started (%s): %d queued, %d in flight",
            reason, len(self.queue), self.scheduler.in_flight,
        )
        metrics.inc("serve.drains")
        self.queue.close()
        self._drain_task = asyncio.get_running_loop().create_task(
            self._finish_drain(), name="drain"
        )

    async def _finish_drain(self) -> None:
        await self.scheduler.join()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._replica_receiver is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._replica_receiver.close
            )
        log.info("drain complete")
        assert self._stopped is not None
        self._stopped.set()

    @property
    def ready(self) -> bool:
        return self._server is not None and not self._draining

    # -- fleet membership --------------------------------------------------

    @property
    def replica_address(self) -> Optional[Tuple[str, int]]:
        """The bound replica listener address (resolves a port-0 listen)."""
        if self._replica_receiver is None:
            return None
        return self._replica_receiver.address

    def join_fleet(self, peers: Dict[str, Tuple[str, int]]) -> None:
        """Finish fleet wiring once every peer's replica address is known.

        ``peers`` maps shard id -> replica listener address for the whole
        fleet, this shard included.  Builds the same consistent-hash ring
        the gateway routes by, so the shard can (a) push each signature's
        warm state to its ring successor and (b) recognize failed-over
        traffic — a resident build for a signature it does not own.
        """
        from repro.fleet.replica import Replicator, ShardFleet
        from repro.fleet.ring import HashRing

        if self._replica_receiver is None:
            raise ValueError("join_fleet requires replica_listen")
        shard_id = self.config.fleet_shard_id
        if shard_id not in peers:
            raise ValueError(f"fleet peers must include this shard {shard_id!r}")
        ring = HashRing(peers, vnodes=self.config.fleet_vnodes)
        self.host.fleet = ShardFleet(
            shard_id=shard_id,
            ring=ring,
            store=self._replica_receiver.store,
            replicator=Replicator(
                shard_id, ring, peers, self.config.fleet_authkey
            ),
        )
        log.info(
            "shard %s joined fleet of %d (%s)",
            shard_id, len(peers), ", ".join(sorted(peers)),
        )

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.monotonic()
        try:
            method, path, headers_in, body = await http.read_request(
                reader, self.config.max_body_bytes,
                self.config.header_timeout_seconds,
            )
        except http.HttpError as exc:
            ctx = TraceContext(tracer.new_trace_id())
            await http.respond(
                writer, exc.status,
                self._tag_payload(
                    error_body("bad_request", str(exc)), ctx
                ),
                self._trace_headers({}, ctx),
            )
            return
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError, asyncio.LimitOverrunError):
            writer.close()
            return
        # Request-scoped trace context: continue an incoming W3C
        # ``traceparent`` if the caller sent one, else mint a fresh trace.
        # The request span is *detached* (never on the thread-local nesting
        # stack): the handler holds it across ``await`` points, where stack
        # discipline would interleave concurrent requests.
        ctx = (
            TraceContext.from_traceparent(headers_in.get("traceparent"))
            or TraceContext(tracer.new_trace_id())
        )
        request_span = tracer.start_span(
            "serve.request", ctx=ctx, method=method, path=path
        )
        job_ctx = TraceContext(
            ctx.trace_id,
            request_span.id if request_span is not None else ctx.span_id,
        )
        error_type: Optional[str] = None
        try:
            status, payload, headers = await self._route(
                method, path, body, job_ctx
            )
        except Exception as exc:  # crash isolation: never kill the server
            log.warning(
                "unhandled error serving %s %s", method, path, exc_info=True
            )
            metrics.inc("serve.internal_errors")
            error_type = type(exc).__name__
            status, payload, headers = 500, error_body(
                "internal", f"{type(exc).__name__}: {exc}"
            ), {}
        metrics.observe(
            "serve.request_seconds",
            time.monotonic() - started,
            _REQUEST_BUCKETS,
        )
        metrics.inc(f"serve.http_{status}")
        await http.respond(
            writer, status,
            self._tag_payload(payload, job_ctx),
            self._trace_headers(headers, job_ctx),
        )
        if request_span is not None:
            request_span.set_attr("status", status)
            if error_type is None and status >= 500:
                error_type = f"http_{status}"
            request_span.finish(error_type)

    @staticmethod
    def _tag_payload(payload: Any, ctx: TraceContext) -> Any:
        """Stamp the request's trace id into every JSON response body.

        Applies to *all* statuses — 429/500/504 included — so a client can
        always hand a trace id to ``repro obs trace`` even when response
        headers were swallowed by a proxy or a minimal client.
        """
        if isinstance(payload, dict):
            payload.setdefault("trace_id", ctx.trace_id)
        return payload

    @staticmethod
    def _trace_headers(
        headers: Optional[Dict[str, str]], ctx: TraceContext
    ) -> Dict[str, str]:
        headers = dict(headers or {})
        headers.setdefault("X-Trace-Id", ctx.trace_id or "")
        if ctx.span_id is not None:
            headers.setdefault("traceparent", ctx.to_traceparent())
        return headers

    # -- routing ----------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes, ctx: TraceContext
    ) -> Tuple[int, Any, Dict[str, str]]:
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "alive",
                "uptime_seconds": round(
                    time.monotonic() - self._started_at, 3
                ),
                "draining": self._draining,
            }, {}
        if path == "/readyz" and method == "GET":
            if self.ready:
                return 200, {
                    "status": "ready",
                    "queue_depth": len(self.queue),
                    "resident_engines": len(self.host),
                }, {}
            return 503, {"status": "draining"}, {}
        if path == "/metrics" and method == "GET":
            metrics.set_gauge("serve.queue_depth_current", len(self.queue))
            metrics.set_gauge("serve.in_flight", self.scheduler.in_flight)
            metrics.set_gauge("serve.resident_engines", len(self.host))
            return 200, metrics.registry().render_prometheus(), {}
        if path == "/v1/drain" and method == "POST":
            queued, in_flight = len(self.queue), self.scheduler.in_flight
            self.initiate_drain("POST /v1/drain")
            return 202, {
                "status": "draining",
                "queued": queued,
                "in_flight": in_flight,
            }, {}
        if path == "/v1/assign" and method == "POST":
            return await self._assign(body, ctx)
        if path == "/v1/eco" and method == "POST":
            return await self._assign(body, ctx, parser=EcoRequest.from_json)
        if path in ("/healthz", "/readyz", "/metrics", "/v1/drain",
                    "/v1/assign", "/v1/eco"):
            return 405, error_body(
                "method_not_allowed", f"{method} not supported on {path}"
            ), {}
        return 404, error_body("not_found", f"no route {path}"), {}

    async def _assign(
        self, body: bytes, ctx: TraceContext, parser=AssignRequest.from_json
    ) -> Tuple[int, Any, Dict[str, str]]:
        """Shared admission path of ``/v1/assign`` and ``/v1/eco``.

        Only the parser differs; queueing, backpressure, deadlines, and
        the error taxonomy are identical.  409 (stale ECO epoch) can only
        come back for :class:`EcoRequest` jobs.
        """
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = parser(payload)
            self._check_policy(request)
        except (RequestError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            metrics.inc("serve.bad_requests")
            return 400, error_body("bad_request", str(exc)), {}
        job = Job.create(
            request,
            asyncio.get_running_loop(),
            self.config.default_deadline_ms,
            ctx=ctx,
        )
        try:
            self.queue.submit(job)
        except QueueFull as exc:
            retry_after = max(1, round(exc.retry_after))
            return 429, error_body(
                "overloaded", str(exc), retry_after_seconds=retry_after
            ), {"Retry-After": str(retry_after)}
        except QueueClosed as exc:
            return 503, error_body("draining", str(exc)), {}
        try:
            response = await job.future
        except JobExpired as exc:
            return 504, error_body("deadline_exceeded", str(exc)), {}
        except JobConflict as exc:
            return 409, error_body(
                "stale_epoch", str(exc),
                expected_epoch=exc.expected, current_epoch=exc.current,
            ), {}
        except JobFailed as exc:
            return 500, error_body("solve_failed", str(exc)), {}
        return 200, response, {}

    def _check_policy(self, request: AssignRequest) -> None:
        cfg = self.config
        if request.scale > cfg.max_scale:
            raise RequestError(
                f"scale {request.scale:g} exceeds this server's limit "
                f"{cfg.max_scale:g}"
            )
        if request.workers > cfg.max_workers:
            raise RequestError(
                f"workers {request.workers} exceeds this server's limit "
                f"{cfg.max_workers}"
            )


async def run_server(config: Optional[ServeConfig] = None) -> int:
    """Start a server and block until it drains; returns the exit code."""
    server = AssignServer(config)
    await server.start()
    return await server.serve_forever()
