"""Resident engines: warm, reusable solver state shared across requests.

One :class:`ResidentEngine` owns everything a problem signature needs to
be served repeatedly without paying cold-start costs again:

- the **prepared benchmark** (2-D routing, topology, initial DP layer
  assignment) and a layer checkpoint taken right after preparation, so the
  instance can be rewound instead of re-routed per request;
- for the CPLA methods, a long-lived :class:`~repro.core.engine.CPLAEngine`
  whose Elmore fingerprint cache, per-partition ADMM warm-start ``X``
  cache, and persistent :class:`~repro.core.engine.LeafSolvePool` all
  survive between runs.

Engine reuse is deterministic (warm rerun == fresh run, bit-identical;
enforced by tests/test_engine_reuse.py), so serving through a resident
engine returns exactly what a one-shot ``repro run`` would — just faster
from the second request on.

:class:`EngineHost` is the LRU of residents, capacity-bounded because each
CPLA resident may hold a process pool.  It is driven from the batch
scheduler's single engine thread; it is not itself thread-safe.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.analysis.runreport import RunReport
from repro.core.engine import CPLAConfig, CPLAEngine
from repro.ispd.benchmark import Benchmark
from repro.ispd.request import AssignRequest, assignment_digest
from repro.obs import metrics
from repro.route.occupancy import commit_net, release_net
from repro.tila.engine import TILAConfig, TILAEngine
from repro.utils import get_logger

log = get_logger(__name__)

SegKey = Tuple[int, int]


def snapshot_layers(bench: Benchmark) -> Dict[SegKey, int]:
    """Layer checkpoint of every net of a prepared benchmark."""
    return {
        (net.id, seg.id): seg.layer
        for net in bench.nets
        for seg in net.topology.segments
    }


def restore_layers(bench: Benchmark, layers: Dict[SegKey, int]) -> None:
    """Rewind a benchmark to a checkpoint, keeping grid occupancy exact."""
    for net in bench.nets:
        release_net(bench.grid, net.topology)
        for seg in net.topology.segments:
            seg.layer = layers[(net.id, seg.id)]
        commit_net(bench.grid, net.topology)


class StaleEpoch(Exception):
    """An ECO delta targeted an epoch the resident is no longer at.

    Maps to HTTP 409: the edit set was computed against committed state
    epoch ``expected`` but the resident has moved on to ``current`` (some
    other client's delta, or a fresh full solve, landed in between).  The
    resident state is *not* discarded — the client should refresh its view
    and resubmit against the current epoch.
    """

    def __init__(self, expected: int, current: int) -> None:
        super().__init__(
            f"stale state_epoch: request targets epoch {expected}, "
            f"resident is at epoch {current}"
        )
        self.expected = expected
        self.current = current


class ResidentEngine:
    """Warm solver state for one problem signature.

    ``dist_listen``/``dist_authkey`` (host-level, not per-request) open a
    TCP listener on the engine's dist fabric for ``--exec dist`` requests,
    so remote ``repro dist-worker --connect`` workers can serve leaves of
    requests handled by this server.
    """

    def __init__(
        self,
        request: AssignRequest,
        prepare_fn=None,
        dist_listen: Optional[Tuple[str, int]] = None,
        dist_authkey: Optional[bytes] = None,
    ) -> None:
        from repro.pipeline import prepare  # deferred: pipeline imports engines

        self.signature = request.signature()
        self.key = request.signature_key()
        self.method = request.method
        self.runs = 0
        self.created = time.monotonic()
        # Committed-state epoch for ECO deltas: 0 after every full solve,
        # +1 per applied edit set.  ``/v1/eco`` requests must name it.
        self.state_epoch = 0
        self._eco = None  # lazily-built repro.eco.engine.EcoEngine
        # Fleet replication (see repro.fleet.replica): the edit sets (JSON
        # form) applied since the last full solve — shipped to the ring
        # successor so a failover can replay them bit-exactly; a seeded
        # resident holds them in _pending_history until first touched.
        self._history = []
        self._pending_history = None
        self._replicator = None  # set by EngineHost when in a fleet
        prepare_fn = prepare_fn or prepare
        if request.router_rounds or request.maze_expansion_limit:
            from repro.route.router import RouterConfig

            kwargs = {}
            if request.router_rounds:
                kwargs["rounds"] = request.router_rounds
            if request.maze_expansion_limit:
                kwargs["maze_expansion_limit"] = request.maze_expansion_limit
            self.bench: Benchmark = prepare_fn(
                request.benchmark,
                scale=request.scale,
                router_config=RouterConfig(**kwargs),
            )
        else:
            self.bench = prepare_fn(request.benchmark, scale=request.scale)
        self._engine: Optional[CPLAEngine] = None
        if self.method in ("sdp", "ilp"):
            dist_config = None
            if request.exec_backend == "dist" and dist_listen is not None:
                from repro.dist.fabric import DistFabricConfig

                dist_config = DistFabricConfig(
                    listen=dist_listen, authkey=dist_authkey
                )
            config = CPLAConfig(
                method=self.method,
                critical_ratio=request.ratio_percent / 100.0,
                workers=request.workers,
                exec_backend=request.exec_backend,
                dist=dist_config,
            )
            self._engine = CPLAEngine(self.bench, config)
            self._baseline = self._engine.snapshot_layers()
        else:
            self._tila_ratio = request.ratio_percent / 100.0
            self._baseline = snapshot_layers(self.bench)

    def solve(self) -> Tuple[RunReport, str]:
        """Run the optimizer once; returns the report and assignment digest.

        The first run starts from the freshly prepared state; later runs
        rewind to the post-``prepare`` checkpoint first, so every run sees
        the identical input a one-shot ``repro run`` would.
        """
        if self.runs:
            if self._engine is not None:
                self._engine.restore_layers(self._baseline)
            else:
                restore_layers(self.bench, self._baseline)
        self.runs += 1
        metrics.inc("engine.runs")
        if self._engine is not None:
            report = self._engine.run()
        else:
            config = TILAConfig(
                engine="dp" if self.method == "tila" else "dp+flow",
                critical_ratio=self._tila_ratio,
            )
            report = TILAEngine(self.bench, config).run()
        # A full solve recommits the baseline: any ECO history is gone and
        # the epoch counter restarts from the new committed state.
        self.state_epoch = 0
        self._eco = None
        self._history = []
        self._pending_history = None
        self._replicate()
        return report, assignment_digest(self.bench)

    def apply_eco(self, request) -> "object":
        """Apply one ECO delta against the committed state; bump the epoch.

        Raises :class:`StaleEpoch` when ``request.state_epoch`` does not
        match the resident's current epoch — *before* touching any state,
        so a conflicting client costs nothing and poisons nothing.  A cold
        resident (no solve yet) auto-solves first to establish the
        epoch-0 committed baseline.
        """
        from repro.eco.engine import EcoEngine

        if self._engine is None:
            raise ValueError(
                f"method {self.method!r} does not support eco_apply"
            )
        if request.state_epoch != self.state_epoch:
            metrics.inc("serve.eco_stale_epoch")
            raise StaleEpoch(request.state_epoch, self.state_epoch)
        if self._pending_history is not None:
            self._materialize_history()
        elif not self.runs:
            self.solve()
        if self._eco is None:
            self._eco = EcoEngine(self._engine)
            self._eco.epoch = self.state_epoch
        metrics.inc("engine.runs")
        report = self._eco.apply(list(request.edits))
        self.state_epoch = self._eco.epoch
        from repro.eco.edits import edits_to_json

        self._history.append(edits_to_json(request.edits))
        self._replicate()
        return report

    # -- fleet replication -------------------------------------------------

    def seed_replica(self, state) -> bool:
        """Adopt a :class:`~repro.fleet.replica.ReplicaState` from a peer.

        Called right after construction, before any request touches this
        resident.  The shipped post-prepare checkpoint must match the
        locally prepared baseline — preparation is deterministic, so a
        mismatch means the peer solved a *different* problem and seeding
        would break bit-identity; it is refused loudly.  The ADMM warm
        store is imported (warm == fresh, bit-identical), and any ECO
        history is held pending: the first ``/v1/eco`` request replays it
        to the replicated epoch before applying its own delta, while a
        full solve discards it (epochs restart at 0, as on any shard).
        """
        if dict(state.baseline) != dict(self._baseline):
            metrics.inc("fleet.replica_baseline_mismatch")
            log.warning(
                "replica for %s has a divergent post-prepare checkpoint; "
                "refusing to seed", self.key,
            )
            return False
        if self._engine is not None and state.warm_store:
            self._engine.import_warm_store(state.warm_store)
        if state.epoch and state.history:
            self._pending_history = [list(h) for h in state.history]
            self.state_epoch = state.epoch
        metrics.inc("fleet.replica_seeds")
        log.info(
            "seeded resident %s from replica (epoch %d, %d warm entries)",
            self.key, state.epoch, len(state.warm_store or ()),
        )
        return True

    def _materialize_history(self) -> None:
        """Replay the replicated ECO history onto a fresh baseline solve.

        Restores the exact committed state (and epoch) the dead owner
        replicated — the ECO engine's incremental == cold-replay guarantee
        plus deterministic preparation make the replay bit-exact.
        """
        from repro.eco.edits import parse_edits
        from repro.eco.engine import EcoEngine

        history = [list(h) for h in self._pending_history or ()]
        target = self.state_epoch
        log.info(
            "materializing %d replicated ECO epochs for %s",
            len(history), self.key,
        )
        self.solve()  # epoch-0 baseline; clears _pending_history/_history
        self._eco = EcoEngine(self._engine)
        self._eco.epoch = 0
        for edits_json in history:
            self._eco.apply(parse_edits(edits_json))
        self.state_epoch = self._eco.epoch
        self._history = history
        if self.state_epoch != target:
            log.warning(
                "replayed history reached epoch %d, replica said %d",
                self.state_epoch, target,
            )

    def _replicate(self) -> None:
        if self._replicator is not None:
            self._replicator.push(self)

    @property
    def warm(self) -> bool:
        return self.runs > 0

    def close(self) -> None:
        if self._engine is not None:
            self._engine.close()


class EngineHost:
    """Capacity-bounded LRU of :class:`ResidentEngine` keyed by signature."""

    def __init__(
        self,
        capacity: int = 4,
        dist_listen: Optional[Tuple[str, int]] = None,
        dist_authkey: Optional[bytes] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dist_listen = dist_listen
        self.dist_authkey = dist_authkey
        # repro.fleet.replica.ShardFleet when this host serves a fleet
        # shard: ownership ring, received-replica store, outbound pusher.
        self.fleet = None
        self._residents: "OrderedDict[Tuple, ResidentEngine]" = OrderedDict()

    def get(self, request: AssignRequest) -> ResidentEngine:
        signature = request.signature()
        resident = self._residents.get(signature)
        if resident is None:
            metrics.inc("serve.engine_builds")
            log.info("building resident engine for %s", request.signature_key())
            resident = ResidentEngine(
                request,
                dist_listen=self.dist_listen,
                dist_authkey=self.dist_authkey,
            )
            if self.fleet is not None:
                self._join_fleet(resident, request.signature_key())
            self._residents[signature] = resident
            while len(self._residents) > self.capacity:
                _, evicted = self._residents.popitem(last=False)
                log.info("evicting resident engine %s", evicted.key)
                metrics.inc("serve.engine_evictions")
                evicted.close()
        else:
            metrics.inc("serve.engine_hits")
        self._residents.move_to_end(signature)
        return resident

    def _join_fleet(self, resident: ResidentEngine, key: str) -> None:
        """Fleet bookkeeping for a freshly built resident.

        A build for a signature this shard does not own is failed-over
        traffic (the gateway only routes here when the owner is dead);
        if the dead owner managed to replicate, resume warm from its
        state, otherwise count a cold start — the ``obs check
        --max-failover-cold-starts`` gate watches that counter.
        """
        resident._replicator = self.fleet.replicator
        if self.fleet.ring.owner(key) == self.fleet.shard_id:
            return
        metrics.inc("fleet.failover_requests")
        state = self.fleet.store.get(key)
        if state is not None and resident.seed_replica(state):
            return
        metrics.inc("fleet.failover_cold_builds")
        log.info("failover build for %s has no usable replica; cold start", key)

    def discard(self, request: AssignRequest) -> None:
        """Drop (and close) the resident for a signature, if present.

        The scheduler calls this after a solve raised: a half-mutated
        benchmark must not serve the next request.
        """
        resident = self._residents.pop(request.signature(), None)
        if resident is not None:
            metrics.inc("serve.engine_discards")
            resident.close()

    def __len__(self) -> int:
        return len(self._residents)

    def close(self) -> None:
        while self._residents:
            _, resident = self._residents.popitem()
            resident.close()
