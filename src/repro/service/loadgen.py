"""Load generator for the assign server (``repro bench-serve``).

Replays synthetic ISPD assignment requests against a server — an external
one (``--url``) or a private in-process instance spun up on an ephemeral
port — in three phases:

1. **cold**: one request against the empty server; measures the
   first-request latency (engine build: routing + pool spawn + cold ADMM);
2. **warm**: a few sequential requests; their median is the resident
   warm-path latency, and ``warm_speedup = cold / warm`` is the number the
   CI gate watches — it proves the resident state is actually reused;
3. **load**: an open-loop run at the target QPS with bounded concurrency;
   yields the latency percentiles, achieved throughput, queue-depth
   percentiles, and the 429/error counts.

Every successful response's assignment digest must agree, and with
``verify=True`` the digest is also checked against an in-process
``repro run`` of the identical problem — the serve path must be
bit-identical to the CLI path.

The result is appended to a run ledger as a ``repro.run_ledger/v1`` entry
(method ``serve:<method>`` so it never cross-matches solve baselines) and
gated in CI by ``repro obs check`` exactly like solve regressions.
"""

from __future__ import annotations

import asyncio
import json
import math
import statistics
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.ispd.request import (
    ECO_REQUEST_SCHEMA,
    AssignRequest,
    assignment_digest,
)
from repro.obs import ledger as run_ledger
from repro.obs import tracer
from repro.service.server import AssignServer, ServeConfig
from repro.utils import get_logger

log = get_logger(__name__)


# -- minimal asyncio HTTP client ---------------------------------------------


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    timeout: float = 300.0,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Any]:
    """One HTTP/1.1 exchange; returns (status, parsed JSON or text).

    ``headers`` adds extra request headers — e.g. ``traceparent`` to join
    the request to a caller-side trace.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        blob = json.dumps(body).encode("utf-8") if body is not None else b""
        extra = "".join(
            f"{key}: {value}\r\n" for key, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            + extra
            + "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + blob)
        await writer.drain()
        # Read headers, then exactly Content-Length body bytes.  Never read
        # to EOF: solver worker processes forked mid-request inherit the
        # server's accepted socket, so the connection only sees FIN when
        # those (long-lived) workers exit — read-to-EOF would hang forever.
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout
        )
        header_blob = header_blob[:-4]
        length = 0
        for line in header_blob.decode("latin-1").split("\r\n")[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1].strip())
        payload = (
            await asyncio.wait_for(reader.readexactly(length), timeout=timeout)
            if length else b""
        )
    finally:
        writer.close()
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    text = payload.decode("utf-8", errors="replace")
    content_type = ""
    for line in lines[1:]:
        if line.lower().startswith("content-type:"):
            content_type = line.split(":", 1)[1].strip()
    if content_type.startswith("application/json") and text.strip():
        return status, json.loads(text)
    return status, text


# -- in-process server host --------------------------------------------------


class ServerThread:
    """An :class:`AssignServer` on a background thread with its own loop."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig(port=0)
        self.port: Optional[int] = None
        self.server: Optional[AssignServer] = None
        self._ready = threading.Event()
        self._failed: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="assign-server", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to the waiting starter
            self._failed = exc
            self._ready.set()

    async def _main(self) -> None:
        server = AssignServer(self.config)
        await server.start()
        self.server = server
        self.port = server.port
        self._ready.set()
        await server.serve_forever(install_signals=False)

    def start(self, timeout: float = 60.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("in-process server did not come up")
        if self._failed is not None:
            raise RuntimeError(f"in-process server failed: {self._failed!r}")
        return self

    def stop(self, timeout: float = 120.0) -> None:
        if self.port is not None and self._thread.is_alive():
            try:
                asyncio.run(
                    http_request(
                        self.config.host, self.port, "POST", "/v1/drain"
                    )
                )
            except OSError:
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- in-process fleet topology ------------------------------------------------


_FLEET_AUTHKEY = b"repro-fleet-loadgen"


class FleetTopology:
    """N shard servers plus one gateway, all in-process.

    Ephemeral ports everywhere, so bring-up is two-phase: every shard
    first binds its replica receiver, then — once all replica addresses
    are known — each shard joins the fleet (identical rings built from
    the identical sorted shard-id list), and finally the gateway comes up
    fronting the shard HTTP ports.
    """

    def __init__(
        self,
        num_shards: int,
        max_queue: int = 32,
        max_batch: int = 8,
        max_workers: int = 4,
        cache_capacity: int = 256,
    ) -> None:
        if num_shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.shard_ids = [f"s{i}" for i in range(num_shards)]
        self.shards: Dict[str, ServerThread] = {}
        self.gateway = None  # repro.fleet.gateway.GatewayThread
        self._ring = None
        self._max_queue = max_queue
        self._max_batch = max_batch
        self._max_workers = max_workers
        self._cache_capacity = cache_capacity

    def start(self) -> "FleetTopology":
        from repro.fleet.gateway import GatewayConfig, GatewayThread
        from repro.fleet.ring import HashRing

        for shard_id in self.shard_ids:
            self.shards[shard_id] = ServerThread(
                ServeConfig(
                    port=0,
                    max_queue=self._max_queue,
                    max_batch=self._max_batch,
                    max_workers=self._max_workers,
                    fleet_shard_id=shard_id,
                    replica_listen=("127.0.0.1", 0),
                    fleet_authkey=_FLEET_AUTHKEY,
                )
            ).start()
        peers = {
            shard_id: thread.server.replica_address
            for shard_id, thread in self.shards.items()
        }
        for thread in self.shards.values():
            thread.server.join_fleet(peers)
        self._ring = HashRing(self.shard_ids)
        self.gateway = GatewayThread(
            GatewayConfig(
                shards={
                    shard_id: (thread.config.host, thread.port)
                    for shard_id, thread in self.shards.items()
                },
                port=0,
                cache_capacity=self._cache_capacity,
            )
        ).start()
        log.info(
            "fleet up: %d shards behind gateway :%d",
            len(self.shards), self.gateway.port,
        )
        return self

    @property
    def host(self) -> str:
        return "127.0.0.1"

    @property
    def port(self) -> int:
        return self.gateway.port

    def owner_of(self, key: str) -> str:
        """The shard id the ring routes ``key`` to (the failover victim)."""
        return self._ring.owner(key)

    def stop_shard(self, shard_id: str) -> None:
        self.shards[shard_id].stop()

    def stop(self) -> None:
        if self.gateway is not None:
            self.gateway.stop()
        for thread in self.shards.values():
            thread.stop()

    def __enter__(self) -> "FleetTopology":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# -- load generation ---------------------------------------------------------


@dataclass
class LoadGenConfig:
    """One bench-serve campaign."""

    benchmark: str = "adaptec1"
    scale: float = 0.2
    ratio_percent: float = 0.5
    method: str = "sdp"
    workers: int = 0
    exec_backend: str = "pool"
    qps: float = 8.0
    requests: int = 24
    concurrency: int = 8
    warmup: int = 3
    # ECO phase: after warm-up, this many sequential ``/v1/eco`` deltas
    # (worst-k releases) with correctly chained state epochs.  Exercises
    # the incremental path of the resident that the warm phase built.
    eco_rounds: int = 0
    eco_release_k: int = 4
    timeout_seconds: float = 300.0
    verify: bool = False
    url: Optional[str] = None  # None -> spawn an in-process server
    max_queue: int = 32
    max_batch: int = 8
    # Tracing: export the campaign's spans (in-process server only — a
    # --url server records spans in its own process) and link the entry.
    trace_out: Optional[str] = None
    # TCP listener for remote dist workers, passed to the in-process
    # server's engine host (``--exec dist`` requests only).
    dist_listen: Optional[Tuple[str, int]] = None
    dist_authkey: Optional[bytes] = None
    # Fleet mode (``--gateway``): front the campaign with an in-process
    # ``repro gateway`` sharding over ``shards`` resident servers.  After
    # the load phase the signature's owning shard is drained and
    # ``failover_requests`` cache-bypassing probes assert the gateway
    # fails over to a warm successor with the identical digest.
    gateway: bool = False
    shards: int = 2
    failover_requests: int = 2
    cache_capacity: int = 256

    def assign_body(self) -> Dict[str, Any]:
        return AssignRequest(
            benchmark=self.benchmark,
            scale=self.scale,
            ratio_percent=self.ratio_percent,
            method=self.method,
            workers=self.workers,
            exec_backend=self.exec_backend,
        ).to_json()

    def eco_body(self, state_epoch: int) -> Dict[str, Any]:
        body = self.assign_body()
        body["schema"] = ECO_REQUEST_SCHEMA
        body["edits"] = [
            {"op": "release_nets", "worst": self.eco_release_k}
        ]
        body["state_epoch"] = state_epoch
        return body

    @property
    def ledger_method(self) -> str:
        """Serve entries gate only against like-for-like baselines, so the
        dist backend gets its own method label (``serve:sdp+dist``) and
        gateway campaigns their own family (``fleet:sdp``)."""
        suffix = "" if self.exec_backend == "pool" else f"+{self.exec_backend}"
        prefix = "fleet" if self.gateway else "serve"
        return f"{prefix}:{self.method}{suffix}"

    def signature_key(self) -> str:
        """The routing/cache key of the campaign's one problem signature."""
        return AssignRequest.from_json(self.assign_body()).signature_key()


@dataclass
class LoadGenResult:
    """Everything a campaign measured, plus the ledger entry built from it."""

    entry: Dict[str, Any]
    ok: int = 0
    rejected: int = 0
    errors: int = 0
    digests: List[str] = field(default_factory=list)
    verified: Optional[bool] = None

    @property
    def consistent(self) -> bool:
        return len(set(self.digests)) <= 1

    @property
    def passed(self) -> bool:
        return (
            self.ok > 0
            and self.errors == 0
            and self.consistent
            and self.verified is not False
        )


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _parse_url(url: str) -> Tuple[str, int]:
    trimmed = url.strip()
    for prefix in ("http://", "https://"):
        if trimmed.startswith(prefix):
            trimmed = trimmed[len(prefix):]
    trimmed = trimmed.rstrip("/")
    host, _, port_text = trimmed.partition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"--url must look like http://host:port, got {url!r}")
    return host, int(port_text)


async def _campaign(
    cfg: LoadGenConfig, host: str, port: int
) -> Dict[str, Any]:
    """Run the three phases; returns the raw measurement dict."""
    body = cfg.assign_body()

    async def send() -> Tuple[float, int, Any]:
        started = time.monotonic()
        status, payload = await http_request(
            host, port, "POST", "/v1/assign", body,
            timeout=cfg.timeout_seconds,
        )
        return 1000.0 * (time.monotonic() - started), status, payload

    log.info("cold request (engine build) ...")
    cold_ms, cold_status, cold_payload = await send()
    if cold_status != 200:
        raise RuntimeError(
            f"cold request failed with HTTP {cold_status}: {cold_payload}"
        )

    warm_samples: List[float] = []
    warm_payloads: List[Any] = []
    for _ in range(max(cfg.warmup, 1)):
        ms, status, payload = await send()
        if status != 200:
            raise RuntimeError(f"warm request failed with HTTP {status}")
        warm_samples.append(ms)
        warm_payloads.append(payload)

    eco_results: List[Tuple[float, int, Any]] = []
    if cfg.eco_rounds:
        # Sequential on purpose: each round's epoch is the previous
        # round's answer, so this is the protocol a real ECO client runs.
        log.info("eco phase: %d chained deltas ...", cfg.eco_rounds)
        epoch = 0
        for _ in range(cfg.eco_rounds):
            started = time.monotonic()
            status, payload = await http_request(
                host, port, "POST", "/v1/eco", cfg.eco_body(epoch),
                timeout=cfg.timeout_seconds,
            )
            eco_results.append(
                (1000.0 * (time.monotonic() - started), status, payload)
            )
            if status == 200 and isinstance(payload, dict):
                epoch = int(payload.get("state_epoch", epoch + 1))

    log.info(
        "cold %.0fms -> warm %.0fms; starting load phase "
        "(%d requests at %.1f qps, concurrency %d)",
        cold_ms, statistics.median(warm_samples),
        cfg.requests, cfg.qps, cfg.concurrency,
    )

    gate = asyncio.Semaphore(cfg.concurrency)
    results: List[Tuple[float, int, Any]] = []

    async def fire(delay: float) -> None:
        await asyncio.sleep(delay)
        async with gate:
            try:
                results.append(await send())
            except (OSError, asyncio.TimeoutError) as exc:
                results.append((0.0, -1, {"error": {"message": str(exc)}}))

    load_started = time.monotonic()
    interval = 1.0 / cfg.qps if cfg.qps > 0 else 0.0
    await asyncio.gather(
        *(fire(i * interval) for i in range(cfg.requests))
    )
    load_seconds = time.monotonic() - load_started

    return {
        "cold": (cold_ms, cold_payload),
        "warm": (warm_samples, warm_payloads),
        "eco": eco_results,
        "load": results,
        "load_seconds": load_seconds,
    }


def _local_digest(cfg: LoadGenConfig) -> str:
    """Digest of the identical problem solved via the one-shot CLI path."""
    from repro.core.engine import CPLAConfig
    from repro.pipeline import prepare, run_method

    # The verify solve is not a serve request; give it its own trace so a
    # traced campaign still exports a file where every span resolves.
    token = tracer.attach(tracer.TraceContext(tracer.new_trace_id()))
    try:
        with tracer.span("loadgen.verify", benchmark=cfg.benchmark):
            bench = prepare(cfg.benchmark, scale=cfg.scale)
            cpla_config = (
                CPLAConfig(workers=cfg.workers, exec_backend=cfg.exec_backend)
                if cfg.workers and cfg.method in ("sdp", "ilp")
                else None
            )
            run_method(
                bench, cfg.method,
                critical_ratio=cfg.ratio_percent / 100.0,
                cpla_config=cpla_config,
            )
            return assignment_digest(bench)
    finally:
        tracer.detach(token)


async def _failover_probe(
    cfg: LoadGenConfig, host: str, port: int
) -> List[Tuple[float, int, Any]]:
    """Post-kill probes: cache-bypassing assigns that must fail over.

    ``return_assignment=True`` makes the request uncacheable by gateway
    policy, so every probe reaches a shard — a cache hit would prove
    nothing about failover.
    """
    body = cfg.assign_body()
    body["return_assignment"] = True
    probes: List[Tuple[float, int, Any]] = []
    for _ in range(cfg.failover_requests):
        started = time.monotonic()
        status, payload = await http_request(
            host, port, "POST", "/v1/assign", body,
            timeout=cfg.timeout_seconds,
        )
        probes.append(
            (1000.0 * (time.monotonic() - started), status, payload)
        )
    return probes


_FLEET_COUNTERS = (
    "fleet.cache_hits", "fleet.cache_misses", "fleet.cache_invalidations",
    "fleet.failovers", "fleet.failover_requests",
    "fleet.failover_cold_builds", "fleet.replica_seeds",
    "fleet.replica_pushes", "fleet.replica_push_failures",
    "engine.runs",
)


def _counter_snapshot() -> Dict[str, float]:
    from repro.obs import metrics

    counters = metrics.registry().as_dict().get("counters", {})
    return {name: float(counters.get(name, 0)) for name in _FLEET_COUNTERS}


def run_loadgen(cfg: LoadGenConfig) -> LoadGenResult:
    """Execute one campaign and build its ledger entry."""
    server: Optional[ServerThread] = None
    fleet: Optional[FleetTopology] = None
    if cfg.trace_out:
        # Enable before the server (and its engine pools/fabrics, which
        # snapshot the capture flags at startup) comes up.
        tracer.enable()
    counters_before: Optional[Dict[str, float]] = None
    if cfg.url:
        host, port = _parse_url(cfg.url)
    elif cfg.gateway:
        from repro.obs import metrics

        metrics.enable()  # fleet stats come from counter deltas
        counters_before = _counter_snapshot()
        fleet = FleetTopology(
            cfg.shards,
            max_queue=cfg.max_queue,
            max_batch=cfg.max_batch,
            max_workers=max(4, cfg.workers),
            cache_capacity=cfg.cache_capacity,
        ).start()
        host, port = fleet.host, fleet.port
    else:
        server = ServerThread(
            ServeConfig(
                port=0,
                max_queue=cfg.max_queue,
                max_batch=cfg.max_batch,
                max_workers=max(4, cfg.workers),
                dist_listen=cfg.dist_listen,
                dist_authkey=cfg.dist_authkey,
            )
        ).start()
        host, port = server.config.host, server.port  # type: ignore[assignment]
    failover_stats: Optional[Dict[str, Any]] = None
    failover_payloads: List[Any] = []
    try:
        measured = asyncio.run(_campaign(cfg, host, port))
        if fleet is not None and cfg.failover_requests > 0 and cfg.shards > 1:
            victim = fleet.owner_of(cfg.signature_key())
            log.info(
                "failover phase: draining owner shard %r, then %d probes",
                victim, cfg.failover_requests,
            )
            fleet.stop_shard(victim)
            probes = asyncio.run(_failover_probe(cfg, host, port))
            failover_payloads = [p for _, status, p in probes if status == 200]
            failover_stats = {
                "victim": victim,
                "probes": len(probes),
                "ok": len(failover_payloads),
                "failed": len(probes) - len(failover_payloads),
                "latency_ms": {
                    "max": round(max((ms for ms, _, _ in probes), default=0.0), 3),
                },
            }
    finally:
        if server is not None:
            server.stop()
        if fleet is not None:
            fleet.stop()

    trace_info: Optional[Dict[str, Any]] = None
    if cfg.trace_out:
        # The server drained above, so every request span is recorded.
        span_count = tracer.export_jsonl(cfg.trace_out)
        trace_info = {"file": cfg.trace_out, "spans": span_count}
        log.info("exported %d spans to %s", span_count, cfg.trace_out)

    cold_ms, cold_payload = measured["cold"]
    warm_samples, warm_payloads = measured["warm"]
    warm_ms = statistics.median(warm_samples)

    result = LoadGenResult(entry={})
    latencies: List[float] = []
    depths: List[float] = []
    deduped = 0
    slowest: Tuple[float, Optional[str]] = (-1.0, None)
    for ms, status, payload in measured["load"]:
        trace_id = (
            payload.get("trace_id") if isinstance(payload, dict) else None
        )
        if status == 200:
            result.ok += 1
            latencies.append(ms)
            if ms > slowest[0]:
                slowest = (ms, trace_id)
            serving = payload.get("serving", {})
            depths.append(float(serving.get("queue_depth", 0)))
            if serving.get("deduped"):
                deduped += 1
            result.digests.append(payload.get("assignment_digest", ""))
        elif status == 429:
            result.rejected += 1
        else:
            result.errors += 1
    for payload in [cold_payload] + warm_payloads:
        result.digests.append(payload.get("assignment_digest", ""))
    # Failover probe digests join the same consistency pool: a failed-over
    # shard must answer bit-identically to the shard it replaced.
    for payload in failover_payloads:
        if isinstance(payload, dict):
            result.digests.append(payload.get("assignment_digest", ""))
    if failover_stats is not None:
        result.errors += failover_stats["failed"]

    # ECO-phase accounting (digests excluded from the consistency check:
    # every accepted delta legitimately moves the assignment).
    eco_stats: Optional[Dict[str, Any]] = None
    if measured["eco"]:
        eco_ms = [ms for ms, status, _ in measured["eco"] if status == 200]
        eco_ok = len(eco_ms)
        eco_accepted = sum(
            1 for _, status, p in measured["eco"]
            if status == 200 and isinstance(p, dict) and p.get("accepted")
        )
        eco_failed = sum(
            1 for _, status, _ in measured["eco"] if status != 200
        )
        result.errors += eco_failed
        final_epoch = 0
        for _, status, p in measured["eco"]:
            if status == 200 and isinstance(p, dict):
                final_epoch = int(p.get("state_epoch", final_epoch))
        eco_stats = {
            "rounds": len(measured["eco"]),
            "ok": eco_ok,
            "accepted": eco_accepted,
            "failed": eco_failed,
            "final_epoch": final_epoch,
            "latency_ms": {
                "p50": round(_percentile(eco_ms, 0.50), 3),
                "max": round(max(eco_ms), 3) if eco_ms else 0.0,
            },
        }

    # Fleet accounting: counter deltas over the whole campaign.  The
    # gateway, shards, and this thread share one process-wide registry, so
    # ``engine_runs`` vs ``cache_hits`` proves cache hits never reached a
    # solver (every served request is one or the other).
    fleet_stats: Optional[Dict[str, Any]] = None
    if counters_before is not None:
        after = _counter_snapshot()
        delta = {
            name: after[name] - counters_before[name]
            for name in _FLEET_COUNTERS
        }
        lookups = delta["fleet.cache_hits"] + delta["fleet.cache_misses"]
        fleet_stats = {
            "shards": cfg.shards,
            "cache_hits": int(delta["fleet.cache_hits"]),
            "cache_misses": int(delta["fleet.cache_misses"]),
            "cache_hit_rate": (
                round(delta["fleet.cache_hits"] / lookups, 4) if lookups else 0.0
            ),
            "cache_invalidations": int(delta["fleet.cache_invalidations"]),
            "failovers": int(delta["fleet.failovers"]),
            "failover_requests": int(delta["fleet.failover_requests"]),
            "failover_cold_starts": int(delta["fleet.failover_cold_builds"]),
            "replica_seeds": int(delta["fleet.replica_seeds"]),
            "replica_pushes": int(delta["fleet.replica_pushes"]),
            "replica_push_failures": int(delta["fleet.replica_push_failures"]),
            "engine_runs": int(delta["engine.runs"]),
        }
        if failover_stats is not None:
            fleet_stats["failover"] = failover_stats

    if cfg.verify:
        log.info("verifying against an in-process repro run ...")
        local = _local_digest(cfg)
        result.verified = bool(result.digests) and all(
            d == local for d in result.digests
        )

    load_seconds = measured["load_seconds"]
    entry: Dict[str, Any] = {
        "schema": run_ledger.SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "benchmark": cfg.benchmark,
        # Prefixed so serve entries only ever gate against serve baselines.
        "method": cfg.ledger_method,
        "critical_ratio": cfg.ratio_percent / 100.0,
        "fingerprint": run_ledger.fingerprint({
            "benchmark": cfg.benchmark,
            "scale": cfg.scale,
            "ratio_percent": cfg.ratio_percent,
            "method": cfg.method,
            "workers": cfg.workers,
            "exec": cfg.exec_backend,
            "qps": cfg.qps,
            "requests": cfg.requests,
            "concurrency": cfg.concurrency,
        }),
        "quality": dict(cold_payload.get("quality", {})),
        "runtime": {
            "total_seconds": round(load_seconds, 4),
            "phases": {
                k: round(float(v), 4)
                for k, v in cold_payload.get("phases", {}).items()
            },
        },
        "serving": {
            "latency_ms": {
                "p50": round(_percentile(latencies, 0.50), 3),
                "p95": round(_percentile(latencies, 0.95), 3),
                "p99": round(_percentile(latencies, 0.99), 3),
                "mean": round(statistics.fmean(latencies), 3) if latencies else 0.0,
                "max": round(max(latencies), 3) if latencies else 0.0,
            },
            "first_request_ms": round(cold_ms, 3),
            "warm_request_ms": round(warm_ms, 3),
            "warm_speedup": round(cold_ms / warm_ms, 4) if warm_ms else 0.0,
            "throughput_qps": (
                round(result.ok / load_seconds, 3) if load_seconds else 0.0
            ),
            "target_qps": cfg.qps,
            "requests": {
                "sent": cfg.requests,
                "ok": result.ok,
                "rejected_429": result.rejected,
                "errors": result.errors,
                "deduped": deduped,
            },
            "queue_depth": {
                "p50": _percentile(depths, 0.50),
                "p95": _percentile(depths, 0.95),
                "max": max(depths) if depths else 0.0,
            },
            "digest_consistent": result.consistent,
            "verified_against_run": result.verified,
        },
    }
    if eco_stats is not None:
        entry["serving"]["eco"] = eco_stats
    if fleet_stats is not None:
        entry["serving"]["fleet"] = fleet_stats
    # Trace linkage: the slowest load request is the one `obs check`
    # failures most want explained, so it is the entry's primary trace id.
    cold_trace = (
        cold_payload.get("trace_id") if isinstance(cold_payload, dict) else None
    )
    if trace_info is not None or cold_trace is not None:
        entry["trace"] = {
            **(trace_info or {}),
            "trace_id": slowest[1] or cold_trace,
            "cold_trace_id": cold_trace,
            "slowest_ms": round(slowest[0], 3) if slowest[1] else None,
        }
    result.entry = entry
    return result


def render_summary(result: LoadGenResult) -> str:
    """Human-readable campaign report for the CLI."""
    s = result.entry["serving"]
    lat = s["latency_ms"]
    req = s["requests"]
    lines = [
        f"bench-serve {result.entry['benchmark']}/{result.entry['method']}",
        f"  cold {s['first_request_ms']:.0f}ms -> warm "
        f"{s['warm_request_ms']:.0f}ms  (speedup {s['warm_speedup']:.2f}x)",
        f"  load: {req['ok']}/{req['sent']} ok, {req['rejected_429']} "
        f"rejected (429), {req['errors']} errors, {req['deduped']} deduped",
        f"  latency p50/p95/p99: {lat['p50']:.0f}/{lat['p95']:.0f}/"
        f"{lat['p99']:.0f} ms   throughput {s['throughput_qps']:.2f} qps "
        f"(target {s['target_qps']:g})",
        f"  queue depth p50/p95/max: {s['queue_depth']['p50']:g}/"
        f"{s['queue_depth']['p95']:g}/{s['queue_depth']['max']:g}",
        f"  digests consistent: {result.consistent}"
        + (
            f", verified vs repro run: {result.verified}"
            if result.verified is not None else ""
        ),
    ]
    eco = s.get("eco")
    if eco:
        lines.insert(2, (
            f"  eco: {eco['ok']}/{eco['rounds']} ok "
            f"({eco['accepted']} accepted), final epoch {eco['final_epoch']}, "
            f"p50 {eco['latency_ms']['p50']:.0f}ms"
        ))
    fleet = s.get("fleet")
    if fleet:
        lines.append(
            f"  fleet: {fleet['shards']} shards, cache hit rate "
            f"{fleet['cache_hit_rate']:.0%} ({fleet['cache_hits']} hits / "
            f"{fleet['cache_misses']} misses), {fleet['engine_runs']} "
            f"engine runs"
        )
        failover = fleet.get("failover")
        if failover:
            lines.append(
                f"  failover: shard {failover['victim']!r} killed, "
                f"{failover['ok']}/{failover['probes']} probes ok, "
                f"{fleet['failovers']} failovers, "
                f"{fleet['replica_seeds']} warm seeds, "
                f"{fleet['failover_cold_starts']} cold starts"
            )
    trace = result.entry.get("trace")
    if trace and trace.get("trace_id"):
        where = f"  ({trace['file']})" if trace.get("file") else ""
        lines.append(
            f"  slowest-request trace: {trace['trace_id']}{where}"
        )
    return "\n".join(lines)
