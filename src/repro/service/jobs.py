"""Bounded job queue with backpressure, deadlines, and cancellation.

The queue is the server's admission-control point: it accepts at most
``max_depth`` queued jobs, and a full queue rejects the submit immediately
(:class:`QueueFull` -> HTTP 429 with a ``Retry-After`` estimated from the
recent service rate) instead of letting latency grow without bound.

Jobs carry an optional monotonic deadline.  Expired jobs are dropped at
dispatch time — the scheduler never spends engine seconds on a request
whose client has already given up — and their futures complete with
:class:`JobExpired` (HTTP 504).

``get_batch`` is the scheduler's side: it blocks until work is available,
then returns the oldest job *plus every other queued job with the same
dedup key* (up to ``max_batch``).  Equal dedup keys — the signature for
assign requests, signature + epoch + edit digest for ECO requests — are
guaranteed the bit-identical answer, so one engine run serves the whole
batch.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.ispd.request import AssignRequest
from repro.obs import metrics
from repro.obs.tracer import TraceContext

# Queue-depth-at-enqueue histogram buckets (jobs).
DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class QueueFull(Exception):
    """The bounded queue rejected a submit (backpressure)."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(f"job queue is full ({depth} queued)")
        self.depth = depth
        self.retry_after = retry_after


class QueueClosed(Exception):
    """Submit after the server began draining."""


class JobExpired(Exception):
    """The job's deadline passed before an engine picked it up."""


@dataclass
class Job:
    """One queued assign request and its completion future."""

    request: AssignRequest
    future: "asyncio.Future[Dict[str, Any]]"
    enqueued_at: float = field(default_factory=time.monotonic)
    deadline: Optional[float] = None  # monotonic seconds, absolute
    depth_at_enqueue: int = 0
    started_at: Optional[float] = None
    # Request-scoped trace context (trace_id + the HTTP request span id);
    # the scheduler attaches the batch leader's context on the engine
    # thread so the whole solve nests under that request's trace.
    ctx: Optional[TraceContext] = None

    @classmethod
    def create(
        cls,
        request: AssignRequest,
        loop: asyncio.AbstractEventLoop,
        default_deadline_ms: Optional[float] = None,
        ctx: Optional[TraceContext] = None,
    ) -> "Job":
        deadline_ms = request.deadline_ms or default_deadline_ms
        deadline = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        return cls(
            request=request, future=loop.create_future(), deadline=deadline,
            ctx=ctx,
        )

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    def queued_seconds(self, now: Optional[float] = None) -> float:
        return (now or time.monotonic()) - self.enqueued_at


class JobQueue:
    """Bounded FIFO of :class:`Job` with signature-batched dispatch."""

    def __init__(self, max_depth: int = 32) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._jobs: Deque[Job] = deque()
        self._waiter: Optional[asyncio.Future] = None
        self._closed = False
        # Exponentially-smoothed per-job service seconds; seeds the
        # Retry-After estimate before the first completion.
        self._service_estimate = 1.0

    # -- producer side ----------------------------------------------------

    def submit(self, job: Job) -> None:
        """Admit one job or raise :class:`QueueFull` / :class:`QueueClosed`."""
        if self._closed:
            raise QueueClosed("server is draining; not accepting jobs")
        depth = len(self._jobs)
        if depth >= self.max_depth:
            metrics.inc("serve.rejected_full")
            raise QueueFull(depth, self.retry_after())
        job.depth_at_enqueue = depth
        self._jobs.append(job)
        metrics.inc("serve.jobs_submitted")
        metrics.observe("serve.queue_depth", float(depth), DEPTH_BUCKETS)
        self._wake()

    def retry_after(self) -> float:
        """Seconds a 429'd client should wait: time to drain half the queue."""
        return max(1.0, 0.5 * len(self._jobs) * self._service_estimate)

    def record_service_seconds(self, seconds: float) -> None:
        self._service_estimate = 0.7 * self._service_estimate + 0.3 * max(
            seconds, 1e-3
        )

    # -- consumer side ----------------------------------------------------

    async def get_batch(self, max_batch: int = 8) -> Optional[List[Job]]:
        """Next signature-grouped batch; ``None`` once closed and drained.

        Expired jobs are completed with :class:`JobExpired` here rather
        than dispatched.
        """
        while True:
            self._drop_expired()
            if self._jobs:
                return self._pop_batch(max_batch)
            if self._closed:
                return None
            self._waiter = asyncio.get_running_loop().create_future()
            try:
                await self._waiter
            finally:
                self._waiter = None

    def _pop_batch(self, max_batch: int) -> List[Job]:
        leader = self._jobs.popleft()
        batch = [leader]
        if max_batch > 1:
            key = leader.request.dedup_key()
            rest: List[Job] = []
            while self._jobs:
                job = self._jobs.popleft()
                if (
                    len(batch) < max_batch
                    and job.request.dedup_key() == key
                ):
                    batch.append(job)
                else:
                    rest.append(job)
            self._jobs.extend(rest)
        if len(batch) > 1:
            metrics.inc("serve.jobs_deduped", len(batch) - 1)
        return batch

    def _drop_expired(self) -> None:
        if not self._jobs:
            return
        live: Deque[Job] = deque()
        for job in self._jobs:
            if job.expired:
                metrics.inc("serve.jobs_expired")
                if not job.future.done():
                    job.future.set_exception(
                        JobExpired(
                            f"deadline passed after "
                            f"{job.queued_seconds():.2f}s in queue"
                        )
                    )
            else:
                live.append(job)
        self._jobs = live

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; queued jobs still drain through ``get_batch``."""
        self._closed = True
        self._wake()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._jobs)

    def _wake(self) -> None:
        if self._waiter is not None and not self._waiter.done():
            self._waiter.set_result(None)
