"""Shared stdlib-asyncio HTTP/1.1 primitives of the serving tier.

One request per connection, ``Content-Length`` bodies, ``Connection:
close`` — deliberately minimal, because both ends of every hop are ours.
:class:`~repro.service.server.AssignServer` (the shard) and
:class:`~repro.fleet.gateway.Gateway` (the front end) parse and emit
exactly the same bytes through these helpers, which is what makes the
gateway's error passthrough *byte*-compatible: a shard's 429/504/409
body is relayed as the raw blob it arrived as, re-framed by the same
serializer that produced it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

JSON_CONTENT_TYPE = "application/json"
TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HttpError(Exception):
    """A request the server refuses before routing (maps to ``status``)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
    header_timeout_seconds: float,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one request; returns ``(method, path, headers, body)``.

    Header names are lower-cased; the query string is stripped from the
    path.  Raises :class:`HttpError` for anything refusable (the caller
    answers with the error status) and lets connection-level exceptions
    (``IncompleteReadError``, ``TimeoutError``, ...) propagate — those
    mean there is no client left to answer.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=header_timeout_seconds
        )
    except asyncio.LimitOverrunError:
        raise HttpError(413, "headers too large")
    except asyncio.TimeoutError:
        raise HttpError(408, "timed out reading request head")
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    for line in header_lines:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_text!r}")
    if length < 0 or length > max_body_bytes:
        raise HttpError(
            413, f"body of {length} bytes exceeds {max_body_bytes}"
        )
    body = await reader.readexactly(length) if length else b""
    return method, path.split("?", 1)[0], headers, body


def serialize_payload(payload: Any) -> Tuple[bytes, str]:
    """JSON-or-text payload -> ``(body bytes, content type)``."""
    if isinstance(payload, str):
        return payload.encode("utf-8"), TEXT_CONTENT_TYPE
    return (json.dumps(payload) + "\n").encode("utf-8"), JSON_CONTENT_TYPE


async def respond(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    headers: Optional[Dict[str, str]] = None,
) -> None:
    """Serialize and send one response (str -> text, anything else -> JSON)."""
    blob, content_type = serialize_payload(payload)
    await respond_raw(writer, status, blob, content_type, headers)


async def respond_raw(
    writer: asyncio.StreamWriter,
    status: int,
    blob: bytes,
    content_type: str,
    headers: Optional[Dict[str, str]] = None,
) -> None:
    """Send pre-serialized body bytes verbatim (the passthrough path)."""
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(blob)}",
        "Connection: close",
    ]
    for key, value in (headers or {}).items():
        lines.append(f"{key}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + blob)
    try:
        await writer.drain()
    except ConnectionError:  # client went away mid-response
        pass
    writer.close()
