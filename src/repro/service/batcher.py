"""Batch scheduler: queued jobs -> resident engine -> fanned-out results.

A single dispatcher task pulls signature-grouped batches from the
:class:`~repro.service.jobs.JobQueue` and executes them on the
:class:`~repro.service.resident.EngineHost` in one dedicated worker
thread.  The thread keeps the asyncio loop responsive (health checks and
metric scrapes answer while an engine grinds) while serializing engine
access — residents hold process pools and mutable benchmarks, so exactly
one solve runs at a time.

Batching is deduplication: every job in a batch shares the problem
signature, hence the bit-identical answer, so the engine runs **once** and
the response fans out to all of them.  Under a burst of identical
requests the engine cost is amortized across the burst — the serving-layer
analogue of batched inference.

Crash isolation: a solve that raises fails only its batch (each job's
future gets :class:`JobFailed` -> HTTP 500 with a structured error) and
evicts the possibly half-mutated resident; the dispatcher itself never
dies with a job.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.ispd.request import (
    EcoRequest,
    build_eco_response,
    build_response,
    extract_assignment,
)
from repro.obs import metrics, tracer
from repro.service.jobs import Job, JobQueue
from repro.service.resident import EngineHost, StaleEpoch
from repro.utils import get_logger

log = get_logger(__name__)

# Request service-time buckets (seconds): engine runs are seconds-scale.
SERVICE_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


class JobFailed(Exception):
    """The engine raised while serving this job (maps to HTTP 500)."""


class JobConflict(Exception):
    """An ECO job named a stale state epoch (maps to HTTP 409).

    Unlike :class:`JobFailed`, a conflict does *not* evict the resident —
    its state is intact and authoritative; the client's view is what is
    out of date.
    """

    def __init__(self, expected: int, current: int) -> None:
        super().__init__(
            f"stale state_epoch: request targets epoch {expected}, "
            f"resident is at epoch {current}"
        )
        self.expected = expected
        self.current = current


class BatchScheduler:
    """Owns the dispatcher task and the single engine worker thread."""

    def __init__(
        self,
        queue: JobQueue,
        host: EngineHost,
        max_batch: int = 8,
    ) -> None:
        self.queue = queue
        self.host = host
        self.max_batch = max_batch
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="engine"
        )
        self._task: Optional[asyncio.Task] = None
        self.in_flight = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._dispatch_loop(), name="batch-scheduler"
        )

    async def join(self) -> None:
        """Wait until the queue is drained and the dispatcher exited."""
        if self._task is not None:
            await self._task
            self._task = None
        self._executor.shutdown(wait=True)
        self.host.close()

    # -- dispatch ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self.queue.get_batch(self.max_batch)
            if batch is None:
                return
            live = [job for job in batch if not job.future.done()]
            pending = [job for job in live if not job.expired]
            for job in live:
                if job.expired:
                    from repro.service.jobs import JobExpired

                    metrics.inc("serve.jobs_expired")
                    job.future.set_exception(
                        JobExpired("deadline passed while queued")
                    )
            if not pending:
                continue
            self.in_flight = len(pending)
            started = time.monotonic()
            for job in pending:
                job.started_at = started
            want_assignment = any(
                job.request.return_assignment for job in pending
            )
            leader = pending[0]
            try:
                report, digest, assignment, engine_runs, solve_span_id = (
                    await loop.run_in_executor(
                        self._executor,
                        self._solve,
                        leader,
                        want_assignment,
                        len(pending),
                    )
                )
            except StaleEpoch as exc:
                # The resident is fine — only the client's epoch is stale.
                # No eviction; the whole batch (same epoch by dedup key)
                # gets a structured 409.
                log.info(
                    "eco conflict for %s: %s; batch of %d gets 409",
                    leader.request.signature_key(), exc, len(pending),
                )
                metrics.inc("serve.jobs_conflicted", len(pending))
                conflict = JobConflict(exc.expected, exc.current)
                for job in pending:
                    if not job.future.done():
                        job.future.set_exception(conflict)
            except Exception as exc:
                log.warning(
                    "solve failed for %s (%s: %s); batch of %d gets 500",
                    leader.request.signature_key(),
                    type(exc).__name__, exc, len(pending),
                )
                metrics.inc("serve.jobs_failed", len(pending))
                # Poisoned state must not leak into the next request.
                self.host.discard(leader.request)
                failure = JobFailed(f"{type(exc).__name__}: {exc}")
                for job in pending:
                    if not job.future.done():
                        job.future.set_exception(failure)
            else:
                elapsed = time.monotonic() - started
                self.queue.record_service_seconds(elapsed)
                metrics.inc("serve.batches")
                metrics.inc("serve.jobs_served", len(pending))
                metrics.observe(
                    "serve.solve_seconds", elapsed, SERVICE_BUCKETS
                )
                self._fan_out(
                    pending, report, digest, assignment, engine_runs, elapsed,
                    solve_span_id,
                )
            finally:
                self.in_flight = 0

    def _solve(
        self, leader: Job, want_assignment: bool, batch_size: int
    ) -> Tuple[Any, str, Optional[Dict[str, List[int]]], int,
               Optional[str]]:
        """Engine-thread body: resolve the resident and run the batch once.

        An :class:`~repro.ispd.request.EcoRequest` leader applies its edit
        set incrementally (``resident.apply_eco``); anything else is a full
        solve.  The report is a :class:`RunReport` or an ``EcoReport``
        accordingly — ``_fan_out`` picks the matching response builder.

        The batch leader's trace context is attached for the duration, so
        the ``serve.solve`` span (and the whole engine span tree under it)
        nests under the leader's HTTP request span.  Deduped followers get
        a span *link* to this solve's span id instead (see ``_fan_out``).
        """
        ctx = leader.ctx
        token = tracer.attach(ctx) if ctx is not None else None
        try:
            with tracer.span(
                "serve.solve",
                signature=leader.request.signature_key(),
                batch_size=batch_size,
            ) as span:
                resident = self.host.get(leader.request)
                if isinstance(leader.request, EcoRequest):
                    report = resident.apply_eco(leader.request)
                    digest = report.digest
                else:
                    report, digest = resident.solve()
                assignment = (
                    extract_assignment(resident.bench)
                    if want_assignment else None
                )
            return report, digest, assignment, resident.runs, getattr(
                span, "id", None
            )
        finally:
            if ctx is not None:
                tracer.detach(token)

    def _fan_out(
        self,
        jobs: List[Job],
        report: Any,
        digest: str,
        assignment: Optional[Dict[str, List[int]]],
        engine_runs: int,
        elapsed: float,
        solve_span_id: Optional[str] = None,
    ) -> None:
        now = time.monotonic()
        leader = jobs[0]
        leader_trace = leader.ctx.trace_id if leader.ctx is not None else None
        for job in jobs:
            if job.future.done():
                continue
            serving: Dict[str, Any] = {
                "queued_ms": round(
                    1000.0 * ((job.started_at or now) - job.enqueued_at), 3
                ),
                "service_ms": round(1000.0 * elapsed, 3),
                "batch_size": len(jobs),
                "deduped": len(jobs) > 1,
                "queue_depth": job.depth_at_enqueue,
                "engine_runs": engine_runs,
                "warm": engine_runs > 1,
            }
            if job is not leader and job.ctx is not None:
                # The dedup winner ran the engine; followers record a span
                # link into the winning run's trace so their own (otherwise
                # leaf-less) trace points at the spans that did the work.
                serving["link"] = {
                    "trace_id": leader_trace,
                    "span_id": solve_span_id,
                }
                link = tracer.start_span(
                    "serve.dedup",
                    ctx=job.ctx,
                    link_trace_id=leader_trace,
                    link_span_id=solve_span_id,
                )
                if link is not None:
                    link.finish()
            if isinstance(job.request, EcoRequest):
                job.future.set_result(
                    build_eco_response(
                        job.request,
                        report,
                        assignment if job.request.return_assignment else None,
                        serving,
                    )
                )
            else:
                job.future.set_result(
                    build_response(
                        job.request,
                        report,
                        digest,
                        assignment if job.request.return_assignment else None,
                        serving,
                    )
                )
