"""Serving layer: a resident async batch job server over the optimizers.

The one-shot CLI pays process startup, routing, pool spawning, and cold
ADMM starts on every invocation.  This package keeps all of that state
**resident** and serves assignment requests over HTTP:

- :mod:`repro.service.jobs` — bounded job queue with backpressure (429 +
  ``Retry-After``), per-job deadlines, and cancellation of expired work;
- :mod:`repro.service.resident` — prepared benchmarks + warm engines
  (Elmore fingerprint cache, ADMM warm-start ``X`` cache, persistent
  :class:`~repro.core.engine.LeafSolvePool`) cached per problem
  signature in a capacity-bounded LRU;
- :mod:`repro.service.batcher` — single-dispatcher batch scheduler that
  dedups same-signature jobs into one engine run and fans the result out;
- :mod:`repro.service.server` — the asyncio HTTP front (``/v1/assign``,
  ``/v1/eco``, ``/metrics``, ``/healthz``, ``/readyz``, ``/v1/drain``)
  with graceful SIGTERM drain and crash-isolated request handling;
- :mod:`repro.service.loadgen` — the ``repro bench-serve`` load
  generator, which writes ``repro.run_ledger/v1`` entries so serving
  regressions gate in CI exactly like solve regressions.

Serving is exact: a served assignment is bit-identical to the same
problem solved by ``repro run`` (checked by ``bench-serve --verify`` and
the test suite).  See ``docs/SERVING.md``.
"""

from __future__ import annotations

from repro.service.batcher import BatchScheduler, JobConflict, JobFailed
from repro.service.jobs import Job, JobExpired, JobQueue, QueueClosed, QueueFull
from repro.service.loadgen import (
    LoadGenConfig,
    LoadGenResult,
    ServerThread,
    http_request,
    render_summary,
    run_loadgen,
)
from repro.service.resident import EngineHost, ResidentEngine, StaleEpoch
from repro.service.server import AssignServer, ServeConfig, run_server

__all__ = [
    "AssignServer",
    "BatchScheduler",
    "EngineHost",
    "Job",
    "JobConflict",
    "JobExpired",
    "JobFailed",
    "JobQueue",
    "LoadGenConfig",
    "LoadGenResult",
    "QueueClosed",
    "QueueFull",
    "ResidentEngine",
    "ServeConfig",
    "StaleEpoch",
    "ServerThread",
    "http_request",
    "render_summary",
    "run_loadgen",
    "run_server",
]
