"""The incremental CPLA framework (Problem 1 + the iterative scheme).

One engine iteration:

1. refresh Elmore timing of the released (critical) nets — downstream caps
   feed the cost models;
2. release those nets' wires/vias from the grid, so capacities show exactly
   the non-released usage (the "more stringent" incremental capacities);
3. partition the critical segments (K x K + self-adaptive quadtree);
4. per leaf: extract the problem, solve it (SDP relaxation or exact ILP),
   post-map to integer layers — a shared :class:`CapacityLedger` keeps
   leaves from jointly overfilling an edge;
5. commit the nets back and re-evaluate ``(Avg(Tcp), Max(Tcp))``; keep the
   result if it improved, otherwise roll back and stop — the paper's
   "stops when no further optimizations can be achieved".

Sequential solving updates boundary layers leaf by leaf (Gauss–Seidel, the
behaviour ref. [12] of the paper motivates); with ``workers > 1`` leaves are
solved from a common snapshot in a process pool (Jacobi), mirroring the
paper's OpenMP parallelism.
"""

from __future__ import annotations

import atexit
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.runreport import IterationStats, RunReport
from repro.batchsolve.solver import BatchLeafSolver
from repro.dist.fabric import DistFabric, DistFabricConfig, task_cost
from repro.obs import collect, convergence, metrics, tracer
from repro.core.ilp import IlpConfig, IlpPartitionSolver
from repro.core.mapping import CapacityLedger, post_map
from repro.core.partition import self_adaptive_partition
from repro.core.problem import SegKey, extract_partition_problem
from repro.core.sdp_relaxation import SdpPartitionSolver, SdpRelaxationConfig
from repro.ispd.benchmark import Benchmark
from repro.route.net import Net
from repro.route.occupancy import commit_net, release_net
from repro.timing.critical import (
    CriticalitySelector,
    critical_path_stats,
    pin_delay_distribution,
)
from repro.timing.elmore import ElmoreEngine, TimingConfig
from repro.utils import WallClock, get_logger

log = get_logger(__name__)

_REL_TOL = 1e-9

# Per-leaf solve latency buckets (seconds) — leaves are small problems.
_LEAF_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0)


def _solve_leaf_task(solver, capture_telemetry, problem, warm=None, trace=None):
    """One leaf solve with its telemetry in the payload.

    The worker's wall-clock phases are always measured and returned —
    without this every second spent inside Jacobi-mode workers was
    invisible to the parent report; spans/metrics/convergence records ride
    along when their subsystems are enabled.  ``capture_telemetry`` is the
    ``(tracing, metrics, convergence)`` flag tuple observed in the parent
    at pool creation, so workers arm exactly what the parent collects.

    ``warm`` is the parent-owned warm-start state for this partition (see
    ``SdpPartitionSolver.import_warm``): it overwrites whatever the
    worker-resident solver remembers, so the solve is a pure function of
    ``(problem, warm)`` and the result cannot depend on which worker —
    or which retry attempt — executes the task.  The post-solve state is
    returned so the parent can advance its authoritative store.

    ``trace`` is the parent's trace context wire dict, attached after the
    observability reset so the worker's ``engine.leaf`` span parents under
    the parent-process span that scheduled it.
    """
    if any(capture_telemetry):
        collect.init_worker_observability(*capture_telemetry)
    if trace is not None and tracer.is_enabled():
        tracer.attach(tracer.TraceContext.from_dict(trace))
    managed = hasattr(solver, "import_warm") and hasattr(solver, "export_warm")
    if managed:
        solver.import_warm(problem, warm)
    clock = WallClock()
    with clock.phase("solve"):
        with tracer.span(
            "engine.leaf", segments=problem.num_vars, worker=True
        ):
            result = solver.solve(problem)
    telemetry = collect.capture_worker_telemetry(clock)
    return result, telemetry, (solver.export_warm(problem) if managed else None)


# Worker-process state installed once by the pool initializer, so each task
# ships only its problem — not a fresh pickle of the whole solver.
_POOL_SOLVER = None
_POOL_CAPTURE = (False, False, False)


def _pool_initializer(solver, capture_telemetry) -> None:
    """Runs once in every worker of the persistent leaf-solve pool."""
    global _POOL_SOLVER, _POOL_CAPTURE
    _POOL_SOLVER = solver
    _POOL_CAPTURE = capture_telemetry


def _solve_pooled_leaf(payload):
    """Pool-task entry point: solve one leaf with the worker-resident solver."""
    problem, warm, trace = payload
    return _solve_leaf_task(_POOL_SOLVER, _POOL_CAPTURE, problem, warm, trace)


# Every live pool, so one atexit hook can reap executors that callers
# forgot to close.  A leaked ProcessPoolExecutor otherwise blocks
# interpreter shutdown in concurrent.futures' own exit handler — fatal for
# a long-lived server process that constructs engines per request.
_LIVE_POOLS: "weakref.WeakSet[LeafSolvePool]" = weakref.WeakSet()


@atexit.register
def _close_leaked_pools() -> None:  # pragma: no cover - exit-time guard
    for pool in list(_LIVE_POOLS):
        pool.close()


class LeafSolvePool:
    """Lifecycle manager of the persistent leaf-solve process pool.

    The previous implementation built a fresh ``ProcessPoolExecutor`` for
    every Jacobi pass and re-pickled the solver with every task.  This
    manager creates the pool once (lazily, on the first parallel solve)
    and ships the solver to each worker through the pool initializer.  The
    authoritative SDP warm-start store lives on the *parent's* solver:
    each task carries its partition's warm state and returns the updated
    state, which keeps warm starting effective across engine iterations
    and back-to-back engine runs while making every solve a pure function
    of its task — scheduling cannot affect the assignment.  Pool
    persistence is what lets a resident server skip process spawning per
    request.

    Any pool failure (creation, task pickling, a died worker) permanently
    downgrades the pool: :meth:`map` returns ``None``, the caller solves
    sequentially, and the failure is logged and counted in the
    ``engine.pool_failures`` metric.

    Pools are context managers, expose :meth:`close`, and are tracked in a
    module-level registry with an ``atexit`` guard, so repeatedly
    constructing engines in one process (as the job server does) cannot
    leak executors even on sloppy teardown.
    """

    def __init__(self, workers: int, solver) -> None:
        self.workers = workers
        self._solver = solver
        self._pool: Optional[ProcessPoolExecutor] = None
        self._broken = False
        _LIVE_POOLS.add(self)

    def map(self, problems, leaf_mask=None) -> Optional[list]:
        """Solve the leaf problems in the pool; ``None`` means "do it yourself".

        ``leaf_mask`` (a list of indices into ``problems``) restricts the
        solve to a sparse leaf subset without rebuilding the task list —
        the ECO path extracts only its dirty leaves (the rest may be
        ``None`` placeholders) and masked-out positions come back as
        ``None`` in the result list.
        """
        if self._broken or not problems:
            return None if self._broken else []
        indices = list(range(len(problems))) if leaf_mask is None \
            else list(leaf_mask)
        if not indices:
            return [None] * len(problems)
        try:
            if self._pool is None:
                capture = (
                    tracer.is_enabled(),
                    metrics.is_enabled(),
                    convergence.is_enabled(),
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_initializer,
                    initargs=(self._solver, capture),
                )
            # Largest-first with chunksize 1: the old static chunking
            # (``chunksize=max(1, len // (workers * 4))``) dealt contiguous
            # blocks, so with few leaves one worker could serialize several
            # big ones while others idled.  Scheduling the costliest leaves
            # first, one at a time, bounds the tail by a single leaf.
            # Results are re-ordered back to input order.  Each task ships
            # the parent solver's warm-start state for its partition, so a
            # solve is a pure function of the task — the permutation (and
            # which worker picks which task) cannot change any result.
            managed = hasattr(self._solver, "export_warm") and hasattr(
                self._solver, "import_warm"
            )
            order = sorted(
                indices,
                key=lambda i: (-task_cost(problems[i]), i),
            )
            ctx = tracer.current_context()
            trace = ctx.to_dict() if ctx is not None else None
            payloads = [
                (
                    problems[i],
                    self._solver.export_warm(problems[i]) if managed else None,
                    trace,
                )
                for i in order
            ]
            solved = list(
                self._pool.map(_solve_pooled_leaf, payloads, chunksize=1)
            )
            results: list = [None] * len(problems)
            for position, index in enumerate(order):
                results[index] = solved[position]
            # Advance the authoritative warm store in task order, then
            # strip the warm state from what the engine consumes.
            if managed:
                for index in sorted(indices):
                    _, _, new_warm = results[index]
                    self._solver.import_warm(problems[index], new_warm)
            return [
                (entry[0], entry[1]) if entry is not None else None
                for entry in results
            ]
        except Exception as exc:
            log.warning(
                "leaf-solve pool failed (%s: %s); continuing with sequential solves",
                type(exc).__name__, exc,
            )
            metrics.inc("engine.pool_failures")
            self._broken = True
            self.shutdown()
            return None

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort teardown
                log.debug("pool shutdown failed", exc_info=True)

    # ``close`` is the lifecycle-idiomatic spelling; ``shutdown`` stays for
    # existing callers.
    def close(self) -> None:
        self.shutdown()

    def __enter__(self) -> "LeafSolvePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _is_improvement(
    obj: Tuple[float, float], best: Tuple[float, float], max_first: bool = False
) -> bool:
    """Lexicographic improvement of (Avg, Max) — or (Max, Avg) — Tcp."""
    if max_first:
        obj = (obj[1], obj[0])
        best = (best[1], best[0])
    first, second = obj
    best_first, best_second = best
    if first < best_first * (1 - _REL_TOL):
        return True
    if first <= best_first * (1 + _REL_TOL) and second < best_second * (1 - _REL_TOL):
        return True
    return False


@dataclass
class CPLAConfig:
    """Configuration of the incremental framework."""

    method: str = "sdp"  # "sdp" or "ilp"
    critical_ratio: float = 0.005
    k_division: int = 5
    max_segments_per_partition: int = 10
    max_iterations: int = 4
    via_penalty_weight: float = 1.0
    mapping_mode: str = "paper"
    mapping_refine_passes: int = 2
    # Critical-path emphasis: a net's segments are weighted by
    # (Tcp_net / Tcp_worst) ** criticality_exponent, and segments off the
    # net's own critical path further scaled by branch_weight.  This is the
    # "worst path, not total delay" focus distinguishing CPLA from TILA;
    # exponent 0 recovers the plain sum of (4a) (ablated in the benches).
    criticality_exponent: float = 2.0
    branch_weight: float = 0.5
    # After Avg(Tcp) stalls, a short second phase chases the worst path:
    # weights sharpen to max_phase_exponent and iterations are accepted on
    # (Max, Avg) ordering — Problem 1 asks for the *maximum* path timing.
    max_phase_iterations: int = 2
    max_phase_exponent: float = 8.0
    max_phase_avg_slack: float = 0.02  # max Avg(Tcp) regression tolerated
    # Final selection: among every state visited (including the initial
    # one), the engine keeps the smallest Max(Tcp) whose Avg(Tcp) is within
    # this slack of the best average seen — Problem 1 minimizes the worst
    # path of *each* net, so a marginal average gain must not buy a worse
    # worst path.
    final_selection_avg_slack: float = 0.02
    # Track reservation: nets whose Tcp is within this fraction of the worst
    # keep their current tracks reserved in the capacity ledger until their
    # own partition is mapped, so less-critical leaves mapped earlier cannot
    # steal the fast layers out from under the worst paths ("the segments
    # leading to critical sinks are preferred", Section 1).
    protect_fraction: float = 0.9
    leaf_order: str = "spatial"  # or "criticality": hottest partitions first
    workers: int = 0
    # Execution backend of the leaf solves:
    # - "pool": the persistent ProcessPoolExecutor (needs workers > 1);
    # - "dist": the coordinator/worker solve fabric (dynamic largest-first
    #   scheduling, work stealing, crash/timeout retry — see repro.dist);
    # - "batch": in-process vectorized ADMM over shape-bucketed stacks
    #   (repro.batchsolve; sdp method only, --workers is meaningless);
    # - "seq": in-process one-at-a-time solves of the same common snapshot
    #   (the single-threaded reference of the family).
    # All four are Jacobi solves from a common snapshot and produce
    # bit-identical assignments at any worker count.  (Plain "pool" with
    # workers <= 1 keeps the historical Gauss-Seidel sequential path,
    # which legitimately differs — boundary layers update leaf by leaf.)
    exec_backend: str = "pool"
    # Batched backend: cap on members stacked per kernel call (memory).
    batch_max_members: int = 64
    dist: Optional[DistFabricConfig] = None
    sdp: SdpRelaxationConfig = field(default_factory=SdpRelaxationConfig)
    ilp: IlpConfig = field(default_factory=IlpConfig)

    def __post_init__(self) -> None:
        if self.method not in ("sdp", "ilp"):
            raise ValueError(f"unknown method {self.method!r}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0 < self.critical_ratio <= 1:
            raise ValueError("critical_ratio must be a fraction in (0, 1]")
        if self.leaf_order not in ("spatial", "criticality"):
            raise ValueError(f"unknown leaf_order {self.leaf_order!r}")
        if self.exec_backend not in ("pool", "dist", "batch", "seq"):
            raise ValueError(f"unknown exec_backend {self.exec_backend!r}")
        if self.exec_backend == "batch" and self.method != "sdp":
            raise ValueError(
                "exec_backend 'batch' requires method 'sdp' "
                "(the ILP solver has no batched kernels)"
            )
        if self.batch_max_members < 1:
            raise ValueError("batch_max_members must be >= 1")


# The report type is shared with the TILA baseline so the evaluation
# harness tabulates both methods uniformly.
CPLAReport = RunReport


class CPLAEngine:
    """Runs critical-path layer assignment on a routed, assigned benchmark."""

    def __init__(
        self,
        benchmark: Benchmark,
        config: Optional[CPLAConfig] = None,
        timing_config: Optional[TimingConfig] = None,
    ) -> None:
        self.bench = benchmark
        self.grid = benchmark.grid
        self.config = config or CPLAConfig()
        self.elmore = ElmoreEngine(benchmark.stack, timing_config)
        self.selector = CriticalitySelector(self.elmore)
        if self.config.method == "sdp":
            self._solver = SdpPartitionSolver(self.config.sdp)
        else:
            if self.config.exec_backend == "batch":
                # Re-checked here because callers (the benchmark pipeline's
                # run_method) may swap config.method after construction of
                # the config object.
                raise ValueError(
                    "exec_backend 'batch' requires method 'sdp' "
                    "(the ILP solver has no batched kernels)"
                )
            self._solver = IlpPartitionSolver(self.config.ilp, grid=self.grid)
        self._worker_clock = WallClock()
        # Either a LeafSolvePool or a DistFabric — both satisfy the same
        # map()/close() contract (config.exec_backend picks which).
        self._pool = None
        self._iter_index = 0
        # Populated by ECO-restricted iterations (see eco_iterate): how many
        # leaves the dirtiness propagator actually re-solved.
        self.last_eco: Optional[Dict[str, float]] = None

    # -- public API -------------------------------------------------------

    def run(self) -> CPLAReport:
        """One full optimization pass; safe to call repeatedly.

        The engine is reusable: the leaf-solve pool and the solver's
        warm-start caches survive between calls (that reuse is
        deterministic — a warm rerun produces the bit-identical assignment
        a fresh engine would, see tests/test_engine_reuse.py), so a
        resident server can run back-to-back requests without paying pool
        spawning or cold ADMM starts again.  Call :meth:`close` (or use
        the engine as a context manager) when done with it.
        """
        with tracer.span(
            "engine.run", benchmark=self.bench.name, method=self.config.method
        ):
            report = self._run()
        if metrics.is_enabled():
            report.metrics = metrics.registry().as_dict()
        if convergence.is_enabled():
            report.convergence = convergence.snapshot()
        # The dist fabric and the batched backend both publish scheduler
        # counters; the plain process pool has none.
        if self._pool is not None and hasattr(self._pool, "stats_snapshot"):
            report.scheduler = self._pool.stats_snapshot()
        router_stats = getattr(self.bench, "router_stats", None)
        if router_stats:
            report.router = dict(router_stats)
        return report

    def close(self) -> None:
        """Release the leaf-solve pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "CPLAEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def snapshot_layers(self) -> Dict[SegKey, int]:
        """Layer assignment of *every* net (not just the released set).

        Together with :meth:`restore_layers` this lets a caller checkpoint
        the post-``prepare`` state and rewind to it between runs — the
        resident serving layer rewinds the shared benchmark instead of
        re-routing it for every request.
        """
        return self._snapshot_layers(self.bench.nets)

    def restore_layers(self, layers: Dict[SegKey, int]) -> None:
        """Rewind every net to a :meth:`snapshot_layers` checkpoint.

        Grid occupancy is kept consistent by releasing and re-committing
        each net, and the timing cache is invalidated for all of them.
        """
        self._restore_layers(self.bench.nets, layers)

    def export_warm_store(self) -> Optional[Dict]:
        """The solver's whole warm-start store, or None if it has none.

        Fleet replication (:mod:`repro.fleet.replica`) ships this to the
        ring successor so a failed-over shard resumes with the owner's
        ADMM warm starts; warm == fresh is bit-identical, so only latency
        changes.
        """
        if hasattr(self._solver, "export_warm_store"):
            return self._solver.export_warm_store()
        return None

    def import_warm_store(self, store: Optional[Dict]) -> None:
        """Merge a replicated warm store into the solver's (no-op if N/A)."""
        if store and hasattr(self._solver, "import_warm_store"):
            self._solver.import_warm_store(store)

    def eco_iterate(
        self,
        released: Sequence[Net],
        dirty_keys,
        clock: WallClock,
        max_first: bool = False,
    ) -> IterationStats:
        """One restricted ECO pass: re-solve only leaves dirtied by an edit.

        ``released`` is the full working set — partition geometry, timing
        weights and objective statistics are computed over all of it
        exactly as a full iteration would, so the restricted pass sees
        the same leaf boundaries.  ``dirty_keys`` is the set of
        ``(net_id, segment_id)`` keys the edit propagation marked dirty;
        only the leaves containing at least one are extracted and
        solved, clean leaves keep their layers (and their tracks stay
        consumed in the shared capacity ledger).  ``max_first`` sharpens
        the criticality weights onto the worst paths — the closure
        loop's acceptance is max-first.  Dirtiness statistics land in
        :attr:`last_eco`.
        """
        self._iter_index += 1
        exponent = (
            self.config.max_phase_exponent if max_first else None
        )
        return self._iterate(
            self._iter_index, list(released), clock, exponent,
            dirty_keys=set(dirty_keys),
        )

    def _run(self) -> CPLAReport:
        cfg = self.config
        report = RunReport(
            benchmark=self.bench.name,
            method=cfg.method,
            critical_ratio=cfg.critical_ratio,
        )
        clock = report.clock
        self._worker_clock = report.worker_clock

        with clock.phase("timing"):
            critical, timings = self.selector.select(self.bench.nets, cfg.critical_ratio)
        report.critical_net_ids = [n.id for n in critical]
        report.initial_avg_tcp, report.initial_max_tcp = critical_path_stats(
            timings, critical
        )
        report.initial_pin_delays = pin_delay_distribution(timings, critical)
        report.initial_via_overflow = self.grid.total_via_overflow()
        report.initial_vias = self.grid.total_vias()

        best_layers = self._snapshot_layers(critical)
        best_obj = (report.initial_avg_tcp, report.initial_max_tcp)
        visited = [(report.initial_avg_tcp, report.initial_max_tcp, best_layers)]

        # Phase 1 drives Avg(Tcp) down; once it stalls, phase 2 sharpens the
        # weights onto the worst nets and accepts on Max(Tcp) first.
        phases = [
            (cfg.max_iterations, cfg.criticality_exponent, False),
            (cfg.max_phase_iterations, cfg.max_phase_exponent, True),
        ]
        it = 0
        for phase_iters, exponent, max_first in phases:
            for _ in range(phase_iters):
                subset = None
                segment_limit = None
                k_div = None
                if max_first:
                    # Max phase: re-optimize only the near-worst nets as a
                    # handful of large joint blocks (K = 1, 4x segment
                    # limit), so a long critical path is one problem rather
                    # than frozen-boundary fragments.
                    with clock.phase("timing"):
                        current = self.elmore.analyze_all(critical)
                    worst = max(
                        current[n.id].critical_delay for n in critical
                    )
                    subset = [
                        n for n in critical
                        if current[n.id].critical_delay
                        >= cfg.protect_fraction * worst
                    ]
                    segment_limit = 4 * cfg.max_segments_per_partition
                    k_div = 1
                stats = self._iterate(
                    it, critical, clock, exponent, subset, segment_limit, k_div
                )
                it += 1
                visited.append(
                    (stats.avg_tcp, stats.max_tcp, self._snapshot_layers(critical))
                )
                improved = _is_improvement(
                    (stats.avg_tcp, stats.max_tcp), best_obj, max_first
                )
                if max_first and improved:
                    # A shorter worst path must not cost the average much.
                    improved = stats.avg_tcp <= best_obj[0] * (
                        1 + cfg.max_phase_avg_slack
                    )
                stats.accepted = improved
                report.iterations.append(stats)
                metrics.inc("engine.iterations")
                if improved:
                    metrics.inc("engine.iterations_accepted")
                if improved:
                    best_obj = (stats.avg_tcp, stats.max_tcp)
                    best_layers = self._snapshot_layers(critical)
                else:
                    with clock.phase("rollback"):
                        self._restore_layers(critical, best_layers)
                    break

        # Final selection over every visited state: smallest Max(Tcp) whose
        # Avg(Tcp) stays within the slack of the best average.
        min_avg = min(v[0] for v in visited)
        candidates = [
            v for v in visited
            if v[0] <= min_avg * (1 + cfg.final_selection_avg_slack)
        ]
        chosen = min(candidates, key=lambda v: (v[1], v[0]))
        if chosen[2] != best_layers:
            with clock.phase("rollback"):
                self._restore_layers(critical, chosen[2])

        with clock.phase("timing"):
            final_timings = self.elmore.analyze_all(critical)
        report.final_avg_tcp, report.final_max_tcp = critical_path_stats(
            final_timings, critical
        )
        report.final_pin_delays = pin_delay_distribution(final_timings, critical)
        report.final_via_overflow = self.grid.total_via_overflow()
        report.final_vias = self.grid.total_vias()
        log.info(
            "%s/%s: Avg(Tcp) %.1f -> %.1f (%.1f%%), Max(Tcp) %.1f -> %.1f, %.2fs",
            self.bench.name, cfg.method,
            report.initial_avg_tcp, report.final_avg_tcp,
            100 * report.avg_improvement,
            report.initial_max_tcp, report.final_max_tcp,
            report.runtime,
        )
        return report

    # -- one iteration ------------------------------------------------------

    def _iterate(
        self,
        index: int,
        critical: Sequence[Net],
        clock: WallClock,
        exponent: Optional[float] = None,
        subset: Optional[Sequence[Net]] = None,
        segment_limit: Optional[int] = None,
        k_division: Optional[int] = None,
        dirty_keys: Optional[set] = None,
    ) -> IterationStats:
        with tracer.span("engine.iteration", index=index):
            return self._iterate_inner(
                index, critical, clock, exponent, subset, segment_limit,
                k_division, dirty_keys,
            )

    def _iterate_inner(
        self,
        index: int,
        critical: Sequence[Net],
        clock: WallClock,
        exponent: Optional[float] = None,
        subset: Optional[Sequence[Net]] = None,
        segment_limit: Optional[int] = None,
        k_division: Optional[int] = None,
        dirty_keys: Optional[set] = None,
    ) -> IterationStats:
        """One release -> partition -> solve -> map -> commit pass.

        ``subset`` restricts the nets actually re-optimized (the max phase
        passes the near-worst nets only; everything else stays committed and
        acts as fixed boundary/capacity).  Objective statistics are always
        computed over the full released set.

        ``dirty_keys`` (ECO mode) restricts the *leaves* actually solved:
        the partition geometry is built over every released segment exactly
        as a full pass would, but only leaves containing a dirty segment
        key are extracted and solved.  Clean leaves keep their current
        layers, and their current tracks are consumed in the shared
        capacity ledger up front so dirty leaves cannot overfill the edges
        pinned segments still occupy.
        """
        cfg = self.config
        active = list(subset) if subset is not None else list(critical)
        nets_by_id = {n.id: n for n in active}
        limit = segment_limit or cfg.max_segments_per_partition
        self._iter_index = index  # partition-attribution records carry it

        with clock.phase("timing"):
            timings = self.elmore.analyze_all(critical)
        weights = self._criticality_weights(active, timings, exponent)

        with clock.phase("release"):
            for net in active:
                release_net(self.grid, net.topology)

        with clock.phase("partition"):
            keyed = [
                ((net.id, seg.id), seg)
                for net in active
                for seg in net.topology.segments
            ]
            leaves = self_adaptive_partition(
                self.grid.nx_tiles,
                self.grid.ny_tiles,
                keyed,
                k_division or cfg.k_division,
                limit,
            )
            if cfg.leaf_order == "criticality":
                # Hottest partitions claim contended tracks first (the
                # capacity ledger is first-come-first-served).
                leaves.sort(
                    key=lambda leaf: -max(weights.get(k, 1.0) for k in leaf[1])
                )

        metrics.inc("engine.partitions", len(leaves))
        ledger = CapacityLedger(self.grid)
        reserved = self._reserve_protected_tracks(active, timings, ledger)
        mask = None
        if dirty_keys is not None:
            mask = [
                i for i, (_, keys) in enumerate(leaves)
                if any(k in dirty_keys for k in keys)
            ]
            self.last_eco = {
                "num_leaves": len(leaves),
                "dirty_leaves": len(mask),
                "dirty_fraction": (
                    len(mask) / len(leaves) if leaves else 0.0
                ),
                "dirty_segments": sum(
                    1 for _, keys in leaves for k in keys if k in dirty_keys
                ),
                "num_segments": len(keyed),
            }
            metrics.inc("engine.eco_dirty_leaves", len(mask))
            metrics.inc("engine.eco_clean_leaves", len(leaves) - len(mask))
            self._pin_clean_leaves(leaves, mask, nets_by_id, ledger, reserved)
        if cfg.exec_backend == "batch":
            self._solve_batched(
                leaves, nets_by_id, timings, weights, ledger, reserved, clock,
                mask,
            )
        elif cfg.exec_backend == "seq":
            self._solve_jacobi(
                leaves, nets_by_id, timings, weights, ledger, reserved, clock,
                mask,
            )
        elif cfg.workers and cfg.workers > 1:
            self._solve_parallel(
                leaves, nets_by_id, timings, weights, ledger, reserved, clock,
                mask,
            )
        else:
            self._solve_sequential(
                leaves, nets_by_id, timings, weights, ledger, reserved, clock,
                mask,
            )

        with clock.phase("commit"):
            for net in active:
                commit_net(self.grid, net.topology)

        metrics.inc("ledger.overflow_events", ledger.overflow_events)
        with clock.phase("timing"):
            new_timings = self.elmore.analyze_all(critical)
        avg, mx = critical_path_stats(new_timings, critical)
        return IterationStats(
            index=index,
            num_partitions=len(leaves),
            num_segments=sum(len(keys) for _, keys in leaves),
            avg_tcp=avg,
            max_tcp=mx,
            accepted=False,
        )

    def _criticality_weights(
        self, critical, timings, exponent: Optional[float] = None
    ) -> Dict[SegKey, float]:
        """Per-segment timing weights emphasizing the worst paths."""
        cfg = self.config
        if exponent is None:
            exponent = cfg.criticality_exponent
        worst = max(
            (timings[n.id].critical_delay for n in critical), default=0.0
        )
        weights: Dict[SegKey, float] = {}
        if worst <= 0:
            return weights
        for net in critical:
            timing = timings[net.id]
            net_w = (timing.critical_delay / worst) ** exponent
            on_path = set(timing.critical_path_segments(net.topology))
            for seg in net.topology.segments:
                seg_w = net_w if seg.id in on_path else net_w * cfg.branch_weight
                weights[(net.id, seg.id)] = seg_w
        return weights

    def _reserve_protected_tracks(
        self, critical, timings, ledger: CapacityLedger
    ) -> Dict[SegKey, Tuple]:
        """Pre-consume the current tracks of near-worst nets in the ledger.

        Returns the reservations (key -> (edges, layer)); each is released
        just before its segment's own partition is mapped, so a protected
        net can always at least reclaim its previous assignment.
        """
        cfg = self.config
        worst = max(
            (timings[n.id].critical_delay for n in critical), default=0.0
        )
        if worst <= 0 or cfg.protect_fraction >= 1.0:
            return {}
        reserved: Dict[SegKey, Tuple] = {}
        for net in critical:
            if timings[net.id].critical_delay < cfg.protect_fraction * worst:
                continue
            for seg in net.topology.segments:
                edges = seg.edges()
                if edges:
                    ledger.consume(edges, seg.layer)
                    reserved[(net.id, seg.id)] = (edges, seg.layer)
        return reserved

    def _pin_clean_leaves(
        self, leaves, mask, nets_by_id, ledger, reserved
    ) -> None:
        """Consume clean leaves' current tracks in the capacity ledger.

        ECO mode only: leaves without a dirty segment keep their layers,
        so their track usage must be visible to the dirty leaves sharing
        the first-come-first-served ledger.  Keys the protection pass
        already reserved are skipped — those tracks are consumed once
        and (since a pinned segment's partition is never mapped) never
        released, which is exactly "keep your current assignment".
        """
        masked = set(mask)
        for leaf_index, (_, keys) in enumerate(leaves):
            if leaf_index in masked:
                continue
            for key in keys:
                if key in reserved:
                    continue
                net_id, sid = key
                seg = nets_by_id[net_id].topology.segments[sid]
                edges = seg.edges()
                if edges:
                    ledger.consume(edges, seg.layer)

    def _solve_sequential(
        self, leaves, nets_by_id, timings, weights, ledger, reserved, clock,
        mask=None,
    ) -> None:
        masked = set(mask) if mask is not None else None
        for leaf_index, (_, keys) in enumerate(leaves):
            if masked is not None and leaf_index not in masked:
                continue
            with clock.phase("extract"):
                problem = extract_partition_problem(
                    self.grid, self.elmore, nets_by_id, timings, keys,
                    self.config.via_penalty_weight, weights,
                )
            with clock.phase("solve") as timer:
                with tracer.span("engine.leaf", segments=problem.num_vars):
                    x_values, info = self._solver.solve(problem)
            metrics.inc("engine.leaves")
            metrics.observe("engine.leaf_solve_seconds", timer.elapsed, _LEAF_BUCKETS)
            overflow = self._map_and_apply(
                problem, x_values, ledger, reserved, nets_by_id, clock
            )
            if convergence.is_enabled():
                self._record_partition(
                    leaf_index, problem, info, timer.elapsed, overflow, timings
                )

    def _extract_leaves(self, leaves, nets_by_id, timings, weights, mask):
        """Extract partition problems; ``None`` placeholders off-mask.

        With no mask every leaf is extracted (the full-iteration path);
        with a mask only dirty leaves pay extraction, keeping the list
        index-aligned with ``leaves`` for the backends' ``leaf_mask``.
        """
        masked = set(mask) if mask is not None else None
        return [
            extract_partition_problem(
                self.grid, self.elmore, nets_by_id, timings, keys,
                self.config.via_penalty_weight, weights,
            )
            if masked is None or index in masked else None
            for index, (_, keys) in enumerate(leaves)
        ]

    def _solve_parallel(
        self, leaves, nets_by_id, timings, weights, ledger, reserved, clock,
        mask=None,
    ) -> None:
        with clock.phase("extract"):
            problems = self._extract_leaves(
                leaves, nets_by_id, timings, weights, mask
            )
        if self._pool is None:
            if self.config.exec_backend == "dist":
                self._pool = DistFabric(
                    self.config.workers, self._solver, self.config.dist
                )
            else:
                self._pool = LeafSolvePool(self.config.workers, self._solver)
        parent_ctx = tracer.current_context()
        parent_span = parent_ctx.span_id if parent_ctx is not None else None
        parent_trace = parent_ctx.trace_id if parent_ctx is not None else None
        with clock.phase("solve"):
            results = self._pool.map(problems, leaf_mask=mask)
        if results is None:
            # Pool failed (logged + counted by LeafSolvePool): solve the
            # already-extracted problems inline from the same snapshot —
            # identical Jacobi semantics, just without the parallelism.
            self._solve_fallback(problems, nets_by_id, ledger, reserved, clock, timings)
            return
        for leaf_index, (problem, entry) in enumerate(zip(problems, results)):
            if problem is None or entry is None:
                continue
            (x_values, info), telemetry = entry
            metrics.inc("engine.leaves")
            leaf_seconds = telemetry.phases.get("solve", 0.0)
            metrics.observe("engine.leaf_solve_seconds", leaf_seconds, _LEAF_BUCKETS)
            collect.merge_worker_telemetry(
                telemetry, self._worker_clock, parent_span, parent_trace
            )
            overflow = self._map_and_apply(
                problem, x_values, ledger, reserved, nets_by_id, clock
            )
            if convergence.is_enabled():
                self._record_partition(
                    leaf_index, problem, info, leaf_seconds, overflow, timings
                )

    def _solve_batched(
        self, leaves, nets_by_id, timings, weights, ledger, reserved, clock,
        mask=None,
    ) -> None:
        """Vectorized in-process Jacobi solve (``exec_backend='batch'``).

        Extracts every leaf from the common snapshot (same as the parallel
        path) and hands the whole batch to the
        :class:`~repro.batchsolve.solver.BatchLeafSolver`, which buckets
        the SDPs by shape and runs one lockstep ADMM kernel per bucket.
        Per-leaf ``solve_seconds`` is the member's iteration-weighted share
        of its bucket's wall clock.
        """
        with clock.phase("extract"):
            problems = self._extract_leaves(
                leaves, nets_by_id, timings, weights, mask
            )
        if self._pool is None:
            self._pool = BatchLeafSolver(
                self._solver, self.config.batch_max_members
            )
        with clock.phase("solve"):
            results = self._pool.solve_many(problems, leaf_mask=mask)
        for leaf_index, (problem, entry) in enumerate(zip(problems, results)):
            if problem is None or entry is None:
                continue
            x_values, info, leaf_seconds = entry
            metrics.inc("engine.leaves")
            metrics.observe("engine.leaf_solve_seconds", leaf_seconds, _LEAF_BUCKETS)
            overflow = self._map_and_apply(
                problem, x_values, ledger, reserved, nets_by_id, clock
            )
            if convergence.is_enabled():
                self._record_partition(
                    leaf_index, problem, info, leaf_seconds, overflow, timings
                )

    def _solve_jacobi(
        self, leaves, nets_by_id, timings, weights, ledger, reserved, clock,
        mask=None,
    ) -> None:
        """Single-threaded Jacobi reference solve (``exec_backend='seq'``).

        Extracts every leaf from the common snapshot first, then solves
        one at a time — the workers-free member of the pool/dist/batch
        digest-identity family.  (Contrast with :meth:`_solve_sequential`,
        the default Gauss-Seidel path, which interleaves extraction with
        mapping so later leaves see earlier leaves' boundary updates.)
        """
        with clock.phase("extract"):
            problems = self._extract_leaves(
                leaves, nets_by_id, timings, weights, mask
            )
        self._solve_fallback(problems, nets_by_id, ledger, reserved, clock, timings)

    def _solve_fallback(
        self, problems, nets_by_id, ledger, reserved, clock, timings
    ) -> None:
        """Sequentially solve already-extracted problems after a pool failure."""
        for leaf_index, problem in enumerate(problems):
            if problem is None:
                continue
            with clock.phase("solve") as timer:
                with tracer.span("engine.leaf", segments=problem.num_vars):
                    x_values, info = self._solver.solve(problem)
            metrics.inc("engine.leaves")
            metrics.observe("engine.leaf_solve_seconds", timer.elapsed, _LEAF_BUCKETS)
            overflow = self._map_and_apply(
                problem, x_values, ledger, reserved, nets_by_id, clock
            )
            if convergence.is_enabled():
                self._record_partition(
                    leaf_index, problem, info, timer.elapsed, overflow, timings
                )

    def _record_partition(
        self, leaf_index, problem, info, solve_seconds, overflow, timings
    ) -> None:
        """Attribute one leaf's solver behaviour for the convergence recorder.

        ``info`` is duck-typed: the SDP solver reports iterations/converged/
        mode, the ILP solver a status string — both attribute cleanly.  The
        Tcp contribution is the worst critical-path delay among the nets
        with segments in this leaf (from the iteration's timing snapshot).
        """
        net_ids = {var.key[0] for var in problem.vars}
        tcp = max(
            (timings[n].critical_delay for n in net_ids if n in timings),
            default=0.0,
        )
        status = getattr(info, "status", "")
        convergence.record_partition(convergence.PartitionRecord(
            engine_iteration=self._iter_index,
            leaf_index=leaf_index,
            num_segments=problem.num_vars,
            matrix_order=getattr(info, "matrix_order", 0),
            num_constraints=getattr(info, "num_constraints", 0),
            iterations=getattr(info, "iterations", 0),
            converged=bool(getattr(info, "converged", status == "optimal")),
            warm_start=bool(getattr(info, "warm_start", False)),
            mode=getattr(info, "mode", status),
            objective=float(getattr(info, "objective", 0.0)),
            solve_seconds=float(solve_seconds),
            overflow_events=overflow,
            tcp_contribution=tcp,
        ))

    def _map_and_apply(
        self, problem, x_values, ledger, reserved, nets_by_id, clock
    ) -> int:
        """Post-map one solved leaf; returns its capacity-overflow events."""
        if not problem.vars:
            return 0
        # Give protected segments of this partition their reserved tracks
        # back: their own mapping decides whether to keep or move them.
        for var in problem.vars:
            reservation = reserved.pop(var.key, None)
            if reservation is not None:
                ledger.release(*reservation)
        overflow_before = ledger.overflow_events
        with clock.phase("mapping"):
            layers = post_map(
                problem, x_values, ledger,
                self.config.mapping_mode, self.config.mapping_refine_passes,
            )
        for var, layer in zip(problem.vars, layers):
            net_id, sid = var.key
            nets_by_id[net_id].topology.segments[sid].layer = layer
        # The timing cache's layer fingerprints would catch this anyway, but
        # explicit dirty-marking keeps stale NetTiming objects from lingering.
        self.elmore.mark_dirty({var.key[0] for var in problem.vars})
        return ledger.overflow_events - overflow_before

    # -- ILP-specific hook ------------------------------------------------------

    # -- layer snapshots --------------------------------------------------------

    @staticmethod
    def _snapshot_layers(critical: Sequence[Net]) -> Dict[SegKey, int]:
        return {
            (net.id, seg.id): seg.layer
            for net in critical
            for seg in net.topology.segments
        }

    def _restore_layers(self, critical: Sequence[Net], layers: Dict[SegKey, int]) -> None:
        for net in critical:
            release_net(self.grid, net.topology)
            for seg in net.topology.segments:
                seg.layer = layers[(net.id, seg.id)]
            commit_net(self.grid, net.topology)
        self.elmore.mark_dirty(net.id for net in critical)
