"""Per-partition problem extraction.

Builds, for one partition leaf, the quadratic assignment instance the ILP
and SDP solvers consume:

- one :class:`SegmentVar` per critical segment in the leaf, with a cost
  vector over its direction-legal layers.  The vector holds the Elmore
  segment delay ``ts(i, j)`` of Eqn. (2) plus every *linear* via term: vias
  to pins, and vias to neighbour segments whose layer is fixed (outside the
  partition or non-released);
- one :class:`PairTerm` per connected pair with *both* segments in the leaf
  — the genuinely quadratic via cost ``tv(i, j, p, q)`` of Eqn. (3), with
  the paper's via-capacity penalty (existing vias / capacity) folded in;
- :class:`CapacityConstraint` rows for the contended (edge, layer) pairs.
  A pair is contended only when more candidate segments cross the edge than
  it has free tracks; all other capacity rows are vacuous and omitted —
  this is what keeps the SDP matrices small.

Costs are computed against the *current* downstream capacitances (the
engine refreshes them every outer iteration, as the paper's iterative
scheme does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.graph import Edge2D, GridGraph, Tile
from repro.route.net import Net, Segment
from repro.timing.elmore import ElmoreEngine, NetTiming

SegKey = Tuple[int, int]  # (net_id, segment_id)


@dataclass
class SegmentVar:
    """One critical segment's assignment variable block."""

    key: SegKey
    segment: Segment
    layers: Tuple[int, ...]
    cost: np.ndarray  # aligned with `layers`
    current_layer: int

    def layer_index(self, layer: int) -> int:
        return self.layers.index(layer)


@dataclass
class PairTerm:
    """Quadratic via cost between two in-partition segments.

    ``cost[aj, bq]`` is the via delay (plus capacity penalty) of putting
    var ``a`` on its ``aj``-th layer and var ``b`` on its ``bq``-th layer.
    """

    a: int
    b: int
    tile: Tile
    cost: np.ndarray


@dataclass
class CapacityConstraint:
    """Contended (edge, layer): at most ``capacity`` of ``var_indices``."""

    edge: Edge2D
    layer: int
    capacity: int
    var_indices: List[int]


@dataclass
class PartitionProblem:
    """The optimization instance of one partition leaf."""

    vars: List[SegmentVar] = field(default_factory=list)
    pairs: List[PairTerm] = field(default_factory=list)
    cap_constraints: List[CapacityConstraint] = field(default_factory=list)
    index: Dict[SegKey, int] = field(default_factory=dict)

    @property
    def num_vars(self) -> int:
        return len(self.vars)

    def assignment_cost(self, layers: Sequence[int]) -> float:
        """Objective value of a full assignment (one layer per var)."""
        total = 0.0
        for var, layer in zip(self.vars, layers):
            total += float(var.cost[var.layer_index(layer)])
        for pair in self.pairs:
            ai = self.vars[pair.a].layer_index(layers[pair.a])
            bi = self.vars[pair.b].layer_index(layers[pair.b])
            total += float(pair.cost[ai, bi])
        return total

    def current_layers(self) -> List[int]:
        return [v.current_layer for v in self.vars]


def extract_partition_problem(
    grid: GridGraph,
    engine: ElmoreEngine,
    nets_by_id: Dict[int, Net],
    timings: Dict[int, NetTiming],
    seg_keys: Sequence[SegKey],
    via_penalty_weight: float = 1.0,
    weights: Optional[Dict[SegKey, float]] = None,
) -> PartitionProblem:
    """Build the :class:`PartitionProblem` for the given critical segments.

    ``grid`` must be in the *released* state (critical nets' wires/vias
    removed), so edge capacities reflect exactly the non-released usage —
    the "more stringent" incremental capacities of constraint (4c).

    ``weights`` (optional, per segment key) scale the timing costs: the
    engine passes criticality weights that emphasize the worst paths of the
    worst nets, the "critical path" focus distinguishing CPLA from the
    total-delay objective of TILA.
    """
    stack = grid.stack
    problem = PartitionProblem()
    weights = weights or {}

    for key in seg_keys:
        net_id, sid = key
        net = nets_by_id[net_id]
        topo = net.topology
        assert topo is not None
        seg = topo.segments[sid]
        layers = stack.layers_of(seg.direction)
        cd = timings[net_id].downstream_caps.get(sid, 0.0)
        w = weights.get(key, 1.0)
        cost = np.array(
            [w * engine.segment_delay(seg, cd, layer=l) for l in layers],
            dtype=np.float64,
        )
        var = SegmentVar(
            key=key,
            segment=seg,
            layers=layers,
            cost=cost,
            current_layer=seg.layer,
        )
        problem.index[key] = len(problem.vars)
        problem.vars.append(var)

    _add_via_terms(problem, grid, engine, nets_by_id, timings, via_penalty_weight, weights)
    _add_capacity_constraints(problem, grid)
    return problem


# -- via terms ----------------------------------------------------------------


def _via_capacity_penalty(
    grid: GridGraph, tile: Tile, lower: int, upper: int, weight: float
) -> float:
    """The paper's SDP via-capacity penalty: existing vias / capacity,
    summed over the cuts a (lower, upper) via stack would traverse."""
    if weight == 0.0 or lower == upper:
        return 0.0
    if lower > upper:
        lower, upper = upper, lower
    penalty = 0.0
    for cut in range(lower, upper):
        used = grid.via_usage_at(tile, cut)
        cap = max(grid.via_capacity(tile, cut), 1)
        penalty += used / cap
    return weight * penalty


def _add_via_terms(
    problem: PartitionProblem,
    grid: GridGraph,
    engine: ElmoreEngine,
    nets_by_id: Dict[int, Net],
    timings: Dict[int, NetTiming],
    penalty_weight: float,
    weights: Dict[SegKey, float],
) -> None:
    seen_nets = {key[0] for key in problem.index}
    for net_id in sorted(seen_nets):
        net = nets_by_id[net_id]
        topo = net.topology
        assert topo is not None
        timing = timings[net_id]
        cd = timing.downstream_caps

        # Parent-child junction vias.
        for parent_sid, child_sid in topo.connected_pairs():
            pk, ck = (net_id, parent_sid), (net_id, child_sid)
            tile = topo.parent_tile[child_sid]
            p_in, c_in = pk in problem.index, ck in problem.index
            if not p_in and not c_in:
                continue
            cd_p = cd.get(parent_sid, 0.0)
            cd_c = cd.get(child_sid, 0.0)
            w = max(weights.get(pk, 1.0), weights.get(ck, 1.0))
            if p_in and c_in:
                a = problem.index[pk]
                b = problem.index[ck]
                va, vb = problem.vars[a], problem.vars[b]
                cost = np.zeros((len(va.layers), len(vb.layers)))
                for i, lj in enumerate(va.layers):
                    for j, lq in enumerate(vb.layers):
                        cost[i, j] = w * engine.via_delay(lj, lq, cd_p, cd_c)
                        cost[i, j] += _via_capacity_penalty(grid, tile, lj, lq, penalty_weight)
                problem.pairs.append(PairTerm(a=a, b=b, tile=tile, cost=cost))
            elif p_in:
                fixed = topo.segments[child_sid].layer
                _add_linear_via(problem, grid, engine, pk, fixed, cd_p, cd_c, tile, penalty_weight, w)
            else:
                fixed = topo.segments[parent_sid].layer
                _add_linear_via(
                    problem, grid, engine, ck, fixed, cd_c, cd_p, tile,
                    penalty_weight, w, fixed_is_parent=True,
                )

        # Pin vias: source pin at the roots, sink pins at child tiles.
        source = net.source
        for rid in topo.root_segments():
            rk = (net_id, rid)
            if rk in problem.index:
                cd_r = cd.get(rid, 0.0)
                _add_linear_via(
                    problem, grid, engine, rk, source.layer, cd_r, cd_r,
                    topo.root_tile, penalty_weight, weights.get(rk, 1.0),
                    fixed_is_parent=True,
                )
        for key, var_idx in problem.index.items():
            if key[0] != net_id:
                continue
            sid = key[1]
            var = problem.vars[var_idx]
            w = weights.get(key, 1.0)
            tile = topo.child_tile[sid]
            for pin in topo.pins_at.get(tile, []):
                if pin == source and tile == topo.root_tile:
                    continue
                for i, lj in enumerate(var.layers):
                    r = stack_via_r(engine, lj, pin.layer)
                    var.cost[i] += w * r * pin.capacitance
                    var.cost[i] += _via_capacity_penalty(grid, tile, lj, pin.layer, penalty_weight)


def stack_via_r(engine: ElmoreEngine, layer_a: int, layer_b: int) -> float:
    return engine.stack.via_resistance_between(layer_a, layer_b)


def _add_linear_via(
    problem: PartitionProblem,
    grid: GridGraph,
    engine: ElmoreEngine,
    key: SegKey,
    fixed_layer: int,
    cd_self: float,
    cd_other: float,
    tile: Tile,
    penalty_weight: float,
    timing_weight: float = 1.0,
    fixed_is_parent: bool = False,
) -> None:
    """Fold a via to a fixed-layer neighbour into a var's linear cost."""
    var = problem.vars[problem.index[key]]
    for i, layer in enumerate(var.layers):
        if fixed_is_parent:
            delay = engine.via_delay(fixed_layer, layer, cd_other, cd_self)
        else:
            delay = engine.via_delay(layer, fixed_layer, cd_self, cd_other)
        var.cost[i] += timing_weight * delay
        var.cost[i] += _via_capacity_penalty(grid, tile, layer, fixed_layer, penalty_weight)


# -- capacity constraints -------------------------------------------------------


def _add_capacity_constraints(problem: PartitionProblem, grid: GridGraph) -> None:
    """Contended (edge, layer) rows, plus a feasibility relief pass.

    If an edge cannot hold all its candidate segments even using every layer
    (pre-existing overflow), capacities are lifted uniformly so a feasible
    assignment exists; the post-mapper and OV metrics still see the real
    capacities, so such overflow remains visible in the results.
    """
    edge_vars: Dict[Edge2D, List[int]] = {}
    for idx, var in enumerate(problem.vars):
        for edge in var.segment.edges():
            edge_vars.setdefault(edge, []).append(idx)

    for edge in sorted(edge_vars):
        indices = edge_vars[edge]
        layers = grid.layers_for_edge(edge)
        caps = {l: max(grid.remaining(edge, l), 0) for l in layers}
        # Feasibility guarantee: re-admitting every candidate on its current
        # layer must always be possible, even under pre-existing overflow —
        # otherwise a multi-edge segment can face edges whose free layers
        # are disjoint and the exact ILP goes infeasible.
        for l in layers:
            incumbent = sum(
                1 for v in indices if problem.vars[v].current_layer == l
            )
            caps[l] = max(caps[l], incumbent)
        total = sum(caps.values())
        if total < len(indices):
            # Relief: spread any remaining deficit over layers, topmost first.
            deficit = len(indices) - total
            for l in reversed(layers):
                if deficit <= 0:
                    break
                bump = (deficit + len(layers) - 1) // len(layers)
                caps[l] += bump
                deficit -= bump
        for l in layers:
            if len(indices) > caps[l]:
                problem.cap_constraints.append(
                    CapacityConstraint(
                        edge=edge, layer=l, capacity=caps[l], var_indices=list(indices)
                    )
                )
