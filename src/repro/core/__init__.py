"""The paper's contribution: critical-path layer assignment (CPLA).

Pipeline per Section 3:

1. :mod:`repro.core.partition` — K x K division plus self-adaptive quadruple
   (quadtree) refinement until every leaf holds at most ``max_segments``
   critical segments.
2. :mod:`repro.core.problem` — extraction of the per-partition optimization
   instance: segment variables with Elmore costs (Eqn. 2), via pair terms
   (Eqn. 3), boundary/pin linear terms, and contended capacity constraints.
3. :mod:`repro.core.ilp` — the exact formulation (4a)-(4i) on HiGHS.
4. :mod:`repro.core.sdp_relaxation` — the SDP relaxation ``min <T, X>``.
5. :mod:`repro.core.mapping` — the post-mapping algorithm (Alg. 1) that
   recovers a capacity-feasible integer assignment.
6. :mod:`repro.core.engine` — the iterative incremental framework.
"""

from repro.core.partition import Region, kxk_regions, self_adaptive_partition
from repro.core.problem import (
    CapacityConstraint,
    PairTerm,
    PartitionProblem,
    SegmentVar,
    extract_partition_problem,
)
from repro.core.ilp import IlpPartitionSolver
from repro.core.sdp_relaxation import SdpPartitionSolver
from repro.core.mapping import CapacityLedger, post_map
from repro.core.engine import CPLAConfig, CPLAEngine, CPLAReport

__all__ = [
    "Region",
    "kxk_regions",
    "self_adaptive_partition",
    "CapacityConstraint",
    "PairTerm",
    "PartitionProblem",
    "SegmentVar",
    "extract_partition_problem",
    "IlpPartitionSolver",
    "SdpPartitionSolver",
    "CapacityLedger",
    "post_map",
    "CPLAConfig",
    "CPLAEngine",
    "CPLAReport",
]
