"""Self-adaptive quadruple partitioning (Section 3.2 of the paper).

The grid is first cut into ``K x K`` uniform regions; each region is then
recursively quad-split while it holds more than ``max_segments`` critical
segments, producing the quadtree of Fig. 4.  Splitting stops at single-tile
regions regardless (the paper's deadlock guard: "if the current partition
size is smaller than the tile width/height ... the partition should stop").

Segments are bucketed by their geometric midpoint, so every critical segment
lands in exactly one leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

from repro.route.net import Segment


@dataclass(frozen=True)
class Region:
    """A half-open rectangle of tile space: ``[x0, x1) x [y0, y1)``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"empty region {self}")

    def contains_point(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    def quad_children(self) -> Tuple["Region", ...]:
        """The four quadrants (degenerates to 2 or 1 for thin regions)."""
        mx = (self.x0 + self.x1) / 2.0
        my = (self.y0 + self.y1) / 2.0
        xs = [(self.x0, mx), (mx, self.x1)] if self.width > 1 else [(self.x0, self.x1)]
        ys = [(self.y0, my), (my, self.y1)] if self.height > 1 else [(self.y0, self.y1)]
        return tuple(
            Region(x0, y0, x1, y1) for (x0, x1) in xs for (y0, y1) in ys
        )

    @property
    def is_atomic(self) -> bool:
        """True once the region cannot be split further (about one tile)."""
        return self.width <= 1 and self.height <= 1


def kxk_regions(nx_tiles: int, ny_tiles: int, k: int) -> List[Region]:
    """The initial uniform ``K x K`` division of an ``nx x ny`` grid."""
    if k < 1:
        raise ValueError("K must be >= 1")
    k = min(k, nx_tiles, ny_tiles)
    out = []
    for i in range(k):
        x0 = nx_tiles * i / k
        x1 = nx_tiles * (i + 1) / k
        for j in range(k):
            y0 = ny_tiles * j / k
            y1 = ny_tiles * (j + 1) / k
            out.append(Region(x0, y0, x1, y1))
    return out


Keyed = Tuple[Hashable, Segment]


def self_adaptive_partition(
    nx_tiles: int,
    ny_tiles: int,
    segments: Sequence[Keyed],
    k: int,
    max_segments: int,
) -> List[Tuple[Region, List[Hashable]]]:
    """Partition keyed segments into balanced leaves.

    Parameters
    ----------
    segments:
        ``(key, segment)`` pairs; the key is whatever identifies the segment
        to the caller (CPLA uses ``(net_id, seg_id)``).
    k:
        Initial K x K granularity.
    max_segments:
        Quad-split any region holding more than this many segments (the
        paper's default is 10).

    Returns leaves that actually contain segments, each as
    ``(region, [keys])``; keys keep the input order within a leaf.
    """
    if max_segments < 1:
        raise ValueError("max_segments must be >= 1")

    def midpoint(seg: Segment) -> Tuple[float, float]:
        mx, my = seg.midpoint()
        # Nudge inside the grid so boundary midpoints bucket deterministically.
        return min(mx, nx_tiles - 0.5), min(my, ny_tiles - 0.5)

    leaves: List[Tuple[Region, List[Hashable]]] = []
    stack: List[Tuple[Region, List[Keyed]]] = []
    for region in kxk_regions(nx_tiles, ny_tiles, k):
        inside = [
            (key, seg)
            for key, seg in segments
            if region.contains_point(*midpoint(seg))
        ]
        if inside:
            stack.append((region, inside))

    while stack:
        region, inside = stack.pop()
        if len(inside) <= max_segments or region.is_atomic:
            leaves.append((region, [key for key, _ in inside]))
            continue
        for child in region.quad_children():
            child_inside = [
                (key, seg)
                for key, seg in inside
                if child.contains_point(*midpoint(seg))
            ]
            if child_inside:
                stack.append((child, child_inside))
    # Deterministic order: by region origin.
    leaves.sort(key=lambda item: (item[0].x0, item[0].y0, item[0].x1, item[0].y1))
    return leaves
