"""Exact ILP formulation (4a)-(4i) of the per-partition problem.

Solved with HiGHS through :class:`repro.solver.milp.MilpModel`.  Notes on
the encoding relative to the paper:

- ``x_ij`` are binaries; the product variables ``y_ijpq`` are *continuous*
  in [0, 1] with the lower-bounding row (4g) ``y >= x_ij + x_pq - 1``.
  Every ``y`` carries a non-negative via cost, so minimization pins it to
  ``max(0, x_ij + x_pq - 1)``, which over binary ``x`` equals the product —
  the same feasible set as (4e)-(4h) with fewer rows and no extra integers.
- Via capacity (4d) is included per (tile, cut) with the shared overflow
  variable ``Vo`` weighted by ``alpha`` (the paper uses 2000), including
  the ``nv (x_ij + x_pq)`` wire-blockage term.
- Edge capacities (4c) come pre-filtered by the problem extraction: only
  contended rows exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.problem import PartitionProblem
from repro.grid.graph import GridGraph, Tile
from repro.obs import metrics, tracer
from repro.solver.milp import MilpModel
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class IlpConfig:
    """Options of the exact partition solver."""

    overflow_weight: float = 2000.0  # alpha of Section 3.1
    time_limit: Optional[float] = 120.0  # seconds per partition
    include_via_capacity: bool = True


@dataclass
class IlpSolveInfo:
    """Diagnostics of one exact solve."""

    num_variables: int
    num_pairs: int
    status: str
    objective: float


class IlpPartitionSolver:
    """Solves a :class:`PartitionProblem` exactly.

    The returned "fractional" values are one-hot, so the same post-mapping
    code path finalizes both ILP and SDP results (the mapper is a no-op on
    one-hot inputs unless capacities force a change).
    """

    def __init__(
        self, config: Optional[IlpConfig] = None, grid: Optional[GridGraph] = None
    ) -> None:
        self.config = config or IlpConfig()
        self.grid = grid

    def solve(self, problem: PartitionProblem) -> Tuple[List[np.ndarray], IlpSolveInfo]:
        grid = self.grid
        if problem.num_vars == 0:
            return [], IlpSolveInfo(0, 0, "optimal", 0.0)

        model = MilpModel()
        objective: Dict[str, float] = {}

        def xname(v: int, k: int) -> str:
            return f"x_{v}_{k}"

        def yname(p: int, i: int, j: int) -> str:
            return f"y_{p}_{i}_{j}"

        for v, var in enumerate(problem.vars):
            for k in range(len(var.layers)):
                model.add_binary(xname(v, k))
                objective[xname(v, k)] = float(var.cost[k])
            # (4b)
            model.add_eq({xname(v, k): 1.0 for k in range(len(var.layers))}, 1.0)

        for p, pair in enumerate(problem.pairs):
            va, vb = problem.vars[pair.a], problem.vars[pair.b]
            for i in range(len(va.layers)):
                for j in range(len(vb.layers)):
                    cost = float(pair.cost[i, j])
                    name = yname(p, i, j)
                    model.add_continuous(name, 0.0, 1.0)
                    if cost:
                        objective[name] = cost
                    # (4g): y >= x_a + x_b - 1
                    model.add_ge(
                        {
                            name: 1.0,
                            xname(pair.a, i): -1.0,
                            xname(pair.b, j): -1.0,
                        },
                        -1.0,
                    )

        # (4c): contended edge capacities (hard, as in the paper).
        for con in problem.cap_constraints:
            expr: Dict[str, float] = {}
            for v in con.var_indices:
                var = problem.vars[v]
                if con.layer in var.layers:
                    expr[xname(v, var.layers.index(con.layer))] = 1.0
            if expr:
                model.add_le(expr, float(con.capacity))

        # (4d): via capacities with the shared relaxation variable Vo.
        if self.config.include_via_capacity and grid is not None and problem.pairs:
            model.add_continuous("Vo", 0.0, np.inf)
            objective["Vo"] = self.config.overflow_weight
            self._add_via_capacity_rows(model, problem, grid, xname, yname)

        model.set_objective(objective)
        with tracer.span(
            "solver.ilp", variables=model.num_variables, pairs=len(problem.pairs)
        ):
            result = model.solve(time_limit=self.config.time_limit)
        metrics.inc("ilp.solves")

        if not result.ok:
            metrics.inc("ilp.fallbacks")
            log.warning("ILP partition solve ended with status %s", result.status)
            # Fall back to the current assignment: one-hot on current layers.
            x_values = [
                _one_hot(var.layers, var.current_layer) for var in problem.vars
            ]
            return x_values, IlpSolveInfo(
                model.num_variables, len(problem.pairs), result.status, float("nan")
            )

        x_values = []
        for v, var in enumerate(problem.vars):
            vals = np.array(
                [result.values[xname(v, k)] for k in range(len(var.layers))]
            )
            x_values.append(np.clip(vals, 0.0, 1.0))
        info = IlpSolveInfo(
            num_variables=model.num_variables,
            num_pairs=len(problem.pairs),
            status=result.status,
            objective=result.objective,
        )
        metrics.set_gauge("ilp.last_objective", result.objective)
        return x_values, info

    def _add_via_capacity_rows(
        self, model: MilpModel, problem: PartitionProblem, grid: GridGraph, xname, yname
    ) -> None:
        # Group pair terms by junction tile.
        by_tile: Dict[Tile, List[int]] = {}
        for p, pair in enumerate(problem.pairs):
            by_tile.setdefault(pair.tile, []).append(p)

        nv = grid.vias_per_track
        for tile in sorted(by_tile):
            cuts = range(1, grid.stack.num_layers)
            for cut in cuts:
                expr: Dict[str, float] = {}
                for p in by_tile[tile]:
                    pair = problem.pairs[p]
                    va, vb = problem.vars[pair.a], problem.vars[pair.b]
                    for i, lj in enumerate(va.layers):
                        for j, lq in enumerate(vb.layers):
                            lo, hi = min(lj, lq), max(lj, lq)
                            if lo <= cut < hi:
                                expr[yname(p, i, j)] = expr.get(yname(p, i, j), 0.0) + 1.0
                    # nv * (x_ij + x_pq) for segments sitting at this tile on
                    # the cut's bounding layers.
                    for vv, var in ((pair.a, va), (pair.b, vb)):
                        if tile in var.segment.tiles():
                            for k, layer in enumerate(var.layers):
                                if layer in (cut, cut + 1):
                                    key = xname(vv, k)
                                    expr[key] = expr.get(key, 0.0) + nv
                if not expr:
                    continue
                capacity = grid.via_capacity(tile, cut) - grid.via_usage_at(tile, cut)
                expr["Vo"] = -1.0
                model.add_le(expr, float(capacity))


def _one_hot(layers: Tuple[int, ...], layer: int) -> np.ndarray:
    out = np.zeros(len(layers))
    if layer in layers:
        out[layers.index(layer)] = 1.0
    else:
        out[0] = 1.0
    return out
