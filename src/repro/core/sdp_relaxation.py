"""SDP relaxation of the per-partition assignment problem (Section 3.3).

Following the paper, the partition's quadratic assignment is lifted to
``min <T, X>`` over PSD matrices ``X``:

- the diagonal block of variable *i* holds its ``x_ij`` over candidate
  layers, with the segment timing costs ``ts(i, j)`` on the diagonal of T;
- the off-diagonal entry pairing ``x_ij`` with ``x_pq`` holds ``y_ijpq``,
  with half the via cost ``tv(i, j, p, q)`` in T (so the Frobenius inner
  product charges it once), via-capacity penalties already folded in by the
  problem extraction;
- assignment rows (4b) are exact equality constraints;
- contended edge-capacity rows (4c) get a diagonal slack entry (PSD keeps
  the diagonal non-negative, so the slack is automatically >= 0) — the
  paper's slack-variable treatment.  ``constraint_mode="penalty"`` instead
  prices contended layers into T, an ablation of that choice;
- all entries are boxed to [0, 1], which together with the PSD 2x2-minor
  bound ``y^2 <= x_ij * x_pq`` plays the role of the linking rows (4e)-(4g)
  (see DESIGN.md).

The relaxed diagonal is what the post-mapper consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.problem import PartitionProblem
from repro.obs import metrics, tracer
from repro.solver.sdp import ADMMSDPSolver, SDPProblem, SDPResult, SDPSettings
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class SdpRelaxationConfig:
    """Options of the SDP-based partition solver."""

    constraint_mode: str = "slack"  # "slack", "penalty", or "auto"
    # Reuse the relaxed X of the previous solve of the *same partition*
    # (same segment-variable set) as the ADMM starting point.  The engine
    # re-solves the same leaves every outer iteration with slightly shifted
    # costs, so the previous optimum is a near-feasible start; a solve whose
    # matrix order changed (capacity slacks appear/disappear) falls back to
    # a cold start via the same-shape check.
    warm_start: bool = True
    slack_constraint_limit: int = 48  # "auto": switch to penalty above this
    capacity_penalty_weight: float = 2.0
    # (4g) linking rows  y >= x_ij + x_pq - 1  keep the relaxation honest
    # about via costs (without them the PSD cone admits y = 0 under x = 1).
    # Rows are spent on the costliest layer combinations first.  With the
    # post-mapping refinement enabled they buy no measurable quality on the
    # suite while tripling solve time, so the default is 0; the ablation
    # bench sweeps them (see DESIGN.md / EXPERIMENTS.md).
    max_linking_rows: int = 0
    linking_cost_floor: float = 0.02  # skip combos cheaper than this x median ts
    # Partition matrices are tiny; a first-order solve to ~2e-4 plus the
    # integer refinement reproduces exact-ILP quality (tested) at a fraction
    # of the cost of tighter tolerances.
    settings: SDPSettings = field(
        default_factory=lambda: SDPSettings(tolerance=2e-4, max_iterations=1200)
    )

    def __post_init__(self) -> None:
        if self.constraint_mode not in ("slack", "penalty", "auto"):
            raise ValueError(f"unknown constraint_mode {self.constraint_mode!r}")
        if self.max_linking_rows < 0:
            raise ValueError("max_linking_rows must be >= 0")


@dataclass
class SdpSolveInfo:
    """Diagnostics of one partition solve."""

    matrix_order: int
    num_constraints: int
    iterations: int
    converged: bool
    objective: float
    mode: str
    warm_start: bool = False


class SdpPartitionSolver:
    """Solves a :class:`PartitionProblem` through the SDP relaxation.

    The solver instance is long-lived (one per engine run; shipped once per
    worker in pool mode) and keeps the relaxed ``X`` of every partition it
    solved, keyed by the partition's variable signature, to warm-start the
    next solve of that same partition.
    """

    def __init__(self, config: Optional[SdpRelaxationConfig] = None) -> None:
        self.config = config or SdpRelaxationConfig()
        self._solver = ADMMSDPSolver(self.config.settings)
        # partition signature -> relaxed X of the last solve
        self._warm: Dict[Tuple, np.ndarray] = {}

    # -- externally-managed warm state ------------------------------------
    #
    # ADMM's output depends on its warm start, so warm state must be a
    # function of the *task*, never of which worker happens to solve it —
    # otherwise work stealing, retries, and pool scheduling would make the
    # assignment timing-dependent.  The parallel backends therefore keep
    # the authoritative warm store on the parent's solver instance, ship
    # the X with each task via ``export_warm``, overwrite the worker-local
    # entry via ``import_warm`` before solving, and write the accepted
    # result's X back into the parent store in task order.

    @staticmethod
    def warm_key(problem: PartitionProblem) -> Tuple:
        """The partition signature that keys the warm-start store."""
        return tuple(var.key for var in problem.vars)

    def export_warm(self, problem: PartitionProblem) -> Optional[np.ndarray]:
        """The stored relaxed ``X`` for this partition, if any."""
        return self._warm.get(self.warm_key(problem))

    def import_warm(
        self, problem: PartitionProblem, X: Optional[np.ndarray]
    ) -> None:
        """Overwrite (``None``: clear) the stored ``X`` for this partition."""
        key = self.warm_key(problem)
        if X is None:
            self._warm.pop(key, None)
        else:
            self._warm[key] = X

    def export_warm_store(self) -> Dict[Tuple, np.ndarray]:
        """Copy of the whole warm store (fleet replication ships this)."""
        return {key: np.array(X, copy=True) for key, X in self._warm.items()}

    def import_warm_store(self, store: Dict[Tuple, np.ndarray]) -> None:
        """Merge a peer's warm store into this solver's.

        Entries overwrite per-signature; ADMM warm starts only change
        iteration counts, never the accepted assignment (warm == fresh is
        bit-identical), so importing is always digest-safe.
        """
        for key, X in store.items():
            self._warm[key] = np.array(X, copy=True)

    @property
    def admm(self) -> ADMMSDPSolver:
        """The underlying ADMM solver (the batch backend shares it)."""
        return self._solver

    def lookup_warm(
        self, signature: Tuple, n: int
    ) -> Optional[np.ndarray]:
        """The stored relaxed X for ``signature`` if shape-compatible.

        A solve whose matrix order changed (capacity slacks appeared or
        disappeared) falls back to a cold start.
        """
        if not self.config.warm_start:
            return None
        warm = self._warm.get(signature)
        if warm is not None and warm.shape != (n, n):
            warm = None
        return warm

    def store_warm(
        self, signature: Tuple, X: np.ndarray, was_warm: bool
    ) -> None:
        """Advance the warm store after one solve (counts warm reuses)."""
        if self.config.warm_start:
            self._warm[signature] = X
            if was_warm:
                metrics.inc("sdp.warm_starts")

    @staticmethod
    def note_solve(result: SDPResult, n: int) -> None:
        """Per-solve metrics, identical across execution backends."""
        metrics.inc("sdp.solves")
        metrics.inc("sdp.iterations", result.iterations)
        if not result.converged:
            metrics.inc("sdp.nonconverged")
        metrics.set_gauge("sdp.last_objective", result.objective)
        metrics.observe(
            "sdp.matrix_order", n, buckets=(4, 8, 16, 32, 64, 128, 256)
        )

    def build_sdp(
        self, problem: PartitionProblem
    ) -> Tuple[SDPProblem, List[int], str]:
        """Lift one partition problem to its SDP (Section 3.3 construction).

        Returns the assembled :class:`SDPProblem`, the per-variable layer
        offsets into the matrix, and the resolved constraint mode.  Shared
        by the scalar :meth:`solve` and the batched backend so both lift
        the identical SDP instance.
        """
        mode = self.config.constraint_mode
        if mode == "auto":
            mode = (
                "slack"
                if len(problem.cap_constraints) <= self.config.slack_constraint_limit
                else "penalty"
            )

        offsets, n_assign = self._variable_offsets(problem)
        num_cap_slacks = len(problem.cap_constraints) if mode == "slack" else 0
        linking = self._select_linking_rows(problem)
        n = n_assign + num_cap_slacks + len(linking)

        cost = self._build_cost(problem, offsets, n, mode)
        sdp = SDPProblem(n=n, cost=cost)
        sdp.set_box(0.0, 1.0)

        # (4b): each segment on exactly one layer.
        for v, var in enumerate(problem.vars):
            entries = [(offsets[v] + k, offsets[v] + k) for k in range(len(var.layers))]
            sdp.add_entry_constraint(entries, [1.0] * len(entries), 1.0)

        # (4c): contended capacities with diagonal slack.
        if mode == "slack":
            for c_idx, con in enumerate(problem.cap_constraints):
                slack = n_assign + c_idx
                entries = []
                for v in con.var_indices:
                    var = problem.vars[v]
                    if con.layer in var.layers:
                        k = var.layers.index(con.layer)
                        entries.append((offsets[v] + k, offsets[v] + k))
                entries.append((slack, slack))
                sdp.add_entry_constraint(
                    entries, [1.0] * len(entries), float(con.capacity)
                )
                sdp.set_entry_bounds(slack, slack, 0.0, max(float(con.capacity), 1.0))

        # (4g): x_ij + x_pq - y_ijpq + s = 1, s >= 0 on the diagonal.
        for row_idx, (p_idx, i, j) in enumerate(linking):
            pair = problem.pairs[p_idx]
            ai = offsets[pair.a] + i
            bj = offsets[pair.b] + j
            slack = n_assign + num_cap_slacks + row_idx
            sdp.add_entry_constraint(
                [(ai, ai), (bj, bj), (ai, bj), (slack, slack)],
                [1.0, 1.0, -1.0, 1.0],
                1.0,
            )
        return sdp, offsets, mode

    def solve(self, problem: PartitionProblem) -> Tuple[List[np.ndarray], SdpSolveInfo]:
        """Return per-variable fractional layer weights plus diagnostics."""
        if problem.num_vars == 0:
            info = SdpSolveInfo(0, 0, 0, True, 0.0, "empty")
            return [], info
        sdp, offsets, mode = self.build_sdp(problem)
        n = sdp.n
        signature = self.warm_key(problem)
        warm = self.lookup_warm(signature, n)
        with tracer.span(
            "solver.sdp",
            order=n,
            constraints=sdp.num_constraints,
            warm=warm is not None,
        ):
            result: SDPResult = self._solver.solve(sdp, warm_start=warm)
        self.store_warm(signature, result.X, warm is not None)
        x_values = self._extract(problem, offsets, result.X)
        info = SdpSolveInfo(
            matrix_order=n,
            num_constraints=sdp.num_constraints,
            iterations=result.iterations,
            converged=result.converged,
            objective=result.objective,
            mode=mode,
            warm_start=warm is not None,
        )
        self.note_solve(result, n)
        return x_values, info

    # -- construction helpers --------------------------------------------------

    def _select_linking_rows(
        self, problem: PartitionProblem
    ) -> List[Tuple[int, int, int]]:
        """Pick the (pair, layer, layer) combos that get a (4g) row.

        Combos whose via cost is negligible next to the segment delays can't
        distort the relaxation enough to matter, so rows go to the costliest
        combos first, up to the configured budget.
        """
        if self.config.max_linking_rows == 0 or not problem.pairs:
            return []
        diag = np.array([c for var in problem.vars for c in var.cost])
        floor = self.config.linking_cost_floor * float(np.median(np.abs(diag)))
        combos: List[Tuple[float, int, int, int]] = []
        for p_idx, pair in enumerate(problem.pairs):
            rows, cols = pair.cost.shape
            for i in range(rows):
                for j in range(cols):
                    c = float(pair.cost[i, j])
                    if c > floor:
                        combos.append((c, p_idx, i, j))
        combos.sort(key=lambda t: -t[0])
        return [
            (p, i, j) for _, p, i, j in combos[: self.config.max_linking_rows]
        ]

    @staticmethod
    def _variable_offsets(problem: PartitionProblem) -> Tuple[List[int], int]:
        offsets = []
        total = 0
        for var in problem.vars:
            offsets.append(total)
            total += len(var.layers)
        return offsets, total

    def _build_cost(
        self,
        problem: PartitionProblem,
        offsets: List[int],
        n: int,
        mode: str,
    ) -> np.ndarray:
        cost = np.zeros((n, n))
        for v, var in enumerate(problem.vars):
            for k in range(len(var.layers)):
                cost[offsets[v] + k, offsets[v] + k] = var.cost[k]
        for pair in problem.pairs:
            va, vb = problem.vars[pair.a], problem.vars[pair.b]
            for i in range(len(va.layers)):
                for j in range(len(vb.layers)):
                    r = offsets[pair.a] + i
                    c = offsets[pair.b] + j
                    cost[r, c] += pair.cost[i, j] / 2.0
                    cost[c, r] += pair.cost[i, j] / 2.0
        if mode == "penalty":
            self._apply_capacity_penalty(problem, offsets, cost)
        return cost

    def _apply_capacity_penalty(
        self, problem: PartitionProblem, offsets: List[int], cost: np.ndarray
    ) -> None:
        """Price contended layers instead of constraining them.

        The penalty scales with the partition's own cost magnitude so it
        stays meaningful across iterations and benchmarks.
        """
        diag = np.array([c for var in problem.vars for c in var.cost])
        scale = float(np.mean(np.abs(diag))) if diag.size else 1.0
        w = self.config.capacity_penalty_weight
        for con in problem.cap_constraints:
            demand = len(con.var_indices)
            pressure = (demand - con.capacity) / max(demand, 1)
            for v in con.var_indices:
                var = problem.vars[v]
                if con.layer in var.layers:
                    k = var.layers.index(con.layer)
                    idx = offsets[v] + k
                    cost[idx, idx] += w * scale * pressure

    @staticmethod
    def _extract(
        problem: PartitionProblem, offsets: List[int], X: np.ndarray
    ) -> List[np.ndarray]:
        out = []
        for v, var in enumerate(problem.vars):
            vals = np.array(
                [X[offsets[v] + k, offsets[v] + k] for k in range(len(var.layers))]
            )
            out.append(np.clip(vals, 0.0, 1.0))
        return out
