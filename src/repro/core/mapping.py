"""Post-mapping (Algorithm 1 of the paper).

The SDP returns fractional ``x_ij``; this module recovers an integer,
capacity-feasible assignment.  As in Alg. 1, edges holding critical segments
are traversed and layers scanned from the top of the stack downward (higher
layers are less resistive and "more competitive"), assigning up to
``cap_e(j)`` segments by decreasing relaxation value and updating the
remaining capacity — including the capacity of *every other* edge a
multi-G-cell segment crosses.

Two refinements over the literal pseudo-code:

- a segment is only taken at layer ``j`` when ``j`` is its best *still
  feasible* layer (otherwise a high layer with slack would swallow segments
  whose relaxation mass sits elsewhere);
- a final fallback pass guarantees every segment gets a direction-legal
  layer even when capacities are exhausted (pre-existing overflow inputs),
  preferring feasible layers.

Capacity state lives in a :class:`CapacityLedger` shared across the
partitions of one engine iteration, so two leaves touching the same edge
cannot jointly overfill it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.graph import Edge2D, GridGraph
from repro.core.problem import PartitionProblem
from repro.obs import metrics, tracer

_EPS = 1e-9


class CapacityLedger:
    """Remaining (edge, layer) tracks, lazily initialized from the grid.

    The grid must be in the released state when the ledger is created; the
    ledger then absorbs every assignment the post-mapper makes, across all
    partitions of the iteration.
    """

    def __init__(self, grid: GridGraph) -> None:
        self.grid = grid
        self._remaining: Dict[Tuple[Edge2D, int], int] = {}
        self.overflow_events = 0

    def remaining(self, edge: Edge2D, layer: int) -> int:
        key = (edge, layer)
        if key not in self._remaining:
            self._remaining[key] = max(self.grid.remaining(edge, layer), 0)
        return self._remaining[key]

    def can_fit(self, edges: Iterable[Edge2D], layer: int) -> bool:
        return all(self.remaining(e, layer) > 0 for e in edges)

    def consume(self, edges: Iterable[Edge2D], layer: int) -> None:
        """Occupy one track on each edge; counts an overflow event when a
        track was not actually available (fallback assignments)."""
        for e in edges:
            r = self.remaining(e, layer)
            if r <= 0:
                self.overflow_events += 1
            self._remaining[(e, layer)] = r - 1

    def release(self, edges: Iterable[Edge2D], layer: int) -> None:
        """Give back one track on each edge (inverse of :meth:`consume`)."""
        for e in edges:
            self._remaining[(e, layer)] = self.remaining(e, layer) + 1


def post_map(
    problem: PartitionProblem,
    x_values: Sequence[np.ndarray],
    ledger: CapacityLedger,
    mode: str = "paper",
    refine_passes: int = 2,
) -> List[int]:
    """Map fractional per-layer values to one layer per variable.

    ``x_values[k]`` aligns with ``problem.vars[k].layers``.  Returns the
    chosen layer per variable, and consumes the ledger accordingly.

    ``refine_passes`` rounds of capacity-aware coordinate descent polish the
    rounded solution against the partition objective — rounding noise of the
    relaxation is local, so a couple of sweeps recover it.
    """
    if mode not in ("paper", "greedy"):
        raise ValueError(f"unknown mapping mode {mode!r}")
    if len(x_values) != problem.num_vars:
        raise ValueError("x_values must align with problem.vars")

    overflow_before = ledger.overflow_events
    chosen: Dict[int, int] = {}
    with tracer.span("postmap.map", vars=problem.num_vars, mode=mode):
        if mode == "paper":
            _map_paper(problem, x_values, ledger, chosen)
        else:
            _map_greedy(problem, x_values, ledger, chosen)
        _fallback(problem, x_values, ledger, chosen)
        layers = [chosen[i] for i in range(problem.num_vars)]
        if refine_passes > 0:
            _refine(problem, layers, ledger, refine_passes)
    metrics.inc("postmap.calls")
    metrics.inc("postmap.segments", problem.num_vars)
    metrics.inc(
        "postmap.overflow_assignments", ledger.overflow_events - overflow_before
    )
    metrics.inc(
        "postmap.moved_segments",
        sum(
            1 for var, layer in zip(problem.vars, layers)
            if layer != var.current_layer
        ),
    )
    return layers


def _refine(
    problem: PartitionProblem,
    layers: List[int],
    ledger: CapacityLedger,
    passes: int,
) -> None:
    """Block coordinate descent at *net-fragment* granularity.

    Pair terms never span nets, so the pair graph inside a partition is a
    forest of per-net fragments; within one fragment the segments occupy
    disjoint edges, making an exact capacity-hard tree DP valid.  Sweeping
    fragments (rather than single segments) lets whole chains of a critical
    path move together — single-segment descent gets stuck when each move
    alone raises the via cost.
    """
    fragments = _pair_fragments(problem)
    for _ in range(passes):
        changed = False
        for roots, comp_vars in fragments:
            if _optimize_fragment(problem, layers, ledger, roots, comp_vars):
                changed = True
        if not changed:
            break


def _pair_fragments(problem: PartitionProblem):
    """Connected components of the pair forest: (root vars, member vars)."""
    children: Dict[int, List[Tuple[int, int]]] = {
        i: [] for i in range(problem.num_vars)
    }
    has_parent: Dict[int, bool] = {i: False for i in range(problem.num_vars)}
    for p, pair in enumerate(problem.pairs):
        children[pair.a].append((pair.b, p))
        has_parent[pair.b] = True

    seen: Dict[int, bool] = {}
    fragments = []
    for idx in range(problem.num_vars):
        if has_parent[idx] or idx in seen:
            continue
        comp = []
        stack = [idx]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen[v] = True
            comp.append(v)
            stack.extend(c for c, _ in children[v])
        fragments.append(([idx], comp))
    # `children` is needed by the DP; stash it on the function's return.
    return [
        (_FragmentPlan(roots, comp, children), comp)
        for roots, comp in fragments
    ]


class _FragmentPlan:
    def __init__(self, roots, comp, children):
        self.roots = roots
        self.comp = comp
        self.children = children


def _optimize_fragment(
    problem: PartitionProblem,
    layers: List[int],
    ledger: CapacityLedger,
    plan: "_FragmentPlan",
    comp_vars: List[int],
) -> bool:
    """Exact tree DP over one fragment under current ledger capacities."""
    # Free the fragment's own tracks, then choose jointly.
    for idx in comp_vars:
        ledger.release(_seg_edges(problem, idx), layers[idx])

    pair_cost: Dict[Tuple[int, int], "np.ndarray"] = {}
    for p, pair in enumerate(problem.pairs):
        pair_cost[(pair.a, pair.b)] = pair.cost

    dp: Dict[int, Dict[int, float]] = {}
    choice: Dict[Tuple[int, int, int], int] = {}

    def feasible_layers(idx: int) -> List[int]:
        var = problem.vars[idx]
        edges = _seg_edges(problem, idx)
        good = [l for l in var.layers if ledger.can_fit(edges, l)]
        # Always allow the current layer so a solution exists even under
        # pre-existing overflow (consuming it again is net neutral).
        if layers[idx] not in good:
            good.append(layers[idx])
        return good

    order: List[int] = []
    stack = list(plan.roots)
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(c for c, _ in plan.children[v])

    for v in reversed(order):
        var = problem.vars[v]
        dp[v] = {}
        for layer in feasible_layers(v):
            li = var.layer_index(layer)
            total = float(var.cost[li])
            for child, p in plan.children[v]:
                cvar = problem.vars[child]
                cost_matrix = problem.pairs[p].cost
                best = None
                best_layer = None
                for clayer in dp[child]:
                    c = dp[child][clayer] + float(
                        cost_matrix[li, cvar.layer_index(clayer)]
                    )
                    if best is None or c < best:
                        best, best_layer = c, clayer
                assert best is not None
                total += best
                choice[(v, layer, child)] = best_layer
            dp[v][layer] = total

    changed = False
    for root in plan.roots:
        best_layer = min(dp[root], key=dp[root].get)
        frontier = [(root, best_layer)]
        while frontier:
            v, layer = frontier.pop()
            if layers[v] != layer:
                layers[v] = layer
                changed = True
            for child, _ in plan.children[v]:
                frontier.append((child, choice[(v, layer, child)]))

    for idx in comp_vars:
        ledger.consume(_seg_edges(problem, idx), layers[idx])
    return changed


def _seg_edges(problem: PartitionProblem, idx: int) -> List[Edge2D]:
    return problem.vars[idx].segment.edges()


def _best_feasible_layer(
    problem: PartitionProblem,
    x_values: Sequence[np.ndarray],
    ledger: CapacityLedger,
    idx: int,
) -> Optional[int]:
    var = problem.vars[idx]
    edges = _seg_edges(problem, idx)
    best: Optional[Tuple[float, int]] = None
    for k, layer in enumerate(var.layers):
        if not ledger.can_fit(edges, layer):
            continue
        score = float(x_values[idx][k])
        if best is None or score > best[0] + _EPS:
            best = (score, layer)
    return None if best is None else best[1]


def _map_paper(
    problem: PartitionProblem,
    x_values: Sequence[np.ndarray],
    ledger: CapacityLedger,
    chosen: Dict[int, int],
) -> None:
    # Group variables by the edges their segments cross.
    edge_vars: Dict[Edge2D, List[int]] = {}
    for idx in range(problem.num_vars):
        for edge in _seg_edges(problem, idx):
            edge_vars.setdefault(edge, []).append(idx)

    grid = ledger.grid
    for edge in sorted(edge_vars):
        layers_desc = tuple(reversed(grid.layers_for_edge(edge)))
        for layer in layers_desc:
            budget = ledger.remaining(edge, layer)
            if budget <= 0:
                continue
            candidates = [
                idx
                for idx in edge_vars[edge]
                if idx not in chosen and layer in problem.vars[idx].layers
            ]
            # "Select the cap_e(j) highest x_ij on edge e" (Alg. 1 line 5).
            candidates.sort(
                key=lambda idx: (
                    -float(x_values[idx][problem.vars[idx].layers.index(layer)]),
                    float(problem.vars[idx].cost[problem.vars[idx].layers.index(layer)]),
                    problem.vars[idx].key,
                )
            )
            taken = 0
            for idx in candidates:
                if taken >= budget:
                    break
                edges = _seg_edges(problem, idx)
                if not ledger.can_fit(edges, layer):
                    continue
                if _best_feasible_layer(problem, x_values, ledger, idx) != layer:
                    continue
                ledger.consume(edges, layer)
                chosen[idx] = layer
                taken += 1


def _map_greedy(
    problem: PartitionProblem,
    x_values: Sequence[np.ndarray],
    ledger: CapacityLedger,
    chosen: Dict[int, int],
) -> None:
    """Ablation mode: one global pass ordered by relaxation value."""
    scored = [
        (float(x_values[idx][k]), idx, layer)
        for idx in range(problem.num_vars)
        for k, layer in enumerate(problem.vars[idx].layers)
    ]
    scored.sort(key=lambda t: (-t[0], problem.vars[t[1]].key, -t[2]))
    for _, idx, layer in scored:
        if idx in chosen:
            continue
        edges = _seg_edges(problem, idx)
        if ledger.can_fit(edges, layer):
            ledger.consume(edges, layer)
            chosen[idx] = layer


def _fallback(
    problem: PartitionProblem,
    x_values: Sequence[np.ndarray],
    ledger: CapacityLedger,
    chosen: Dict[int, int],
) -> None:
    """Assign anything left, preferring feasible layers, then best-x."""
    for idx in range(problem.num_vars):
        if idx in chosen:
            continue
        var = problem.vars[idx]
        layer = _best_feasible_layer(problem, x_values, ledger, idx)
        if layer is None:
            k = int(np.argmax(x_values[idx]))
            layer = var.layers[k]
        ledger.consume(_seg_edges(problem, idx), layer)
        chosen[idx] = layer
