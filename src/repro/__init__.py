"""repro — reproduction of "Incremental Layer Assignment for Critical Path
Timing" (Liu, Yu, Chowdhury, Pan; DAC 2016).

The package implements the paper's contribution (CPLA: partitioned SDP/ILP
critical-path layer assignment with post mapping) together with every
substrate it needs: the 3-D grid model, ISPD'08 benchmark I/O plus a
synthetic suite, a 2-D global router, Elmore timing, the TILA baseline, and
from-scratch SDP / MILP / min-cost-flow solvers.

Quick start::

    import repro

    bench = repro.prepare("adaptec1")          # route + initial assignment
    report = repro.run_method(bench, "sdp")    # the paper's method
    print(report.final_avg_tcp, report.final_max_tcp)

See ``examples/`` for full comparisons and ``benchmarks/`` for the scripts
regenerating each table and figure of the paper.
"""

from repro.analysis.runreport import RunReport
from repro.core.engine import CPLAConfig, CPLAEngine
from repro.ispd.benchmark import Benchmark
from repro.ispd.suite import SUITE, load_benchmark
from repro.pipeline import ComparisonResult, compare, prepare, run_method
from repro.tila.engine import TILAConfig, TILAEngine

__version__ = "1.0.0"

__all__ = [
    "Benchmark",
    "SUITE",
    "load_benchmark",
    "prepare",
    "run_method",
    "compare",
    "ComparisonResult",
    "RunReport",
    "CPLAConfig",
    "CPLAEngine",
    "TILAConfig",
    "TILAEngine",
    "__version__",
]
