"""ECO (engineering change order) subsystem: delta re-solves of a
committed layer assignment.

The source paper is *incremental* layer assignment, and this package is
where the increments live: a typed edit set (:mod:`repro.eco.edits`)
applied against a committed checkpoint, a dirtiness propagator that maps
edits to the partitions they actually touch, a restricted re-solve that
only pays for those partitions (:mod:`repro.eco.engine`), a
timing-closure loop driver (:mod:`repro.eco.closure`), and a knob-sweep
harness (:mod:`repro.eco.sweep`).
"""

from repro.eco.edits import (
    EcoEdit,
    EditError,
    edit_set_digest,
    edits_to_json,
    parse_edits,
)
from repro.eco.engine import EcoEngine, EcoReport, cold_replay_digest
from repro.eco.closure import (
    ClosureConfig,
    ClosureResult,
    render_closure,
    run_closure,
)
from repro.eco.sweep import (
    SweepConfig,
    SweepResult,
    render_sweep,
    run_sweep,
)

__all__ = [
    "ClosureConfig",
    "ClosureResult",
    "EcoEdit",
    "EditError",
    "EcoEngine",
    "EcoReport",
    "SweepConfig",
    "SweepResult",
    "cold_replay_digest",
    "edit_set_digest",
    "edits_to_json",
    "parse_edits",
    "render_closure",
    "render_sweep",
    "run_closure",
    "run_sweep",
]
