"""The timing-closure loop: release the worst nets, re-solve, repeat.

``repro closure`` drives a committed solve toward a better worst path by
iterating ECO rounds: each round issues one ``release_nets worst=k`` edit
through :class:`~repro.eco.engine.EcoEngine` (no physical change — the
round is purely "give the optimizer another shot at today's worst
paths"), and the loop stops when the relative ``Max(Tcp)`` gain of a
round falls below ``min_gain`` or after ``max_rounds`` rounds.

Because every round's re-solve is accepted max-first and rolled back
otherwise — and a release edit leaves the physical problem untouched —
the committed ``Max(Tcp)`` is **non-increasing across rounds** (pinned by
tests/test_eco.py).  Each round appends one ``closure:<method>`` entry to
the run ledger with an ``eco`` section and emits one ``closure.round``
trace span whose children are the round's dirty-partition solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.engine import CPLAConfig, CPLAEngine
from repro.eco.edits import EcoEdit
from repro.eco.engine import EcoEngine, EcoReport
from repro.obs import tracer
from repro.obs.ledger import SCHEMA, append_entry, fingerprint
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class ClosureConfig:
    """Knobs of the closure loop (the ``repro closure`` CLI mirrors them)."""

    benchmark: str
    scale: float = 1.0
    method: str = "sdp"
    critical_ratio: float = 0.005
    workers: int = 0
    exec_backend: str = "seq"
    release_k: int = 4         # worst-k nets released per round
    max_rounds: int = 5
    min_gain: float = 0.001    # relative Max(Tcp) gain to keep going

    def __post_init__(self) -> None:
        if self.release_k < 1:
            raise ValueError("release_k must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.min_gain < 0:
            raise ValueError("min_gain must be >= 0")


@dataclass
class ClosureResult:
    """Outcome of a closure run: the baseline solve plus all rounds."""

    benchmark: str
    method: str
    initial_max_tcp: float
    final_max_tcp: float
    initial_avg_tcp: float
    final_avg_tcp: float
    baseline_seconds: float
    rounds: List[EcoReport] = field(default_factory=list)
    stopped: str = ""  # "min_gain" | "max_rounds"

    @property
    def total_gain(self) -> float:
        if not self.initial_max_tcp:
            return 0.0
        return 1.0 - self.final_max_tcp / self.initial_max_tcp

    def to_json(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "method": self.method,
            "initial_max_tcp": self.initial_max_tcp,
            "final_max_tcp": self.final_max_tcp,
            "initial_avg_tcp": self.initial_avg_tcp,
            "final_avg_tcp": self.final_avg_tcp,
            "baseline_seconds": round(self.baseline_seconds, 4),
            "total_gain": self.total_gain,
            "stopped": self.stopped,
            "rounds": [r.to_json() for r in self.rounds],
        }


def round_entry(
    config: ClosureConfig,
    report: EcoReport,
    round_index: int,
    grid,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One ``closure:<method>`` run-ledger entry for one ECO round."""
    entry: Dict[str, Any] = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "benchmark": report.benchmark,
        "method": f"closure:{config.method}",
        "critical_ratio": config.critical_ratio,
        "fingerprint": fingerprint({
            "scale": config.scale,
            "critical_ratio": config.critical_ratio,
            "workers": config.workers,
            "exec_backend": config.exec_backend,
            "release_k": config.release_k,
            "max_rounds": config.max_rounds,
            "min_gain": config.min_gain,
        }),
        "quality": {
            "initial_avg_tcp": report.pre_avg_tcp,
            "final_avg_tcp": report.post_avg_tcp,
            "initial_max_tcp": report.pre_max_tcp,
            "final_max_tcp": report.post_max_tcp,
            "initial_via_overflow": grid.total_via_overflow(),
            "final_via_overflow": grid.total_via_overflow(),
            "initial_vias": grid.total_vias(),
            "final_vias": grid.total_vias(),
        },
        "runtime": {
            "total_seconds": round(report.seconds, 4),
            "phases": {},
            "worker_phases": {},
        },
        "convergence": {},
        "eco": {
            "round": round_index,
            "epoch": report.epoch,
            "num_edits": report.num_edits,
            "edit_digest": report.edit_digest,
            "released": report.released,
            "dirty_leaves": report.dirty.get("dirty_leaves", 0),
            "num_leaves": report.dirty.get("num_leaves", 0),
            "dirty_fraction": report.dirty_fraction,
            "accepted": report.accepted,
            "digest": report.digest,
        },
    }
    if trace:
        entry["trace"] = trace
    return entry


def run_closure(
    config: ClosureConfig,
    ledger_path: Optional[str] = None,
    trace_info: Optional[Dict[str, Any]] = None,
) -> ClosureResult:
    """Baseline solve + worst-k release rounds until the gain dries up.

    ``trace_info`` (``{"trace_id": ..., "file": ...}``) is stamped onto
    each round's ledger entry so ``obs show`` can point back at the
    exported span tree.
    """
    from repro.pipeline import prepare  # deferred: pipeline imports engines

    bench = prepare(config.benchmark, scale=config.scale)
    cpla = CPLAConfig(
        method=config.method,
        critical_ratio=config.critical_ratio,
        workers=config.workers,
        exec_backend=config.exec_backend,
    )
    with CPLAEngine(bench, cpla) as engine:
        with tracer.span(
            "closure.baseline", benchmark=bench.name, method=config.method
        ):
            baseline = engine.run()
        result = ClosureResult(
            benchmark=bench.name,
            method=config.method,
            initial_max_tcp=baseline.final_max_tcp,
            final_max_tcp=baseline.final_max_tcp,
            initial_avg_tcp=baseline.final_avg_tcp,
            final_avg_tcp=baseline.final_avg_tcp,
            baseline_seconds=baseline.runtime,
        )
        eco = EcoEngine(engine)
        previous_max = baseline.final_max_tcp
        result.stopped = "max_rounds"
        for round_index in range(1, config.max_rounds + 1):
            edit = EcoEdit(op="release_nets", worst=config.release_k)
            with tracer.span(
                "closure.round", round=round_index, worst=config.release_k
            ):
                report = eco.apply([edit], max_first=True)
            if round_index == 1:
                # The baseline report's Max(Tcp) covers only its own
                # released set; round 1's pre-stats are the true global
                # worst after the baseline commit — the honest zero point
                # of the loop's gain accounting.
                result.initial_max_tcp = report.pre_max_tcp
                result.initial_avg_tcp = report.pre_avg_tcp
            result.rounds.append(report)
            result.final_max_tcp = report.post_max_tcp
            result.final_avg_tcp = report.post_avg_tcp
            if ledger_path:
                append_entry(
                    ledger_path,
                    round_entry(
                        config, report, round_index, bench.grid, trace_info
                    ),
                )
            gain = (
                1.0 - report.post_max_tcp / previous_max
                if previous_max > 0 else 0.0
            )
            log.info(
                "closure round %d: Max(Tcp) %.1f -> %.1f (gain %.3f%%, "
                "dirty %d/%d leaves)",
                round_index, previous_max, report.post_max_tcp,
                100 * gain,
                report.dirty.get("dirty_leaves", 0),
                report.dirty.get("num_leaves", 0),
            )
            previous_max = report.post_max_tcp
            if gain < config.min_gain:
                result.stopped = "min_gain"
                break
    return result


def render_closure(result: ClosureResult) -> str:
    """Terminal summary of a closure run."""
    lines = [
        f"closure {result.benchmark}/{result.method}: "
        f"{len(result.rounds)} rounds, stopped on {result.stopped}",
        f"  baseline solve        {result.baseline_seconds:8.2f}s",
        f"  Max(Tcp)  {result.initial_max_tcp:>12.2f} -> "
        f"{result.final_max_tcp:>12.2f}  ({result.total_gain:+.2%} gain)",
        f"  Avg(Tcp)  {result.initial_avg_tcp:>12.2f} -> "
        f"{result.final_avg_tcp:>12.2f}",
    ]
    for i, r in enumerate(result.rounds, 1):
        lines.append(
            f"  round {i}: Max(Tcp) {r.pre_max_tcp:.1f} -> "
            f"{r.post_max_tcp:.1f}  dirty {r.dirty.get('dirty_leaves', 0)}"
            f"/{r.dirty.get('num_leaves', 0)} leaves "
            f"({r.dirty_fraction:.0%})  {r.seconds:.2f}s  "
            + ("accepted" if r.accepted else "rolled back")
        )
    return "\n".join(lines)
