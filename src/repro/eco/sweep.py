"""Knob-grid sweep: the quality-vs-runtime frontier of the CPLA engine.

``repro sweep`` runs the full pipeline once per point of a small knob
grid — partition size, criticality exponent (the paper's timing-weight
alpha), ADMM rho, and release ratio — and marks the points on the
Pareto frontier of ``(final Avg(Tcp), runtime)``: a point survives if no
other point is at least as good on both axes and strictly better on one.

Every point appends one ``sweep:<method>`` entry to the run ledger with
a ``sweep`` section (knobs + frontier flag), so ``repro obs show`` and
``repro obs diff`` render sweep points exactly like any other run.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine import CPLAConfig, CPLAEngine
from repro.obs import tracer
from repro.obs.ledger import SCHEMA, append_entry, fingerprint
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class SweepConfig:
    """The knob grid (the ``repro sweep`` CLI mirrors these)."""

    benchmark: str
    scale: float = 1.0
    method: str = "sdp"
    workers: int = 0
    exec_backend: str = "seq"
    partition_sizes: Tuple[int, ...] = (10,)
    alphas: Tuple[float, ...] = (2.0,)      # criticality exponent
    rhos: Tuple[float, ...] = (1.0,)        # ADMM rho
    ratios: Tuple[float, ...] = (0.005,)    # release (critical) ratio

    def points(self) -> List[Dict[str, float]]:
        return [
            {
                "partition_size": p,
                "alpha": a,
                "rho": r,
                "ratio": c,
            }
            for p, a, r, c in itertools.product(
                self.partition_sizes, self.alphas, self.rhos, self.ratios
            )
        ]


@dataclass
class SweepPoint:
    """One grid point's knobs and outcome."""

    knobs: Dict[str, float]
    final_avg_tcp: float
    final_max_tcp: float
    initial_avg_tcp: float
    initial_max_tcp: float
    seconds: float
    pareto: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "knobs": dict(self.knobs),
            "final_avg_tcp": self.final_avg_tcp,
            "final_max_tcp": self.final_max_tcp,
            "initial_avg_tcp": self.initial_avg_tcp,
            "initial_max_tcp": self.initial_max_tcp,
            "seconds": round(self.seconds, 4),
            "pareto": self.pareto,
        }


@dataclass
class SweepResult:
    benchmark: str
    method: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def frontier(self) -> List[SweepPoint]:
        return [p for p in self.points if p.pareto]

    def to_json(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "method": self.method,
            "points": [p.to_json() for p in self.points],
        }


def mark_frontier(points: List[SweepPoint]) -> None:
    """Flag the Pareto-optimal points of (final Avg(Tcp), runtime)."""
    for p in points:
        p.pareto = not any(
            q is not p
            and q.final_avg_tcp <= p.final_avg_tcp
            and q.seconds <= p.seconds
            and (q.final_avg_tcp < p.final_avg_tcp or q.seconds < p.seconds)
            for q in points
        )


def _point_entry(
    config: SweepConfig,
    point: SweepPoint,
    index: int,
    total: int,
    grid,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "benchmark": config.benchmark,
        "method": f"sweep:{config.method}",
        "critical_ratio": point.knobs["ratio"],
        "fingerprint": fingerprint({
            "scale": config.scale,
            "workers": config.workers,
            "exec_backend": config.exec_backend,
            **point.knobs,
        }),
        "quality": {
            "initial_avg_tcp": point.initial_avg_tcp,
            "final_avg_tcp": point.final_avg_tcp,
            "initial_max_tcp": point.initial_max_tcp,
            "final_max_tcp": point.final_max_tcp,
            "initial_via_overflow": grid.total_via_overflow(),
            "final_via_overflow": grid.total_via_overflow(),
            "initial_vias": grid.total_vias(),
            "final_vias": grid.total_vias(),
        },
        "runtime": {
            "total_seconds": round(point.seconds, 4),
            "phases": {},
            "worker_phases": {},
        },
        "convergence": {},
        "sweep": {
            "point": index,
            "points": total,
            "knobs": dict(point.knobs),
            "pareto": point.pareto,
        },
    }
    if trace:
        entry["trace"] = trace
    return entry


def run_sweep(
    config: SweepConfig,
    ledger_path: Optional[str] = None,
    trace_info: Optional[Dict[str, Any]] = None,
) -> SweepResult:
    """Run the grid; mark the frontier; append one entry per point.

    Entries are appended only after the whole grid ran (the frontier flag
    needs every point), in grid order.
    """
    from repro.pipeline import prepare  # deferred: pipeline imports engines

    result = SweepResult(benchmark=config.benchmark, method=config.method)
    grid_points = config.points()
    last_grid = None
    for index, knobs in enumerate(grid_points, 1):
        with tracer.span(
            "sweep.point", index=index,
            partition_size=knobs["partition_size"], alpha=knobs["alpha"],
        ):
            bench = prepare(config.benchmark, scale=config.scale)
            cpla = CPLAConfig(
                method=config.method,
                critical_ratio=knobs["ratio"],
                workers=config.workers,
                exec_backend=config.exec_backend,
                max_segments_per_partition=int(knobs["partition_size"]),
                criticality_exponent=knobs["alpha"],
            )
            cpla.sdp.settings.rho = knobs["rho"]
            with CPLAEngine(bench, cpla) as engine:
                report = engine.run()
        result.points.append(SweepPoint(
            knobs=knobs,
            final_avg_tcp=report.final_avg_tcp,
            final_max_tcp=report.final_max_tcp,
            initial_avg_tcp=report.initial_avg_tcp,
            initial_max_tcp=report.initial_max_tcp,
            seconds=report.runtime,
        ))
        last_grid = bench.grid
        log.info(
            "sweep point %d/%d %s: Avg(Tcp) %.1f, %.2fs",
            index, len(grid_points), knobs,
            report.final_avg_tcp, report.runtime,
        )
    mark_frontier(result.points)
    if ledger_path:
        for index, point in enumerate(result.points, 1):
            append_entry(
                ledger_path,
                _point_entry(
                    config, point, index, len(result.points), last_grid,
                    trace_info,
                ),
            )
    return result


def render_sweep(result: SweepResult) -> str:
    """Terminal table of the sweep: one row per point, frontier starred."""
    lines = [
        f"sweep {result.benchmark}/{result.method}: "
        f"{len(result.points)} points, {len(result.frontier)} on frontier",
        f"  {'':2} {'part':>5} {'alpha':>6} {'rho':>5} {'ratio':>7} "
        f"{'Avg(Tcp)':>12} {'Max(Tcp)':>12} {'seconds':>8}",
    ]
    for p in result.points:
        k = p.knobs
        lines.append(
            f"  {'*' if p.pareto else '':2} {int(k['partition_size']):>5} "
            f"{k['alpha']:>6g} {k['rho']:>5g} {k['ratio']:>7g} "
            f"{p.final_avg_tcp:>12.2f} {p.final_max_tcp:>12.2f} "
            f"{p.seconds:>8.2f}"
        )
    lines.append("  (* = on the quality-vs-runtime Pareto frontier)")
    return "\n".join(lines)
