"""The ECO engine: apply a typed edit set, re-solve only what it dirtied.

:class:`EcoEngine` wraps a committed :class:`~repro.core.engine.CPLAEngine`
state (typically a resident engine that has already served a full solve)
and applies edit sets against it:

1. **apply the physical edits** in order — reroutes re-run the 2-D router
   and the initial DP assigner for the named nets, resizes scale pin
   capacitances in place, capacity changes adjust the grid's per-edge
   track counts;
2. **propagate dirtiness** — every edited net's segments are dirty, plus
   any released segment crossing a tile an edit touched;
3. **restricted re-solve** — one :meth:`CPLAEngine.eco_iterate` pass whose
   partition geometry covers the whole released set but which extracts
   and solves only the dirty leaves (clean leaves keep their layers and
   their tracks stay consumed in the shared capacity ledger);
4. **accept or roll back** the re-solve on ``(Max, Avg)`` Tcp — the edits
   themselves always persist (they are the new reality); only the layer
   movement is conditional;
5. **commit**: the state epoch increments and the post-edit assignment
   becomes the new checkpoint.

Equivalence guarantee
---------------------
Every step above is a deterministic function of the committed state and
the edit list, shared verbatim between the incremental path and
:func:`cold_replay_digest` (fresh prepare -> full solve -> same edit
batches).  Combined with the repo's warm-rerun == fresh-run and
seq/pool/dist/batch digest-identity invariants, an incremental ECO apply
on a warm resident produces the bit-identical ``sha256`` assignment
digest a cold fresh-state replay does — pinned by tests/test_eco.py and
gated by the ``eco-smoke`` CI job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.engine import CPLAConfig, CPLAEngine, _is_improvement
from repro.eco.edits import EcoEdit, EditError, edit_set_digest, edits_to_json
from repro.grid.layers import Direction
from repro.ispd.request import assignment_digest
from repro.obs import metrics, tracer
from repro.route.net import Net
from repro.route.occupancy import release_net
from repro.route.tree import build_topology
from repro.timing.critical import critical_path_stats
from repro.utils import WallClock, get_logger

log = get_logger(__name__)

SegKey = Tuple[int, int]
Tile = Tuple[int, int]


@dataclass
class EcoReport:
    """Outcome of one committed ECO apply (one epoch)."""

    benchmark: str
    epoch: int
    edit_digest: str
    num_edits: int
    edited_nets: List[int]
    released: int
    dirty: Dict[str, Any] = field(default_factory=dict)
    pre_avg_tcp: float = 0.0
    pre_max_tcp: float = 0.0
    post_avg_tcp: float = 0.0
    post_max_tcp: float = 0.0
    accepted: bool = False
    digest: str = ""
    seconds: float = 0.0

    @property
    def dirty_fraction(self) -> float:
        return float(self.dirty.get("dirty_fraction", 0.0))

    def to_json(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "epoch": self.epoch,
            "edit_digest": self.edit_digest,
            "num_edits": self.num_edits,
            "edited_nets": list(self.edited_nets),
            "released": self.released,
            "dirty": dict(self.dirty),
            "pre_avg_tcp": self.pre_avg_tcp,
            "pre_max_tcp": self.pre_max_tcp,
            "post_avg_tcp": self.post_avg_tcp,
            "post_max_tcp": self.post_max_tcp,
            "accepted": self.accepted,
            "digest": self.digest,
            "seconds": round(self.seconds, 6),
        }


class EcoEngine:
    """Applies edit sets to a committed CPLA state, epoch by epoch."""

    def __init__(self, engine: CPLAEngine) -> None:
        if engine.config.method != "sdp" and engine.config.method != "ilp":
            raise ValueError("EcoEngine requires a CPLA engine (sdp or ilp)")
        self.engine = engine
        self.bench = engine.bench
        self.grid = engine.grid
        self.epoch = 0
        self._nets: Dict[int, Net] = {n.id: n for n in self.bench.nets}

    # -- edit application --------------------------------------------------

    def _net(self, net_id: int) -> Net:
        net = self._nets.get(net_id)
        if net is None:
            raise EditError(f"unknown net id {net_id}")
        return net

    def _apply_reroute(self, edit: EcoEdit, affected: Set[Tile]) -> None:
        # The 2-D reroute runs on a fresh router: it sees the grid's
        # (possibly edited) capacities but zero 2-D usage, so the path is
        # a deterministic function of the grid alone.  The DP assigner
        # that follows sees the true 3-D occupancy of every other net.
        from repro.route.assignment import InitialAssigner
        from repro.route.router import GlobalRouter

        nets = [self._net(i) for i in edit.nets]
        for net in nets:
            for seg in net.topology.segments:
                affected.update(seg.tiles())
            release_net(self.grid, net.topology)
        GlobalRouter(self.grid).route(nets)
        for net in nets:
            build_topology(net)
        # assign() runs the per-net DP and commits each net itself.
        InitialAssigner(self.grid).assign(nets)
        for net in nets:
            for seg in net.topology.segments:
                affected.update(seg.tiles())
        self.engine.elmore.mark_dirty(edit.nets)

    def _apply_resize(self, edit: EcoEdit) -> None:
        for net_id in edit.nets:
            net = self._net(net_id)
            for pin in net.pins:
                # Pin is frozen; topo.pins_at holds these same objects, so
                # an in-place capacitance change stays consistent.
                object.__setattr__(
                    pin, "capacitance", pin.capacitance * edit.factor
                )
        # RC edits are invisible to the timing cache's layer fingerprints —
        # the explicit dirty mark is what makes them take effect.
        self.engine.elmore.mark_dirty(edit.nets)

    def _apply_capacity(self, edit: EcoEdit, affected: Set[Tile]) -> None:
        tile = edit.tile or (0, 0)
        if not self.grid.contains_tile(tile):
            raise EditError(f"capacity_change: tile {list(tile)} outside the "
                            f"{self.grid.nx_tiles}x{self.grid.ny_tiles} grid")
        if edit.layer > self.grid.stack.num_layers:
            raise EditError(
                f"capacity_change: layer {edit.layer} exceeds the "
                f"{self.grid.stack.num_layers}-layer stack"
            )
        direction = self.grid.stack.direction_of(edit.layer)
        x, y = tile
        candidates = (
            [("H", x - 1, y), ("H", x, y)]
            if direction is Direction.HORIZONTAL
            else [("V", x, y - 1), ("V", x, y)]
        )
        edges = [e for e in candidates if self.grid.contains_edge(e)]
        if not edges:
            raise EditError(
                f"capacity_change: tile {list(tile)} has no layer-{edit.layer} "
                "edges (grid too small in that direction)"
            )
        for edge in edges:
            current = self.grid.capacity(edge, edit.layer)
            self.grid.set_capacity(
                edge, edit.layer, max(0, current + edit.delta)
            )
            _, x2, y2 = edge
            affected.add((x2, y2))
            affected.add((x2 + 1, y2) if edge[0] == "H" else (x2, y2 + 1))

    def _resolve_release(self, edit: EcoEdit) -> Tuple[int, ...]:
        if not edit.worst:
            for net_id in edit.nets:
                self._net(net_id)
            return edit.nets
        timings = self.engine.elmore.analyze_all(self.bench.nets)
        eligible = [n for n in self.bench.nets if timings[n.id].sink_delays]
        eligible.sort(key=lambda n: (-timings[n.id].critical_delay, n.id))
        return tuple(n.id for n in eligible[: edit.worst])

    def _apply_edits(
        self, edits: Sequence[EcoEdit]
    ) -> Tuple[Set[int], Set[Tile]]:
        """Apply the physical edits in order; returns (touched ids, tiles).

        ``worst``-k releases are resolved against the state *at their
        position in the sequence* — a reroute earlier in the list can
        change which nets are worst — which keeps replay deterministic.
        """
        touched: Set[int] = set()
        affected: Set[Tile] = set()
        for edit in edits:
            if edit.op == "net_reroute":
                self._apply_reroute(edit, affected)
                touched.update(edit.nets)
            elif edit.op == "net_resize":
                self._apply_resize(edit)
                touched.update(edit.nets)
            elif edit.op == "capacity_change":
                self._apply_capacity(edit, affected)
            else:  # release_nets
                touched.update(self._resolve_release(edit))
        return touched, affected

    # -- dirtiness propagation ---------------------------------------------

    def _released_set(self, touched: Set[int]) -> List[Net]:
        """The working set: the usual critical selection plus edited extras.

        Selection order first (the engine's criticality-ordered release),
        then any touched net not already selected, in id order — stable,
        so the partition geometry of incremental and replay agree.
        """
        engine = self.engine
        critical, _ = engine.selector.select(
            self.bench.nets, engine.config.critical_ratio
        )
        seen = {n.id for n in critical}
        extras = [
            self._net(i) for i in sorted(touched) if i not in seen
        ]
        return critical + extras

    def _dirty_keys(
        self, released: Sequence[Net], touched: Set[int], affected: Set[Tile]
    ) -> Set[SegKey]:
        """Edited nets dirty wholesale; others where they cross edited tiles."""
        dirty: Set[SegKey] = set()
        for net in released:
            if net.id in touched:
                dirty.update((net.id, seg.id) for seg in net.topology.segments)
            elif affected:
                for seg in net.topology.segments:
                    if any(t in affected for t in seg.tiles()):
                        dirty.add((net.id, seg.id))
        return dirty

    # -- the apply/commit cycle --------------------------------------------

    def apply(
        self, edits: Sequence[EcoEdit], max_first: bool = True
    ) -> EcoReport:
        """Apply one edit set, re-solve the dirtied partitions, commit.

        Always commits (the epoch increments even when the re-solve is
        rolled back — the *edits* are permanent, only the layer movement
        is conditional).  ``max_first`` accepts on ``(Max, Avg)`` Tcp,
        the closure loop's ordering; pass ``False`` for average-first.
        """
        engine = self.engine
        clock = WallClock()
        report = EcoReport(
            benchmark=self.bench.name,
            epoch=self.epoch + 1,
            edit_digest=edit_set_digest(edits),
            num_edits=len(edits),
            edited_nets=[],
            released=0,
        )
        with tracer.span(
            "eco.apply", epoch=report.epoch, edits=len(edits)
        ) as _:
            with clock.phase("edits"):
                touched, affected = self._apply_edits(edits)
            report.edited_nets = sorted(touched)
            released = self._released_set(touched)
            report.released = len(released)
            dirty = self._dirty_keys(released, touched, affected)

            with clock.phase("timing"):
                timings = engine.elmore.analyze_all(released)
            pre = critical_path_stats(timings, released)
            report.pre_avg_tcp, report.pre_max_tcp = pre

            if dirty:
                snapshot = engine._snapshot_layers(released)
                stats = engine.eco_iterate(
                    released, dirty, clock, max_first=max_first
                )
                report.dirty = dict(engine.last_eco or {})
                post = (stats.avg_tcp, stats.max_tcp)
                if _is_improvement(post, pre, max_first):
                    report.accepted = True
                    report.post_avg_tcp, report.post_max_tcp = post
                else:
                    with clock.phase("rollback"):
                        engine._restore_layers(released, snapshot)
                    report.post_avg_tcp, report.post_max_tcp = pre
            else:
                # Nothing dirtied (e.g. a capacity edit in an empty corner):
                # the edits still commit, the solve is a no-op.
                report.dirty = {
                    "num_leaves": 0, "dirty_leaves": 0,
                    "dirty_fraction": 0.0, "dirty_segments": 0,
                    "num_segments": 0,
                }
                report.post_avg_tcp, report.post_max_tcp = pre

        self.epoch += 1
        report.digest = assignment_digest(self.bench)
        report.seconds = clock.total
        metrics.inc("eco.applies")
        metrics.inc("eco.edits", len(edits))
        if report.accepted:
            metrics.inc("eco.accepted")
        metrics.set_gauge("eco.dirty_fraction", report.dirty_fraction)
        log.info(
            "eco epoch %d: %d edits, %d/%d dirty leaves, "
            "Max(Tcp) %.1f -> %.1f (%s)",
            report.epoch, len(edits),
            report.dirty.get("dirty_leaves", 0),
            report.dirty.get("num_leaves", 0),
            report.pre_max_tcp, report.post_max_tcp,
            "accepted" if report.accepted else "rolled back",
        )
        return report


def cold_replay_digest(
    benchmark: str,
    batches: Sequence[Sequence[EcoEdit]],
    scale: float = 1.0,
    critical_ratio: float = 0.005,
    workers: int = 0,
    exec_backend: str = "seq",
    max_first: bool = True,
) -> str:
    """Fresh-state replay of a full ECO history; returns the final digest.

    Prepares the benchmark from scratch, runs the full solve, then applies
    every edit batch through a fresh :class:`EcoEngine` — no warm caches,
    no resident state.  The incremental path must land on the identical
    digest; this is the cold side of the equivalence gate.
    """
    from repro.pipeline import prepare  # deferred: pipeline imports engines

    bench = prepare(benchmark, scale=scale)
    config = CPLAConfig(
        method="sdp",
        critical_ratio=critical_ratio,
        workers=workers,
        exec_backend=exec_backend,
    )
    with CPLAEngine(bench, config) as engine:
        engine.run()
        eco = EcoEngine(engine)
        for batch in batches:
            eco.apply(list(batch), max_first=max_first)
        return assignment_digest(bench)
