"""Typed ECO edit sets and their canonical wire form.

An edit set is an ordered list of edits, each one of four kinds:

- ``net_reroute``    — throw away the named nets' 2-D routes and re-route
  them on the current grid (topology and initial layers rebuilt);
- ``net_resize``     — scale the named nets' pin capacitances by a factor
  (an RC perturbation: a driver/sink was resized downstream of us);
- ``capacity_change``— add/remove routing tracks on one tile's edges of
  one layer (a blockage appeared, or a column was freed);
- ``release_nets``   — no physical change; force the named nets (or the
  ``worst`` k nets by current path delay) into the dirty set so their
  partitions re-solve.  This is the closure loop's round primitive.

Edits are order-sensitive and deterministic: applying the same edit list
to the same committed state always produces the same post-edit problem,
which is what makes the incremental-vs-cold digest equivalence checkable.

Wire form (inside a ``repro.eco_request/v1`` body)::

    {"op": "net_reroute",    "nets": [3, 17]}
    {"op": "net_resize",     "nets": [3], "factor": 1.5}
    {"op": "capacity_change","tile": [4, 5], "layer": 3, "delta": -2}
    {"op": "release_nets",   "nets": [1, 2]}
    {"op": "release_nets",   "worst": 4}

``edit_set_digest`` is the canonical sha256 of the list — the serving
layer folds it into the request dedup key so identical deltas against the
same epoch batch together.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

EDIT_OPS = ("net_reroute", "net_resize", "capacity_change", "release_nets")

# Guardrails on one edit set — an ECO is a delta, not a rewrite.
MAX_EDITS = 64
MAX_NETS_PER_EDIT = 256


class EditError(ValueError):
    """A malformed edit set (maps to HTTP 400 on the serve path)."""


@dataclass(frozen=True)
class EcoEdit:
    """One typed edit of an ECO delta."""

    op: str
    nets: Tuple[int, ...] = ()
    factor: float = 1.0           # net_resize only
    tile: Optional[Tuple[int, int]] = None  # capacity_change only
    layer: int = 0                # capacity_change only
    delta: int = 0                # capacity_change only (tracks, +/-)
    worst: int = 0                # release_nets only: pick worst-k nets

    def to_json(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"op": self.op}
        if self.op == "net_reroute":
            body["nets"] = list(self.nets)
        elif self.op == "net_resize":
            body["nets"] = list(self.nets)
            body["factor"] = self.factor
        elif self.op == "capacity_change":
            body["tile"] = list(self.tile or ())
            body["layer"] = self.layer
            body["delta"] = self.delta
        elif self.op == "release_nets":
            if self.worst:
                body["worst"] = self.worst
            else:
                body["nets"] = list(self.nets)
        return body


def _net_list(body: Dict[str, Any]) -> Tuple[int, ...]:
    nets = body.get("nets")
    if (
        not isinstance(nets, (list, tuple))
        or not nets
        or not all(isinstance(n, int) and not isinstance(n, bool) and n >= 0
                   for n in nets)
    ):
        raise EditError(f"{body.get('op')}: 'nets' must be a non-empty list "
                        "of non-negative net ids")
    if len(nets) > MAX_NETS_PER_EDIT:
        raise EditError(
            f"{body.get('op')}: {len(nets)} nets exceeds the per-edit cap "
            f"of {MAX_NETS_PER_EDIT}"
        )
    # Order-normalized: the edit means "this set of nets", and normalizing
    # keeps the digest (hence serve-side dedup) insensitive to list order.
    return tuple(sorted(set(nets)))


def parse_edit(body: Any) -> EcoEdit:
    """Validate one wire-form edit (raises :class:`EditError`)."""
    if not isinstance(body, dict):
        raise EditError("each edit must be a JSON object")
    op = body.get("op")
    if op not in EDIT_OPS:
        raise EditError(f"unknown edit op {op!r} (one of {EDIT_OPS})")
    known = {
        "net_reroute": {"op", "nets"},
        "net_resize": {"op", "nets", "factor"},
        "capacity_change": {"op", "tile", "layer", "delta"},
        "release_nets": {"op", "nets", "worst"},
    }[op]
    unknown = sorted(set(body) - known)
    if unknown:
        raise EditError(f"{op}: unknown keys {unknown}")
    if op == "net_reroute":
        return EcoEdit(op=op, nets=_net_list(body))
    if op == "net_resize":
        factor = body.get("factor")
        if (
            isinstance(factor, bool)
            or not isinstance(factor, (int, float))
            or not 0.01 <= float(factor) <= 100.0
        ):
            raise EditError("net_resize: 'factor' must be a number in "
                            "[0.01, 100]")
        return EcoEdit(op=op, nets=_net_list(body), factor=float(factor))
    if op == "capacity_change":
        tile = body.get("tile")
        if (
            not isinstance(tile, (list, tuple)) or len(tile) != 2
            or not all(isinstance(c, int) and not isinstance(c, bool)
                       and c >= 0 for c in tile)
        ):
            raise EditError("capacity_change: 'tile' must be [x, y] with "
                            "non-negative integers")
        layer = body.get("layer")
        if not isinstance(layer, int) or isinstance(layer, bool) or layer < 1:
            raise EditError("capacity_change: 'layer' must be an integer >= 1")
        delta = body.get("delta")
        if not isinstance(delta, int) or isinstance(delta, bool) or delta == 0:
            raise EditError("capacity_change: 'delta' must be a non-zero "
                            "integer (tracks added or removed)")
        return EcoEdit(
            op=op, tile=(int(tile[0]), int(tile[1])),
            layer=int(layer), delta=int(delta),
        )
    # release_nets: either an explicit id list or worst-k.
    worst = body.get("worst", 0)
    if worst:
        if not isinstance(worst, int) or isinstance(worst, bool) or worst < 1:
            raise EditError("release_nets: 'worst' must be an integer >= 1")
        if "nets" in body:
            raise EditError("release_nets: give either 'nets' or 'worst', "
                            "not both")
        return EcoEdit(op=op, worst=int(worst))
    return EcoEdit(op=op, nets=_net_list(body))


def parse_edits(payload: Any) -> List[EcoEdit]:
    """Validate a whole edit list (raises :class:`EditError`)."""
    if not isinstance(payload, (list, tuple)) or not payload:
        raise EditError("'edits' must be a non-empty list of edit objects")
    if len(payload) > MAX_EDITS:
        raise EditError(
            f"{len(payload)} edits exceeds the per-request cap of {MAX_EDITS}"
        )
    return [parse_edit(item) for item in payload]


def edits_to_json(edits: Sequence[EcoEdit]) -> List[Dict[str, Any]]:
    return [edit.to_json() for edit in edits]


def edit_set_digest(edits: Sequence[EcoEdit]) -> str:
    """Canonical sha256 of an edit list (order-sensitive by design)."""
    blob = json.dumps(
        edits_to_json(edits), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return "sha256:" + hashlib.sha256(blob).hexdigest()
