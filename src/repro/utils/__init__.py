"""Shared utilities: logging, timing, and seeded randomness.

These helpers are intentionally small and dependency-free; every other
subpackage of :mod:`repro` may import them without creating cycles.
"""

from repro.utils.logging import get_logger
from repro.utils.rng import make_rng
from repro.utils.timer import Timer, WallClock

__all__ = ["get_logger", "make_rng", "Timer", "WallClock"]
