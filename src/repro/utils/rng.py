"""Deterministic random-number-generator construction.

All stochastic components of the library (synthetic benchmark generation,
router tie-breaking, test fixtures) derive their generators through
:func:`make_rng` so that a single integer seed reproduces an entire run.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, str, None]


def _normalize_seed(seed: SeedLike) -> Optional[int]:
    """Map a seed-like value to a non-negative integer (or ``None``)."""
    if seed is None:
        return None
    if isinstance(seed, int):
        return seed & 0xFFFFFFFF
    if isinstance(seed, str):
        # Stable across processes and Python versions (unlike hash()).
        return zlib.crc32(seed.encode("utf-8"))
    raise TypeError(f"unsupported seed type: {type(seed).__name__}")


def make_rng(seed: SeedLike = None, *streams: SeedLike) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from a seed plus sub-streams.

    ``make_rng(7, "router", net_id)`` yields an independent stream per
    (seed, component, item) triple, so adding randomness to one component
    never perturbs another.
    """
    parts = [_normalize_seed(seed)]
    parts.extend(_normalize_seed(s) for s in streams)
    material = [p for p in parts if p is not None]
    if not material:
        return np.random.default_rng()
    return np.random.default_rng(np.random.SeedSequence(material))
