"""Logging helpers.

The library never configures the root logger; it only creates namespaced
children under ``"repro"`` so applications control verbosity.  The CLI calls
:func:`configure_cli_logging` to get human-readable output.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the ``repro`` hierarchy.

    ``get_logger("core.engine")`` returns the ``repro.core.engine`` logger.
    Passing a name that already starts with ``repro`` keeps it unchanged, so
    modules may simply pass ``__name__``.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(_ROOT_NAME + "." + name)


def configure_cli_logging(verbose: bool = False) -> None:
    """Attach a stream handler with a compact format to the repro root logger.

    Safe to call repeatedly; only one handler is installed.
    """
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(logging.DEBUG if verbose else logging.INFO)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("[%(levelname).1s %(name)s] %(message)s")
        )
        root.addHandler(handler)
