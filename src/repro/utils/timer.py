"""Wall-clock timing helpers used by the experiment harness.

The paper reports per-method CPU seconds; :class:`Timer` is the context
manager used around every solver call, and :class:`WallClock` accumulates
named phases for the run reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    500 < 500500
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class WallClock:
    """Accumulate elapsed seconds into named phases.

    >>> clock = WallClock()
    >>> with clock.phase("solve"):
    ...     pass
    >>> "solve" in clock.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)

    def phase(self, name: str) -> "_Phase":
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def report(self) -> str:
        """Render phase totals as aligned text lines."""
        if not self.totals:
            return "(no phases recorded)"
        width = max(len(k) for k in self.totals)
        lines = [
            f"{name:<{width}}  {seconds:8.3f}s"
            for name, seconds in sorted(self.totals.items(), key=lambda kv: -kv[1])
        ]
        lines.append(f"{'total':<{width}}  {self.total:8.3f}s")
        return "\n".join(lines)


class _Phase:
    def __init__(self, clock: WallClock, name: str) -> None:
        self._clock = clock
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> Timer:
        return self._timer.__enter__()

    def __exit__(self, *exc_info) -> None:
        self._timer.__exit__(*exc_info)
        self._clock.add(self._name, self._timer.elapsed)
