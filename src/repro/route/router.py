"""Congestion-aware 2-D global router.

Produces the "initial routing" input of Problem 1 (CPLA).  The router works
on the 2-D projection of the grid (per-edge capacity summed over the layers
of matching direction) in the standard two-phase style:

1. *Pattern routing*: every net's Steiner topology is embedded connection by
   connection, choosing the cheapest L- or Z-shaped monotone path under the
   current congestion cost.
2. *Negotiated rip-up-and-reroute*: nets crossing overflowed edges are torn
   up and maze-rerouted with history-augmented costs (PathFinder style) for a
   configurable number of rounds.

The router fills ``net.route_edges``; building the segment tree is the
caller's job (:func:`repro.route.tree.build_topology`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.grid.graph import Edge2D, GridGraph, Tile, edge_between, edge_endpoints
from repro.grid.layers import Direction
from repro.obs import metrics, tracer
from repro.route.net import Net
from repro.route.steiner import steiner_tree_edges
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class RouterConfig:
    """Tuning knobs of the global router."""

    rounds: int = 3
    overflow_penalty: float = 8.0
    history_increment: float = 1.5
    bend_penalty: float = 0.4
    steiner_refine: bool = True
    maze_expansion_limit: int = 200_000

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("need at least one routing round")


class GlobalRouter:
    """Routes nets on the 2-D projection of a :class:`GridGraph`."""

    def __init__(self, grid: GridGraph, config: Optional[RouterConfig] = None) -> None:
        self.grid = grid
        self.config = config or RouterConfig()
        nx_t, ny_t = grid.nx_tiles, grid.ny_tiles
        self._cap = {
            "H": np.zeros((max(nx_t - 1, 0), ny_t), dtype=np.int64),
            "V": np.zeros((nx_t, max(ny_t - 1, 0)), dtype=np.int64),
        }
        for layer in grid.stack:
            key = "H" if layer.direction is Direction.HORIZONTAL else "V"
            self._cap[key] += grid.capacity_array(layer.index)
        self._usage = {k: np.zeros_like(v) for k, v in self._cap.items()}
        self._history = {k: np.zeros(v.shape, dtype=np.float64) for k, v in self._cap.items()}

    # -- cost model ---------------------------------------------------------

    def _edge_cost(self, edge: Edge2D) -> float:
        orient, x, y = edge
        cap = self._cap[orient][x, y]
        use = self._usage[orient][x, y]
        cost = 1.0 + self._history[orient][x, y]
        if use + 1 > cap:
            cost += self.config.overflow_penalty * (use + 1 - cap)
        return cost

    def _path_cost(self, tiles: Sequence[Tile]) -> float:
        cost = 0.0
        bends = 0
        last_axis = None
        for a, b in zip(tiles, tiles[1:]):
            edge = edge_between(a, b)
            cost += self._edge_cost(edge)
            axis = edge[0]
            if last_axis is not None and axis != last_axis:
                bends += 1
            last_axis = axis
        return cost + self.config.bend_penalty * bends

    # -- usage bookkeeping ----------------------------------------------------

    def _occupy(self, edges: Sequence[Edge2D], delta: int) -> None:
        for orient, x, y in edges:
            self._usage[orient][x, y] += delta

    def overflowed_edges(self) -> Set[Edge2D]:
        """2-D edges whose aggregate usage exceeds aggregate capacity."""
        out: Set[Edge2D] = set()
        for orient, arr in self._usage.items():
            over = np.argwhere(arr > self._cap[orient])
            out.update((orient, int(x), int(y)) for x, y in over)
        return out

    def total_overflow(self) -> int:
        return int(
            sum(
                np.clip(self._usage[o] - self._cap[o], 0, None).sum()
                for o in ("H", "V")
            )
        )

    def usage_view(self, orient: str) -> np.ndarray:
        return self._usage[orient].copy()

    # -- pattern routing ----------------------------------------------------

    def _monotone_candidates(self, a: Tile, b: Tile) -> List[List[Tile]]:
        """L- and Z-shaped monotone tile paths from ``a`` to ``b``."""
        (ax, ay), (bx, by) = a, b
        sx = 1 if bx >= ax else -1
        sy = 1 if by >= ay else -1
        xs = list(range(ax, bx + sx, sx)) if ax != bx else [ax]
        ys = list(range(ay, by + sy, sy)) if ay != by else [ay]
        if len(xs) == 1 or len(ys) == 1:
            # Straight connection: one canonical path.
            if len(xs) == 1:
                return [[(ax, y) for y in ys]]
            return [[(x, ay) for x in xs]]
        paths = []
        # Z with a vertical jog at each x (includes the two L shapes).
        for jog_x in xs:
            path = [(x, ay) for x in xs if (x - ax) * sx <= (jog_x - ax) * sx]
            path += [(jog_x, y) for y in ys[1:]]
            path += [(x, by) for x in xs if (x - ax) * sx > (jog_x - ax) * sx]
            paths.append(path)
        # Z with a horizontal jog at each interior y (Ls already added above).
        for jog_y in ys[1:-1]:
            path = [(ax, y) for y in ys if (y - ay) * sy <= (jog_y - ay) * sy]
            path += [(x, jog_y) for x in xs[1:]]
            path += [(bx, y) for y in ys if (y - ay) * sy > (jog_y - ay) * sy]
            paths.append(path)
        return paths

    def _embed_connection(self, a: Tile, b: Tile) -> List[Tile]:
        if a == b:
            return [a]
        candidates = self._monotone_candidates(a, b)
        return min(candidates, key=self._path_cost)

    def _route_net_pattern(self, net: Net) -> List[Edge2D]:
        tiles = list(dict.fromkeys(net.pin_tiles))
        if len(tiles) < 2:
            return []
        connections = steiner_tree_edges(tiles, refine=self.config.steiner_refine)
        edge_set: Set[Edge2D] = set()
        for a, b in connections:
            path = self._embed_connection(a, b)
            for u, v in zip(path, path[1:]):
                edge_set.add(edge_between(u, v))
        return _extract_tree(edge_set, net.source.tile, set(net.pin_tiles), net.name)

    # -- maze rerouting ---------------------------------------------------------

    def _maze_route_net(self, net: Net) -> List[Edge2D]:
        """Reroute a whole net by growing a tree with Dijkstra searches."""
        pins = list(dict.fromkeys(net.pin_tiles))
        tree_tiles: Set[Tile] = {net.source.tile}
        remaining = [t for t in pins if t not in tree_tiles]
        edges: Set[Edge2D] = set()
        while remaining:
            path = self._dijkstra(tree_tiles, set(remaining))
            if path is None:
                raise RuntimeError(f"maze routing failed for net {net.name}")
            for u, v in zip(path, path[1:]):
                edges.add(edge_between(u, v))
            tree_tiles.update(path)
            remaining = [t for t in remaining if t not in tree_tiles]
        return _extract_tree(edges, net.source.tile, set(pins), net.name)

    def _neighbors(self, tile: Tile) -> List[Tile]:
        x, y = tile
        out = []
        if x > 0:
            out.append((x - 1, y))
        if x + 1 < self.grid.nx_tiles:
            out.append((x + 1, y))
        if y > 0:
            out.append((x, y - 1))
        if y + 1 < self.grid.ny_tiles:
            out.append((x, y + 1))
        return out

    def _dijkstra(self, sources: Set[Tile], targets: Set[Tile]) -> Optional[List[Tile]]:
        dist: Dict[Tile, float] = {s: 0.0 for s in sources}
        prev: Dict[Tile, Optional[Tile]] = {s: None for s in sources}
        heap: List[Tuple[float, Tile]] = [(0.0, s) for s in sources]
        heapq.heapify(heap)
        expanded = 0
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            if u in targets:
                path = [u]
                while prev[path[-1]] is not None:
                    path.append(prev[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return path
            expanded += 1
            if expanded > self.config.maze_expansion_limit:
                return None
            for v in self._neighbors(u):
                cost = self._edge_cost(edge_between(u, v))
                nd = d + cost
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        return None

    # -- top level -----------------------------------------------------------

    def route(self, nets: Sequence[Net]) -> None:
        """Route every net, filling ``net.route_edges``.

        Local (single-tile) nets get an empty edge list.  Multi-round
        negotiation reroutes nets that cross overflowed edges.
        """
        with tracer.span("router.route", nets=len(nets)):
            self._route(nets)
        metrics.inc("router.nets_routed", len(nets))
        metrics.set_gauge("router.final_overflow", self.total_overflow())

    def _route(self, nets: Sequence[Net]) -> None:
        order = sorted(nets, key=lambda n: (n.hpwl(), n.num_pins, n.id))
        with tracer.span("router.pattern_route"):
            for net in order:
                net.route_edges = self._route_net_pattern(net)
                self._occupy(net.route_edges, +1)

        for round_idx in range(1, self.config.rounds):
            over = self.overflowed_edges()
            if not over:
                break
            for orient, x, y in over:
                excess = self._usage[orient][x, y] - self._cap[orient][x, y]
                self._history[orient][x, y] += self.config.history_increment * excess
            victims = [n for n in order if any(e in over for e in n.route_edges)]
            log.debug(
                "negotiation round %d: overflow=%d, rerouting %d nets",
                round_idx, self.total_overflow(), len(victims),
            )
            metrics.inc("router.negotiation_rounds")
            metrics.inc("router.nets_rerouted", len(victims))
            with tracer.span(
                "router.negotiate", round=round_idx, victims=len(victims)
            ):
                for net in victims:
                    self._occupy(net.route_edges, -1)
                    net.route_edges = self._maze_route_net(net)
                    self._occupy(net.route_edges, +1)


def _extract_tree(
    edges: Set[Edge2D], root: Tile, pin_tiles: Set[Tile], net_name: str
) -> List[Edge2D]:
    """Reduce an edge union to a tree spanning the pins.

    Embedding several connections can overlap and create cycles; a BFS from
    the root keeps one tree, then non-pin dangling leaves are pruned.
    """
    adj: Dict[Tile, Set[Tile]] = {}
    for e in edges:
        a, b = edge_endpoints(e)
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    if root not in adj:
        if pin_tiles == {root}:
            return []
        raise RuntimeError(f"net {net_name}: root tile not in routed area")

    parent: Dict[Tile, Optional[Tile]] = {root: None}
    order = [root]
    queue = [root]
    while queue:
        u = queue.pop(0)
        for v in adj[u]:
            if v not in parent:
                parent[v] = u
                order.append(v)
                queue.append(v)
    missing = [t for t in pin_tiles if t not in parent]
    if missing:
        raise RuntimeError(f"net {net_name}: pins {missing} unreachable in route")

    tree_adj: Dict[Tile, Set[Tile]] = {t: set() for t in parent}
    for t in order[1:]:
        p = parent[t]
        assert p is not None
        tree_adj[p].add(t)
        tree_adj[t].add(p)

    # Prune dangling non-pin leaves left over from overlap removal.
    changed = True
    while changed:
        changed = False
        for t in list(tree_adj):
            if len(tree_adj[t]) == 1 and t not in pin_tiles and t != root:
                (nbr,) = tree_adj[t]
                tree_adj[nbr].discard(t)
                del tree_adj[t]
                changed = True

    out: List[Edge2D] = []
    seen: Set[frozenset] = set()
    for u, nbrs in tree_adj.items():
        for v in nbrs:
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                out.append(edge_between(u, v))
    return out
