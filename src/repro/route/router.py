"""Congestion-aware 2-D global router.

Produces the "initial routing" input of Problem 1 (CPLA).  The router works
on the 2-D projection of the grid (per-edge capacity summed over the layers
of matching direction) in the standard two-phase style:

1. *Pattern routing*: every net's Steiner topology is embedded connection by
   connection, choosing the cheapest L- or Z-shaped monotone path under the
   current congestion cost.
2. *Negotiated rip-up-and-reroute*: nets crossing overflowed edges are torn
   up and maze-rerouted with history-augmented costs (PathFinder style) for a
   configurable number of rounds.

Cost model and vectorization
----------------------------
Edge costs live in two dense float arrays (``_cost["H"]``, ``_cost["V"]``),
kept exactly equal to ``1 + history + overflow_penalty * max(0, usage+1-cap)``
at every moment: bulk-recomputed when the per-round history update lands and
patched per touched edge on every occupy/release.  Pattern candidates are
then scored with prefix sums over those arrays instead of a per-edge Python
callback.  Because the default cost constants are dyadic rationals (all edge
costs are multiples of 0.5 and far below 2**52), the prefix-sum differences
are *exact* and bit-identical to the old sequential accumulation — the
pattern phase produces byte-for-byte the same routes, just faster.

The maze phase is goal-oriented A*: the heuristic is the Manhattan distance
to the nearest target, admissible and consistent because every edge costs at
least 1.0, so the search still returns minimum-cost paths (property-tested
against a Dijkstra reference).  Ties pop in ``(f, tile)`` order, which is
deterministic but not identical to the old Dijkstra's ``(g, tile)`` order —
equal-cost maze paths may differ, which is why the assignment digests were
re-baselined in this change.  A search that trips ``maze_expansion_limit``
is counted in ``router.maze_aborts`` and the net keeps its previous route
instead of failing the run.

The router fills ``net.route_edges``; building the segment tree is the
caller's job (:func:`repro.route.tree.build_topology`).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.grid.graph import Edge2D, GridGraph, Tile, edge_between, edge_endpoints
from repro.grid.layers import Direction
from repro.obs import metrics, tracer
from repro.route.net import Net
from repro.route.steiner import steiner_tree_edges, warm_steiner_cache
from repro.utils import get_logger

log = get_logger(__name__)

_INF = float("inf")


@dataclass
class RouterConfig:
    """Tuning knobs of the global router."""

    rounds: int = 3
    overflow_penalty: float = 8.0
    history_increment: float = 1.5
    bend_penalty: float = 0.4
    steiner_refine: bool = True
    maze_expansion_limit: int = 200_000

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("need at least one routing round")
        if self.maze_expansion_limit < 1:
            raise ValueError("maze_expansion_limit must be >= 1")


@dataclass
class RouterStats:
    """Per-run router observability, surfaced in RunReport/ledger entries."""

    nets_routed: int = 0
    nets_rerouted: int = 0
    reroute_rounds: int = 0
    maze_aborts: int = 0
    final_overflow: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "nets_routed": self.nets_routed,
            "nets_rerouted": self.nets_rerouted,
            "reroute_rounds": self.reroute_rounds,
            "maze_aborts": self.maze_aborts,
            "final_overflow": self.final_overflow,
        }


class GlobalRouter:
    """Routes nets on the 2-D projection of a :class:`GridGraph`."""

    def __init__(self, grid: GridGraph, config: Optional[RouterConfig] = None) -> None:
        self.grid = grid
        self.config = config or RouterConfig()
        self.stats = RouterStats()
        nx_t, ny_t = grid.nx_tiles, grid.ny_tiles
        shape_h = (max(nx_t - 1, 0), ny_t)
        shape_v = (nx_t, max(ny_t - 1, 0))
        sz_h = shape_h[0] * shape_h[1]
        sz_v = shape_v[0] * shape_v[1]
        # Each quantity lives in ONE flat buffer with the H block first; the
        # per-orient 2-D views share that memory.  Bookkeeping then runs one
        # fancy-indexed pass over flat edge indices instead of two per-orient
        # passes, while readers keep the natural [x, y] addressing.
        self._h_cols = shape_h[1]
        self._v_cols = shape_v[1]
        self._v_off = sz_h

        def _flat_pair(flat: np.ndarray) -> Dict[str, np.ndarray]:
            return {
                "H": flat[:sz_h].reshape(shape_h),
                "V": flat[sz_h:].reshape(shape_v),
            }

        self._cap_flat = np.zeros(sz_h + sz_v, dtype=np.int64)
        self._cap = _flat_pair(self._cap_flat)
        for layer in grid.stack:
            key = "H" if layer.direction is Direction.HORIZONTAL else "V"
            self._cap[key] += grid.capacity_array(layer.index)
        self._usage_flat = np.zeros_like(self._cap_flat)
        self._usage = _flat_pair(self._usage_flat)
        self._history_flat = np.zeros(sz_h + sz_v, dtype=np.float64)
        self._history = _flat_pair(self._history_flat)
        self._history_zero = True  # stays True through the pattern phase
        self._cost_flat = np.empty(sz_h + sz_v, dtype=np.float64)
        self._cost = _flat_pair(self._cost_flat)
        self._recompute_costs()

    # -- cost model ---------------------------------------------------------

    def _recompute_costs(self) -> None:
        """Bulk-refresh both cost arrays from usage/history/capacity."""
        pen = self.config.overflow_penalty
        for orient in ("H", "V"):
            excess = self._usage[orient] + 1 - self._cap[orient]
            np.maximum(excess, 0, out=excess)
            cost = self._cost[orient]
            cost[...] = 1.0
            cost += self._history[orient]
            cost += pen * excess

    def _edge_cost(self, edge: Edge2D) -> float:
        """Scalar cost of one edge — reference model the arrays mirror."""
        orient, x, y = edge
        cap = self._cap[orient][x, y]
        use = self._usage[orient][x, y]
        cost = 1.0 + self._history[orient][x, y]
        if use + 1 > cap:
            cost += self.config.overflow_penalty * (use + 1 - cap)
        return cost

    def _path_cost(self, tiles: Sequence[Tile]) -> float:
        cost = 0.0
        bends = 0
        last_axis = None
        for a, b in zip(tiles, tiles[1:]):
            edge = edge_between(a, b)
            cost += self._edge_cost(edge)
            axis = edge[0]
            if last_axis is not None and axis != last_axis:
                bends += 1
            last_axis = axis
        return cost + self.config.bend_penalty * bends

    # -- usage bookkeeping ----------------------------------------------------

    def _occupy(self, edges: Sequence[Edge2D], delta: int) -> None:
        """Apply a usage delta and patch the cost arrays for touched edges.

        ``edges`` come from a routed tree, so each appears at most once and
        plain fancy-indexed updates are safe.
        """
        if not edges:
            return
        self._occupy_split(self._flat_indices(edges), delta)

    def _flat_indices(self, edges: Sequence[Edge2D]) -> np.ndarray:
        """Flat-buffer indices of ``edges``, one np.intp array."""
        h_cols = self._h_cols
        v_cols = self._v_cols
        v_off = self._v_off
        return np.asarray(
            [
                x * h_cols + y if o == "H" else v_off + x * v_cols + y
                for o, x, y in edges
            ],
            dtype=np.intp,
        )

    def _occupy_split(self, idx: np.ndarray, delta: int) -> None:
        if not idx.size:
            return
        pen = self.config.overflow_penalty
        usage = self._usage_flat
        u = usage[idx] + delta
        usage[idx] = u
        excess = u + 1 - self._cap_flat[idx]
        if self._history_zero:
            if delta > 0:
                # Pattern phase: usage only grows, so an edge with zero
                # excess still holds its initial 1.0 cost — write only
                # the (rare) over-capacity entries.
                if excess.max() > 0:
                    np.maximum(excess, 0, out=excess)
                    over = np.nonzero(excess)[0]
                    self._cost_flat[idx[over]] = 1.0 + pen * excess[over]
            else:
                np.maximum(excess, 0, out=excess)
                self._cost_flat[idx] = 1.0 + pen * excess
        else:
            np.maximum(excess, 0, out=excess)
            self._cost_flat[idx] = (
                1.0 + self._history_flat[idx] + pen * excess
            )

    def overflowed_edges(self) -> Set[Edge2D]:
        """2-D edges whose aggregate usage exceeds aggregate capacity."""
        out: Set[Edge2D] = set()
        for orient, arr in self._usage.items():
            over = np.argwhere(arr > self._cap[orient])
            out.update((orient, int(x), int(y)) for x, y in over)
        return out

    def total_overflow(self) -> int:
        return int(
            sum(
                np.clip(self._usage[o] - self._cap[o], 0, None).sum()
                for o in ("H", "V")
            )
        )

    def usage_view(self, orient: str) -> np.ndarray:
        return self._usage[orient].copy()

    # -- pattern routing ----------------------------------------------------

    def _monotone_candidates(self, a: Tile, b: Tile) -> List[List[Tile]]:
        """L- and Z-shaped monotone tile paths from ``a`` to ``b``."""
        (ax, ay), (bx, by) = a, b
        sx = 1 if bx >= ax else -1
        sy = 1 if by >= ay else -1
        xs = list(range(ax, bx + sx, sx)) if ax != bx else [ax]
        ys = list(range(ay, by + sy, sy)) if ay != by else [ay]
        if len(xs) == 1 or len(ys) == 1:
            # Straight connection: one canonical path.
            if len(xs) == 1:
                return [[(ax, y) for y in ys]]
            return [[(x, ay) for x in xs]]
        paths = []
        # Z with a vertical jog at each x (includes the two L shapes).
        for jog_x in xs:
            paths.append(self._jog_x_path(a, b, jog_x))
        # Z with a horizontal jog at each interior y (Ls already added above).
        for jog_y in ys[1:-1]:
            paths.append(self._jog_y_path(a, b, jog_y))
        return paths

    @staticmethod
    def _jog_x_path(a: Tile, b: Tile, jog_x: int) -> List[Tile]:
        (ax, ay), (bx, by) = a, b
        sx = 1 if bx >= ax else -1
        sy = 1 if by >= ay else -1
        xs = range(ax, bx + sx, sx)
        ys = range(ay, by + sy, sy)
        path = [(x, ay) for x in xs if (x - ax) * sx <= (jog_x - ax) * sx]
        path += [(jog_x, y) for y in list(ys)[1:]]
        path += [(x, by) for x in xs if (x - ax) * sx > (jog_x - ax) * sx]
        return path

    @staticmethod
    def _jog_y_path(a: Tile, b: Tile, jog_y: int) -> List[Tile]:
        (ax, ay), (bx, by) = a, b
        sx = 1 if bx >= ax else -1
        sy = 1 if by >= ay else -1
        xs = range(ax, bx + sx, sx)
        ys = range(ay, by + sy, sy)
        path = [(ax, y) for y in ys if (y - ay) * sy <= (jog_y - ay) * sy]
        path += [(x, jog_y) for x in list(xs)[1:]]
        path += [(bx, y) for y in ys if (y - ay) * sy > (jog_y - ay) * sy]
        return path

    def _embed_connection(self, a: Tile, b: Tile) -> List[Tile]:
        """Cheapest monotone path, scored with prefix sums over the cost arrays.

        The candidate enumeration order and the cost arithmetic match
        :meth:`_path_cost` over :meth:`_monotone_candidates` exactly (the
        per-edge costs are dyadic rationals, so any summation order yields
        the same float), and ``argmin`` keeps the first minimum exactly like
        ``min(candidates, key=...)`` did.
        """
        if a == b:
            return [a]
        (ax, ay), (bx, by) = a, b
        if ax == bx:
            sy = 1 if by >= ay else -1
            return [(ax, y) for y in range(ay, by + sy, sy)]
        if ay == by:
            sx = 1 if bx >= ax else -1
            return [(x, ay) for x in range(ax, bx + sx, sx)]

        cost_h = self._cost["H"]
        cost_v = self._cost["V"]
        x_lo, x_hi = (ax, bx) if ax < bx else (bx, ax)
        y_lo, y_hi = (ay, by) if ay < by else (by, ay)
        width = x_hi - x_lo
        height = y_hi - y_lo
        bend = self.config.bend_penalty

        if width == 1 and height == 1:
            # Diagonal neighbours: exactly the two L shapes, scored scalar
            # (same dyadic sums as the array path, first minimum wins).
            t0 = cost_v[ax, y_lo] + cost_h[x_lo, by] + bend
            t1 = cost_h[x_lo, ay] + cost_v[bx, y_lo] + bend
            if t0 <= t1:
                return [a, (ax, by), b]
            return [a, (bx, ay), b]

        # Vertical-jog candidates, one per column, enumerated a -> b.  The
        # descending-direction variants reuse reversed views instead of
        # fancy-gathering through an index array; per-element arithmetic is
        # unchanged, so the totals stay bit-identical.
        row_a = np.empty(width + 1)
        row_a[0] = 0.0
        np.cumsum(cost_h[x_lo:x_hi, ay], out=row_a[1:])
        row_b = np.empty(width + 1)
        row_b[0] = 0.0
        np.cumsum(cost_h[x_lo:x_hi, by], out=row_b[1:])
        col_sums = cost_v[x_lo : x_hi + 1, y_lo:y_hi].sum(axis=1)
        if ax < bx:
            jx_totals = (row_a + (row_b[width] - row_b)) + col_sums
        else:
            jx_totals = ((row_a[width] - row_a) + row_b)[::-1] + col_sums[::-1]
        jx_totals[1:-1] += bend * 2
        jx_totals[0] += bend
        jx_totals[-1] += bend

        # Horizontal-jog candidates at interior rows, enumerated a -> b.
        if height > 1:
            col_a = np.empty(height + 1)
            col_a[0] = 0.0
            np.cumsum(cost_v[ax, y_lo:y_hi], out=col_a[1:])
            col_b = np.empty(height + 1)
            col_b[0] = 0.0
            np.cumsum(cost_v[bx, y_lo:y_hi], out=col_b[1:])
            row_sums = cost_h[x_lo:x_hi, y_lo : y_hi + 1].sum(axis=0)
            if ay < by:
                jy_totals = (col_a + (col_b[height] - col_b)) + row_sums
                jy_totals = jy_totals[1:height]
            else:
                jy_totals = ((col_a[height] - col_a) + col_b)[::-1] + row_sums[::-1]
                jy_totals = jy_totals[1:height]
            jy_totals = jy_totals + bend * 2
            totals = np.concatenate([jx_totals, jy_totals])
        else:
            totals = jx_totals

        k = int(np.argmin(totals))
        if k <= width:
            sx = 1 if bx >= ax else -1
            return self._jog_x_path(a, b, ax + sx * k)
        sy = 1 if by >= ay else -1
        return self._jog_y_path(a, b, ay + sy * (k - width))

    def _route_net_pattern(
        self, net: Net, pin_tiles: Optional[List[Tile]] = None
    ) -> List[Edge2D]:
        if pin_tiles is None:
            pin_tiles = net.pin_tiles
        tiles = list(dict.fromkeys(pin_tiles))
        if len(tiles) < 2:
            return []
        connections = steiner_tree_edges(tiles, refine=self.config.steiner_refine)
        if len(connections) == 1:
            # Two-tile net: a single monotone path is already a tree.
            a, b = connections[0]
            path = self._embed_connection(a, b)
            # edge_between inlined: consecutive path tiles differ in exactly
            # one coordinate by one.
            return [
                ("V", ux, uy if uy < v[1] else v[1])
                if ux == v[0]
                else ("H", ux if ux < v[0] else v[0], uy)
                for (ux, uy), v in zip(path, path[1:])
            ]
        edge_set: Set[Edge2D] = set()
        ordered: List[Edge2D] = []
        tiles_seen: Set[Tile] = set()
        appended = 0
        for a, b in connections:
            path = self._embed_connection(a, b)
            tiles_seen.update(path)
            for (ux, uy), v in zip(path, path[1:]):
                if ux == v[0]:
                    e = ("V", ux, uy if uy < v[1] else v[1])
                else:
                    e = ("H", ux if ux < v[0] else v[0], uy)
                appended += 1
                if e not in edge_set:
                    edge_set.add(e)
                    ordered.append(e)
        if appended == len(edge_set) and len(tiles_seen) == len(edge_set) + 1:
            # No two embedded paths shared an edge or tile, so the union is
            # already a tree, and its leaves are topology leaves — pins.
            return ordered
        return _extract_tree(edge_set, pin_tiles[0], set(pin_tiles), net.name)

    # -- maze rerouting ---------------------------------------------------------

    def _maze_route_net(self, net: Net) -> Optional[List[Edge2D]]:
        """Reroute a whole net by growing a tree with A* searches.

        Returns ``None`` when a search trips ``maze_expansion_limit`` — the
        caller keeps the net's previous route and counts the abort.  A
        genuinely unreachable pin still raises.
        """
        pins = list(dict.fromkeys(net.pin_tiles))
        tree_tiles: Set[Tile] = {net.source_tile}
        remaining = [t for t in pins if t not in tree_tiles]
        edges: Set[Edge2D] = set()
        while remaining:
            path, aborted = self._astar(tree_tiles, set(remaining))
            if path is None:
                if aborted:
                    return None
                raise RuntimeError(f"maze routing failed for net {net.name}")
            for u, v in zip(path, path[1:]):
                edges.add(edge_between(u, v))
            tree_tiles.update(path)
            remaining = [t for t in remaining if t not in tree_tiles]
        return _extract_tree(edges, net.source_tile, set(pins), net.name)

    def _neighbors(self, tile: Tile) -> List[Tile]:
        x, y = tile
        out = []
        if x > 0:
            out.append((x - 1, y))
        if x + 1 < self.grid.nx_tiles:
            out.append((x + 1, y))
        if y > 0:
            out.append((x, y - 1))
        if y + 1 < self.grid.ny_tiles:
            out.append((x, y + 1))
        return out

    def _astar(
        self, sources: Set[Tile], targets: Set[Tile]
    ) -> Tuple[Optional[List[Tile]], bool]:
        """Multi-source multi-target A* over the 2-D cost arrays.

        The heuristic — Manhattan distance to the nearest target — is
        admissible and consistent because every edge costs >= 1.0, so the
        first settled target carries a minimum-cost path.  Heap entries
        order by ``(f, tile)``, which breaks equal-``f`` ties
        deterministically by tile coordinate regardless of insertion
        order.  Returns ``(path, False)`` on success, ``(None, True)``
        on an expansion-limit abort, ``(None, False)`` when the targets
        are unreachable.
        """
        cost_h = self._cost["H"]
        cost_v = self._cost["V"]
        nx_t, ny_t = self.grid.nx_tiles, self.grid.ny_tiles
        limit = self.config.maze_expansion_limit
        tpairs = list(targets)

        hcache: Dict[Tile, float] = {}

        if len(tpairs) == 1:
            (ta, tb), = tpairs

            def heuristic(tile: Tile) -> float:
                h = hcache.get(tile)
                if h is None:
                    h = float(abs(tile[0] - ta) + abs(tile[1] - tb))
                    hcache[tile] = h
                return h

        else:

            def heuristic(tile: Tile) -> float:
                h = hcache.get(tile)
                if h is None:
                    x, y = tile
                    h = float(min(abs(x - a) + abs(y - b) for a, b in tpairs))
                    hcache[tile] = h
                return h

        dist: Dict[Tile, float] = {}
        prev: Dict[Tile, Optional[Tile]] = {}
        heap: List[Tuple[float, Tile]] = []
        for s in sources:
            dist[s] = 0.0
            prev[s] = None
            heap.append((heuristic(s), s))
        heapq.heapify(heap)
        settled: Set[Tile] = set()
        expanded = 0
        while heap:
            _, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if u in targets:
                path = [u]
                while prev[path[-1]] is not None:
                    path.append(prev[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return path, False
            expanded += 1
            if expanded > limit:
                return None, True
            x, y = u
            du = dist[u]
            if x > 0:
                v = (x - 1, y)
                if v not in settled:
                    nd = du + cost_h[x - 1, y]
                    if nd < dist.get(v, _INF):
                        dist[v] = nd
                        prev[v] = u
                        heapq.heappush(heap, (nd + heuristic(v), v))
            if x + 1 < nx_t:
                v = (x + 1, y)
                if v not in settled:
                    nd = du + cost_h[x, y]
                    if nd < dist.get(v, _INF):
                        dist[v] = nd
                        prev[v] = u
                        heapq.heappush(heap, (nd + heuristic(v), v))
            if y > 0:
                v = (x, y - 1)
                if v not in settled:
                    nd = du + cost_v[x, y - 1]
                    if nd < dist.get(v, _INF):
                        dist[v] = nd
                        prev[v] = u
                        heapq.heappush(heap, (nd + heuristic(v), v))
            if y + 1 < ny_t:
                v = (x, y + 1)
                if v not in settled:
                    nd = du + cost_v[x, y]
                    if nd < dist.get(v, _INF):
                        dist[v] = nd
                        prev[v] = u
                        heapq.heappush(heap, (nd + heuristic(v), v))
        return None, False

    def _dijkstra(self, sources: Set[Tile], targets: Set[Tile]) -> Optional[List[Tile]]:
        """Reference shortest-path search (kept for the A* property tests)."""
        dist: Dict[Tile, float] = {s: 0.0 for s in sources}
        prev: Dict[Tile, Optional[Tile]] = {s: None for s in sources}
        heap: List[Tuple[float, Tile]] = [(0.0, s) for s in sources]
        heapq.heapify(heap)
        expanded = 0
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, _INF):
                continue
            if u in targets:
                path = [u]
                while prev[path[-1]] is not None:
                    path.append(prev[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return path
            expanded += 1
            if expanded > self.config.maze_expansion_limit:
                return None
            for v in self._neighbors(u):
                cost = self._edge_cost(edge_between(u, v))
                nd = d + cost
                if nd < dist.get(v, _INF):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        return None

    # -- top level -----------------------------------------------------------

    def route(self, nets: Sequence[Net]) -> None:
        """Route every net, filling ``net.route_edges``.

        Local (single-tile) nets get an empty edge list.  Multi-round
        negotiation reroutes nets that cross overflowed edges.
        """
        with tracer.span("router.route", nets=len(nets)):
            self._route(nets)
        metrics.inc("router.nets_routed", len(nets))
        self.stats.nets_routed += len(nets)
        self.stats.final_overflow = self.total_overflow()
        metrics.set_gauge("router.final_overflow", self.stats.final_overflow)

    def _route(self, nets: Sequence[Net]) -> None:
        order = sorted(nets, key=_sort_key(nets))
        tiles_of = _bulk_pin_tiles(order)
        with tracer.span("router.steiner_warm"):
            # Bulk-precompute every net's Steiner topology: identical trees,
            # but the lockstep Prim amortizes across the whole population.
            warm_steiner_cache(tiles_of, refine=self.config.steiner_refine)
        with tracer.span("router.pattern_route"):
            for net, tiles in zip(order, tiles_of):
                net.route_edges = self._route_net_pattern(net, tiles)
                self._occupy(net.route_edges, +1)

        for round_idx in range(1, self.config.rounds):
            over = self.overflowed_edges()
            if not over:
                break
            for orient, x, y in over:
                excess = self._usage[orient][x, y] - self._cap[orient][x, y]
                self._history[orient][x, y] += self.config.history_increment * excess
            self._history_zero = False
            self._recompute_costs()
            victims = [n for n in order if any(e in over for e in n.route_edges)]
            log.debug(
                "negotiation round %d: overflow=%d, rerouting %d nets",
                round_idx, self.total_overflow(), len(victims),
            )
            metrics.inc("router.negotiation_rounds")
            metrics.inc("router.reroute_rounds")
            metrics.inc("router.nets_rerouted", len(victims))
            self.stats.reroute_rounds += 1
            self.stats.nets_rerouted += len(victims)
            with tracer.span(
                "router.negotiate", round=round_idx, victims=len(victims)
            ):
                for net in victims:
                    split = self._flat_indices(net.route_edges)
                    self._occupy_split(split, -1)
                    rerouted = self._maze_route_net(net)
                    if rerouted is None:
                        # Expansion limit tripped: keep the previous route.
                        metrics.inc("router.maze_aborts")
                        self.stats.maze_aborts += 1
                        log.warning(
                            "maze abort for net %s (expansion limit %d); "
                            "keeping previous route",
                            net.name, self.config.maze_expansion_limit,
                        )
                        self._occupy_split(split, +1)
                    else:
                        net.route_edges = rerouted
                        self._occupy(net.route_edges, +1)


def _sort_key(nets: Sequence[Net]):
    """Routing-order key ``(hpwl, num_pins, id)``.

    When the whole population is backed by one :class:`NetStore`, both hpwl
    and pin counts come out of two bulk array passes instead of four numpy
    calls per net.
    """
    store = getattr(nets[0], "_store", None) if nets else None
    if store is not None and all(n._pins is None and n._store is store for n in nets):
        hpwl = store.hpwl_array().tolist()
        counts = store.net_table["pin_count"].tolist()
        return lambda n: (hpwl[n._row], counts[n._row], n.id)
    return lambda n: (n.hpwl(), n.num_pins, n.id)


def _bulk_pin_tiles(nets: Sequence[Net]) -> List[List[Tile]]:
    """``[n.pin_tiles for n in nets]``, bulk-converted when store-backed."""
    store = getattr(nets[0], "_store", None) if nets else None
    if store is not None and all(n._pins is None and n._store is store for n in nets):
        per_row = store.all_pin_tiles()
        return [per_row[n._row] for n in nets]
    return [n.pin_tiles for n in nets]


def _extract_tree(
    edges: Set[Edge2D], root: Tile, pin_tiles: Set[Tile], net_name: str
) -> List[Edge2D]:
    """Reduce an edge union to a tree spanning the pins.

    Embedding several connections can overlap and create cycles; a BFS from
    the root keeps one tree, then non-pin dangling leaves are pruned.

    The result must be a pure function of the edge *union*, never of the
    iteration order of the incoming set: ``Edge2D`` starts with a ``"V"``/
    ``"H"`` string, so set order varies with ``PYTHONHASHSEED``, and the
    emitted edge order decides segment enumeration — and therefore the
    assignment digest that the serving tier compares across processes.
    Sorting here (and visiting BFS neighbors sorted) pins one canonical
    tree per union.
    """
    adj: Dict[Tile, Set[Tile]] = {}
    for e in sorted(edges):
        a, b = edge_endpoints(e)
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    if root not in adj:
        if pin_tiles == {root}:
            return []
        raise RuntimeError(f"net {net_name}: root tile not in routed area")

    parent: Dict[Tile, Optional[Tile]] = {root: None}
    order = [root]
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in sorted(adj[u]):
            if v not in parent:
                parent[v] = u
                order.append(v)
                queue.append(v)
    missing = [t for t in pin_tiles if t not in parent]
    if missing:
        raise RuntimeError(f"net {net_name}: pins {missing} unreachable in route")

    tree_adj: Dict[Tile, Set[Tile]] = {t: set() for t in parent}
    for t in order[1:]:
        p = parent[t]
        assert p is not None
        tree_adj[p].add(t)
        tree_adj[t].add(p)

    # Prune dangling non-pin leaves left over from overlap removal.
    changed = True
    while changed:
        changed = False
        for t in list(tree_adj):
            if len(tree_adj[t]) == 1 and t not in pin_tiles and t != root:
                (nbr,) = tree_adj[t]
                tree_adj[nbr].discard(t)
                del tree_adj[t]
                changed = True

    out: List[Edge2D] = []
    seen: Set[frozenset] = set()
    for u in order:
        if u not in tree_adj:
            continue  # pruned dangling leaf
        for v in sorted(tree_adj[u]):
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                out.append(edge_between(u, v))
    return out
