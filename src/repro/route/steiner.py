"""Rectilinear Steiner topology construction.

Global routers first pick an abstract tree topology over a net's pins and
then embed each tree connection into grid paths.  We use a Manhattan-distance
Prim MST refined by an iterated 1-Steiner pass over Hanan-grid candidates —
the classic laptop-scale stand-in for FLUTE-quality trees.

The output is a list of abstract connections ``(tile_a, tile_b)``; the
router (:mod:`repro.route.router`) chooses the actual L/Z/maze embedding.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.grid.graph import Tile

Connection = Tuple[Tile, Tile]


def manhattan(a: Tile, b: Tile) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def mst_connections(tiles: Sequence[Tile]) -> List[Connection]:
    """Prim's MST over tiles under Manhattan distance, O(n^2).

    Returns one connection per MST edge; an empty list for <2 tiles.
    """
    points = list(dict.fromkeys(tiles))  # dedupe, keep order
    n = len(points)
    if n < 2:
        return []
    in_tree = [False] * n
    best_dist = [manhattan(points[0], p) for p in points]
    best_from = [0] * n
    in_tree[0] = True
    best_dist[0] = 0
    connections: List[Connection] = []
    for _ in range(n - 1):
        # pick the nearest out-of-tree point
        k = min(
            (i for i in range(n) if not in_tree[i]),
            key=lambda i: (best_dist[i], i),
        )
        in_tree[k] = True
        connections.append((points[best_from[k]], points[k]))
        for i in range(n):
            if not in_tree[i]:
                d = manhattan(points[k], points[i])
                if d < best_dist[i]:
                    best_dist[i] = d
                    best_from[i] = k
    return connections


def tree_cost(connections: Iterable[Connection]) -> int:
    return sum(manhattan(a, b) for a, b in connections)


def _hanan_candidates(points: Sequence[Tile]) -> Set[Tile]:
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    existing = set(points)
    return {(x, y) for x in xs for y in ys if (x, y) not in existing}


def steiner_tree_edges(
    tiles: Sequence[Tile],
    refine: bool = True,
    max_refine_points: int = 12,
    max_rounds: int = 3,
) -> List[Connection]:
    """Build a rectilinear Steiner topology over ``tiles``.

    Starts from the Manhattan MST and, for small nets, greedily inserts
    Hanan-grid Steiner points while each insertion strictly reduces the MST
    cost (iterated 1-Steiner).  Steiner points that end up with tree degree
    below 3 are discarded — they would not save wirelength.
    """
    points = list(dict.fromkeys(tiles))
    if len(points) < 2:
        return []
    best = mst_connections(points)
    if not refine or len(points) > max_refine_points:
        return best

    best_cost = tree_cost(best)
    chosen: List[Tile] = []
    for _ in range(max_rounds):
        improved = False
        candidates = _hanan_candidates(points + chosen)
        for cand in sorted(candidates):
            trial_points = points + chosen + [cand]
            trial = mst_connections(trial_points)
            trial = _prune_low_degree_steiner(trial, set(points))
            cost = tree_cost(trial)
            if cost < best_cost:
                best, best_cost = trial, cost
                chosen.append(cand)
                improved = True
                break
        if not improved:
            break
    return best


def _prune_low_degree_steiner(
    connections: List[Connection], pins: Set[Tile]
) -> List[Connection]:
    """Remove degree<=2 non-pin points by splicing their connections.

    Degree-1 Steiner points are dropped with their dangling connection;
    degree-2 points are bypassed (their two neighbours joined directly, which
    never increases Manhattan cost beyond the original detour).
    """
    conns = list(connections)
    changed = True
    while changed:
        changed = False
        degree: dict = {}
        for a, b in conns:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        for node, deg in degree.items():
            if node in pins or deg >= 3:
                continue
            incident = [c for c in conns if node in c]
            conns = [c for c in conns if node not in c]
            if deg == 2:
                (a1, b1), (a2, b2) = incident
                n1 = b1 if a1 == node else a1
                n2 = b2 if a2 == node else a2
                if n1 != n2:
                    conns.append((n1, n2))
            changed = True
            break
    return conns
