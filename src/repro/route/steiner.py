"""Rectilinear Steiner topology construction.

Global routers first pick an abstract tree topology over a net's pins and
then embed each tree connection into grid paths.  We use a Manhattan-distance
Prim MST refined by an iterated 1-Steiner pass over Hanan-grid candidates —
the classic laptop-scale stand-in for FLUTE-quality trees.

The output is a list of abstract connections ``(tile_a, tile_b)``; the
router (:mod:`repro.route.router`) chooses the actual L/Z/maze embedding.

Performance structure
---------------------
All MSTs run through one lockstep Prim (:func:`_lockstep_prim`) over a
``(rows, M, M)`` distance tensor: every Hanan candidate of a refinement round
is one row, and :func:`warm_steiner_cache` goes further by packing the rows
of *many nets* with the same point count into a single tensor, so a whole
suite's refinement costs a few hundred numpy calls instead of one Prim per
net.  Candidate pruning (Steiner points of tree degree < 3 are useless) is
resolved closed-form from the recorded Prim parents wherever the prune
cannot cascade; only genuinely cascading cases replay the scalar graph
surgery.  Tie-breaks replicate the historical scalar Prim exactly (start
node 0, first minimum wins), so every path produces bit-identical trees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.grid.graph import Tile

Connection = Tuple[Tile, Tile]

_BIG = np.int64(np.iinfo(np.int64).max)


def manhattan(a: Tile, b: Tile) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def mst_connections(tiles: Sequence[Tile]) -> List[Connection]:
    """Prim's MST over tiles under Manhattan distance, O(n^2).

    Returns one connection per MST edge; an empty list for <2 tiles.
    The distance matrix is integral and ties break on the lowest point
    index (``np.argmin`` keeps the first minimum), reproducing the
    historical scalar Prim bit for bit.
    """
    points = list(dict.fromkeys(tiles))  # dedupe, keep order
    n = len(points)
    if n < 2:
        return []
    if n == 2:
        return [(points[0], points[1])]
    pts = np.asarray(points, dtype=np.int64)
    dmat = np.abs(pts[:, None, 0] - pts[None, :, 0]) + np.abs(
        pts[:, None, 1] - pts[None, :, 1]
    )
    in_tree = np.zeros(n, dtype=bool)
    best_dist = dmat[0].copy()
    best_from = np.zeros(n, dtype=np.int64)
    in_tree[0] = True
    connections: List[Connection] = []
    for _ in range(n - 1):
        # Nearest out-of-tree point; first minimum wins, like the scalar
        # min(..., key=(dist, index)) tie-break did.
        masked = np.where(in_tree, _BIG, best_dist)
        k = int(np.argmin(masked))
        in_tree[k] = True
        connections.append((points[int(best_from[k])], points[k]))
        improved = (~in_tree) & (dmat[k] < best_dist)
        best_dist[improved] = dmat[k][improved]
        best_from[improved] = k
    return connections


def tree_cost(connections: Iterable[Connection]) -> int:
    return sum(manhattan(a, b) for a, b in connections)


def _hanan_candidates(points: Sequence[Tile]) -> Set[Tile]:
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    existing = set(points)
    return {(x, y) for x in xs for y in ys if (x, y) not in existing}


_STEINER_CACHE: Dict[tuple, List[Connection]] = {}
_STEINER_CACHE_MAX = 250_000

# Soft cap on distance-tensor elements per lockstep chunk (int64), keeping
# bulk warming inside a few dozen MB regardless of suite size.
_CHUNK_ELEMS = 2_000_000


def _cache_put(key: tuple, value: List[Connection]) -> None:
    if len(_STEINER_CACHE) >= _STEINER_CACHE_MAX:
        _STEINER_CACHE.clear()
    _STEINER_CACHE[key] = value


def steiner_tree_edges(
    tiles: Sequence[Tile],
    refine: bool = True,
    max_refine_points: int = 12,
    max_rounds: int = 3,
) -> List[Connection]:
    """Build a rectilinear Steiner topology over ``tiles``.

    Starts from the Manhattan MST and, for small nets, greedily inserts
    Hanan-grid Steiner points while each insertion strictly reduces the MST
    cost (iterated 1-Steiner).  Steiner points that end up with tree degree
    below 3 are discarded — they would not save wirelength.

    Results are memoized under translation: Manhattan distances, Hanan
    candidates and all tie-breaks are invariant when every point shifts by
    the same offset, so topologies are cached with the point set translated
    to the origin.  Synthetic and real instances alike repeat small pin
    shapes constantly (every 2-pin net with the same bounding box shares
    one entry), making this the dominant steiner speedup.
    """
    points = list(dict.fromkeys(tiles))
    if len(points) < 2:
        return []
    if len(points) == 2:
        # A Steiner point can never beat the direct connection of two pins.
        return [(points[0], points[1])]

    off_x = min(p[0] for p in points)
    off_y = min(p[1] for p in points)
    canon = tuple((p[0] - off_x, p[1] - off_y) for p in points)
    key = (canon, refine, max_refine_points, max_rounds)
    cached = _STEINER_CACHE.get(key)
    if cached is None:
        cached = _steiner_uncached(list(canon), refine, max_refine_points, max_rounds)
        _cache_put(key, cached)
    return [
        ((a[0] + off_x, a[1] + off_y), (b[0] + off_x, b[1] + off_y))
        for a, b in cached
    ]


def warm_steiner_cache(
    point_sets: Iterable[Sequence[Tile]],
    refine: bool = True,
    max_refine_points: int = 12,
    max_rounds: int = 3,
) -> int:
    """Precompute Steiner topologies for many nets in bulk waves.

    Collects every canonical point set missing from the cache, runs all
    initial MSTs through one lockstep Prim per point count, then advances
    the whole population one refinement round per wave — each wave scoring
    the Hanan candidates of every still-active set in shared tensors.  The
    per-set accept decisions replay :func:`_steiner_uncached` exactly, so a
    later :func:`steiner_tree_edges` call returns bit-identical topologies;
    this function only front-loads the cache fills.  Returns the number of
    entries added.
    """
    states: List[_WarmState] = []
    seen: Set[tuple] = set()
    for tiles in point_sets:
        points = list(dict.fromkeys(tiles))
        if len(points) < 3:
            continue
        off_x = min(p[0] for p in points)
        off_y = min(p[1] for p in points)
        canon = tuple((p[0] - off_x, p[1] - off_y) for p in points)
        key = (canon, refine, max_refine_points, max_rounds)
        if key in _STEINER_CACHE or key in seen:
            continue
        seen.add(key)
        states.append(_WarmState(key, list(canon)))
    if not states:
        return 0

    # Wave 0: all initial MSTs, one lockstep Prim per distinct point count.
    by_n: Dict[int, List[_WarmState]] = {}
    for st in states:
        by_n.setdefault(len(st.points), []).append(st)
    for group in by_n.values():
        pts = np.asarray([st.points for st in group], dtype=np.int64)
        dmat = np.abs(pts[:, :, None, 0] - pts[:, None, :, 0]) + np.abs(
            pts[:, :, None, 1] - pts[:, None, :, 1]
        )
        raw, parents, selection = _lockstep_prim(dmat)
        for i, st in enumerate(group):
            st.best = _rebuild_edges(st.points, parents[i], selection[i])
            st.best_cost = int(raw[i])

    active: List[_WarmState] = []
    for st in states:
        if refine and len(st.points) <= max_refine_points:
            active.append(st)
        else:
            _cache_put(st.key, st.best)

    for _wave in range(max_rounds):
        if not active:
            break
        by_m: Dict[int, List[_WarmState]] = {}
        for st in active:
            base = st.points + st.chosen
            candidates = sorted(_hanan_candidates(base))
            if not candidates:
                _cache_put(st.key, st.best)
                continue
            st.base = base
            st.candidates = candidates
            by_m.setdefault(len(base), []).append(st)
        next_active: List[_WarmState] = []
        for m, group in by_m.items():
            _score_wave(group, m)
            for st in group:
                scores = st.scores
                st.scores = None
                i = _first_improving(scores.costs, st.best_cost)
                if i is None:
                    _cache_put(st.key, st.best)
                    continue
                st.best = _winner_trial(
                    st.base, len(st.points), st.candidates, scores, i
                )
                st.best_cost = scores.costs[i]
                st.chosen.append(st.candidates[i])
                next_active.append(st)
        active = next_active
    for st in active:  # ran out of refinement rounds mid-improvement
        _cache_put(st.key, st.best)
    return len(states)


class _WarmState:
    """One cache-miss point set moving through the warm waves."""

    __slots__ = ("key", "points", "chosen", "best", "best_cost", "base",
                 "candidates", "scores")

    def __init__(self, key: tuple, points: List[Tile]) -> None:
        self.key = key
        self.points = points
        self.chosen: List[Tile] = []
        self.best: List[Connection] = []
        self.best_cost = 0
        self.base: Optional[List[Tile]] = None
        self.candidates: Optional[List[Tile]] = None
        self.scores: Optional[_Scores] = None


def _score_wave(group: List["_WarmState"], m: int) -> None:
    """Score every state's candidates, packing states into shared tensors."""
    M = m + 1
    max_rows = max(1, _CHUNK_ELEMS // (M * M))
    chunk: List[_WarmState] = []
    rows = 0
    for st in group:
        chunk.append(st)
        rows += len(st.candidates)
        if rows >= max_rows:
            _score_chunk(chunk, m)
            chunk, rows = [], 0
    if chunk:
        _score_chunk(chunk, m)


def _score_chunk(chunk: List["_WarmState"], m: int) -> None:
    M = m + 1
    counts = [len(st.candidates) for st in chunk]
    total = sum(counts)
    pts = np.empty((total, M, 2), dtype=np.int64)
    entries: List[_Entry] = []
    r0 = 0
    for st, c in zip(chunk, counts):
        pts[r0 : r0 + c, :m, :] = np.asarray(st.base, dtype=np.int64)
        pts[r0 : r0 + c, m, :] = np.asarray(st.candidates, dtype=np.int64)
        entries.append((st.base, len(st.points), st.candidates, r0, r0 + c))
        r0 += c
    dmat = np.abs(pts[:, :, None, 0] - pts[:, None, :, 0]) + np.abs(
        pts[:, :, None, 1] - pts[:, None, :, 1]
    )
    raw, parents, selection = _lockstep_prim(dmat)
    scores = _evaluate_entries(entries, m, dmat, raw, parents, selection)
    for st, sc in zip(chunk, scores):
        st.scores = sc


def _steiner_uncached(
    points: List[Tile], refine: bool, max_refine_points: int, max_rounds: int
) -> List[Connection]:
    best = mst_connections(points)
    if not refine or len(points) > max_refine_points:
        return best

    best_cost = tree_cost(best)
    chosen: List[Tile] = []
    for _ in range(max_rounds):
        base = points + chosen
        candidates = sorted(_hanan_candidates(base))
        if not candidates:
            break
        scores = _score_candidates(base, len(points), candidates)
        i = _first_improving(scores.costs, best_cost)
        if i is None:
            break
        best = _winner_trial(base, len(points), candidates, scores, i)
        best_cost = scores.costs[i]
        chosen.append(candidates[i])
    return best


class _Scores:
    """Per-candidate pruned costs plus the Prim state to materialize one."""

    __slots__ = ("costs", "trials", "deg", "parents", "selection")

    def __init__(
        self,
        costs: List[int],
        trials: List[Optional[List[Connection]]],
        deg: np.ndarray,
        parents: np.ndarray,
        selection: np.ndarray,
    ) -> None:
        self.costs = costs
        self.trials = trials
        self.deg = deg
        self.parents = parents
        self.selection = selection


def _first_improving(costs: List[int], best_cost: int) -> Optional[int]:
    for i, cost in enumerate(costs):
        if cost < best_cost:
            return i
    return None


def _score_candidates(
    base: List[Tile], num_pins: int, candidates: List[Tile]
) -> "_Scores":
    """Pruned trial-tree cost of appending each candidate, all at once."""
    m = len(base)
    M = m + 1
    num_c = len(candidates)
    pts = np.empty((num_c, M, 2), dtype=np.int64)
    pts[:, :m, :] = np.asarray(base, dtype=np.int64)
    pts[:, m, :] = np.asarray(candidates, dtype=np.int64)
    dmat = np.abs(pts[:, :, None, 0] - pts[:, None, :, 0]) + np.abs(
        pts[:, :, None, 1] - pts[:, None, :, 1]
    )
    raw, parents, selection = _lockstep_prim(dmat)
    entries: List[_Entry] = [(base, num_pins, candidates, 0, num_c)]
    return _evaluate_entries(entries, m, dmat, raw, parents, selection)[0]


def _lockstep_prim(
    dmat: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Prim over each ``(M, M)`` distance matrix of a ``(R, M, M)`` tensor.

    Node 0 seeds every tree and ``argmin`` keeps the first minimum, matching
    :func:`mst_connections` tie-breaks exactly.  Returns per-row
    ``(total_cost, parents, selection)``; ``selection`` lists node indices
    in insertion order, so zipping it with ``parents`` replays the exact
    edge order the scalar Prim emitted.
    """
    R, M, _ = dmat.shape
    rows = np.arange(R)
    in_tree = np.zeros((R, M), dtype=bool)
    in_tree[:, 0] = True
    best_dist = dmat[:, 0, :].copy()
    best_from = np.zeros((R, M), dtype=np.int64)
    raw_cost = np.zeros(R, dtype=np.int64)
    parents = np.empty((R, M), dtype=np.int64)
    parents[:, 0] = -1
    selection = np.empty((R, M - 1), dtype=np.int64)
    for step in range(M - 1):
        masked = np.where(in_tree, _BIG, best_dist)
        k = masked.argmin(axis=1)  # first minimum == scalar tie-break
        raw_cost += masked[rows, k]
        parents[rows, k] = best_from[rows, k]
        selection[:, step] = k
        in_tree[rows, k] = True
        newd = dmat[rows, k, :]
        improved = (~in_tree) & (newd < best_dist)
        np.copyto(best_dist, newd, where=improved)
        np.copyto(best_from, k[:, None], where=improved)
    return raw_cost, parents, selection


def _rebuild_edges(
    nodes: Sequence[Tile], parents_row: np.ndarray, selection_row: np.ndarray
) -> List[Connection]:
    """Edges of one recorded Prim run, in exact insertion order."""
    edges: List[Connection] = []
    for j in selection_row.tolist():
        edges.append((nodes[int(parents_row[j])], nodes[j]))
    return edges


_Entry = Tuple[List[Tile], int, List[Tile], int, int]  # base, num_pins, cands, a, b


def _evaluate_entries(
    entries: List[_Entry],
    m: int,
    dmat: np.ndarray,
    raw_cost: np.ndarray,
    parents: np.ndarray,
    selection: np.ndarray,
) -> List["_Scores"]:
    """Turn raw lockstep-Prim output into pruned per-candidate costs.

    ``entries`` carve the row tensor into per-net ranges (each net's base is
    its pin set plus already-chosen Steiner points, pins first); all the
    degree math runs once over the whole tensor.  A candidate landing at
    tree degree <= 2 would be pruned, so its cost is adjusted closed-form
    from the recorded parents: a degree-1 leaf loses its edge, a degree-2
    point is spliced out.  Only cascading cases — a pre-existing Steiner
    point dropping to degree <= 2, or a degree-1 candidate hanging off a
    degree-3 Steiner parent — replay the scalar prune on edges rebuilt in
    exact Prim insertion order.
    """
    num_rows = dmat.shape[0]
    to_cand = dmat[:, m, :m]
    cand_parent = parents[:, m]
    num_pins_row = np.empty(num_rows, dtype=np.int64)
    for _base, num_pins, _cands, a, b in entries:
        num_pins_row[a:b] = num_pins

    # Degrees: children count, plus one for the node's own parent edge
    # (node 0 is the Prim start and has none; pre-chosen Steiner points
    # have index >= 3, so they always carry the parent edge).
    deg_cand = (parents[:, :m] == m).sum(axis=1) + 1
    lo = int(num_pins_row.min())
    need_full = np.zeros(num_rows, dtype=bool)
    sdeg: Optional[np.ndarray] = None
    if lo < m:
        # Degree of every possibly-Steiner base node, per row.  One at
        # degree <= 2 means the prune will do real graph surgery — no
        # closed form for that row.
        sdeg = np.empty((m - lo, num_rows), dtype=np.int64)
        for j in range(lo, m):
            dj = (parents == j).sum(axis=1) + 1
            sdeg[j - lo] = dj
            need_full |= (dj <= 2) & (j >= num_pins_row)

    costs = raw_cost.copy()
    trials: List[Optional[List[Connection]]] = [None] * num_rows

    deg1 = (deg_cand == 1) & ~need_full
    if sdeg is not None:
        # Dropping a degree-1 candidate leaf lowers its Steiner parent's
        # degree; a parent at degree 3 then cascades into full surgery.
        ps = np.nonzero(deg1 & (cand_parent >= num_pins_row))[0]
        if ps.size:
            casc = ps[sdeg[cand_parent[ps] - lo, ps] <= 3]
            need_full[casc] = True
            deg1[casc] = False
    r1 = np.nonzero(deg1)[0]
    if r1.size:
        costs[r1] -= to_cand[r1, cand_parent[r1]]

    r2 = np.nonzero((deg_cand == 2) & ~need_full)[0]
    if r2.size:
        # The candidate's single child: first (only) node parented to it.
        child = np.argmax(parents[r2, :m] == m, axis=1)
        par = cand_parent[r2]
        costs[r2] += dmat[r2, child, par] - to_cand[r2, child] - to_cand[r2, par]

    full_rows = np.nonzero(need_full)[0].tolist()
    costs_list = costs.tolist()
    out: List[_Scores] = []
    fi = 0
    for base, num_pins, candidates, a, b in entries:
        pins: Optional[Set[Tile]] = None
        while fi < len(full_rows) and full_rows[fi] < b:
            r = full_rows[fi]
            if pins is None:
                pins = set(base[:num_pins])
            edges = _rebuild_edges(
                base + [candidates[r - a]], parents[r], selection[r]
            )
            pruned = _prune_low_degree_steiner(edges, pins)
            trials[r] = pruned
            costs_list[r] = tree_cost(pruned)
            fi += 1
        out.append(
            _Scores(
                costs_list[a:b],
                trials[a:b],
                deg_cand[a:b],
                parents[a:b],
                selection[a:b],
            )
        )
    return out


def _winner_trial(
    base: List[Tile],
    num_pins: int,
    candidates: List[Tile],
    scores: "_Scores",
    i: int,
) -> List[Connection]:
    """Materialize the accepted candidate's pruned tree.

    Closed-form rows never ran the scalar prune, but its effect on the edge
    list is mechanical: a degree-1 candidate's single edge is removed in
    place; a degree-2 candidate's two edges are removed and the splice
    appended — exactly what :func:`_prune_low_degree_steiner` does when no
    cascade is possible (guaranteed here, or the row would have gone the
    full-surgery path and carried a materialized trial already).
    """
    trial = scores.trials[i]
    if trial is not None:
        return trial
    nodes = base + [candidates[i]]
    edges = _rebuild_edges(nodes, scores.parents[i], scores.selection[i])
    deg = int(scores.deg[i])
    if deg >= 3:
        return edges  # nothing prunable: every Steiner point has degree >= 3
    m = len(base)
    sel = scores.selection[i].tolist()
    prow = scores.parents[i]
    t_cand = sel.index(m)  # the candidate's own insertion step
    parent = int(prow[m])
    if deg == 1:
        del edges[t_cand]
        return edges
    # deg == 2: drop the parent and child edges, splice their far endpoints.
    child = int(np.nonzero(np.asarray(prow[:m]) == m)[0][0])
    t_child = sel.index(child)  # always after t_cand: Prim adds parents first
    edges.append((base[parent], base[child]))
    for t in sorted((t_cand, t_child), reverse=True):
        del edges[t]
    return edges


def _prune_low_degree_steiner(
    connections: List[Connection], pins: Set[Tile]
) -> List[Connection]:
    """Remove degree<=2 non-pin points by splicing their connections.

    Degree-1 Steiner points are dropped with their dangling connection;
    degree-2 points are bypassed (their two neighbours joined directly, which
    never increases Manhattan cost beyond the original detour).
    """
    conns = list(connections)
    changed = True
    while changed:
        changed = False
        degree: dict = {}
        for a, b in conns:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        for node, deg in degree.items():
            if node in pins or deg >= 3:
                continue
            incident = [c for c in conns if node in c]
            conns = [c for c in conns if node not in c]
            if deg == 2:
                (a1, b1), (a2, b2) = incident
                n1 = b1 if a1 == node else a1
                n2 = b2 if a2 == node else a2
                if n1 != n2:
                    conns.append((n1, n2))
            changed = True
            break
    return conns
