"""Nets, pins, and wire segments.

A *segment* is a maximal straight run of routed G-cell edges that carries no
internal branch point or pin; layer assignment places each segment wholly on
one layer whose preferred direction matches the segment axis (Section 2.1 of
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.grid.graph import Edge2D, Tile
from repro.grid.layers import Direction


@dataclass(frozen=True)
class Pin:
    """A net terminal: a tile location plus the layer the pin sits on."""

    x: int
    y: int
    layer: int = 1
    capacitance: float = 1.0

    @property
    def tile(self) -> Tile:
        return (self.x, self.y)


@dataclass
class Segment:
    """A maximal straight wire of one net.

    Coordinates are normalized so ``(x1, y1)`` is the lower/left endpoint.
    ``layer == 0`` means "not yet assigned".
    """

    id: int
    net_id: int
    axis: str  # 'H' or 'V'
    x1: int
    y1: int
    x2: int
    y2: int
    layer: int = 0

    def __post_init__(self) -> None:
        if self.axis == "H":
            if self.y1 != self.y2 or self.x1 >= self.x2:
                raise ValueError(f"bad horizontal segment {self}")
        elif self.axis == "V":
            if self.x1 != self.x2 or self.y1 >= self.y2:
                raise ValueError(f"bad vertical segment {self}")
        else:
            raise ValueError(f"bad axis {self.axis!r}")

    @property
    def direction(self) -> Direction:
        return Direction.HORIZONTAL if self.axis == "H" else Direction.VERTICAL

    @property
    def length(self) -> int:
        """Number of G-cell edges the segment spans."""
        if self.axis == "H":
            return self.x2 - self.x1
        return self.y2 - self.y1

    @property
    def endpoints(self) -> Tuple[Tile, Tile]:
        return (self.x1, self.y1), (self.x2, self.y2)

    def edges(self) -> List[Edge2D]:
        """The unit 2-D edges occupied by the segment."""
        if self.axis == "H":
            return [("H", x, self.y1) for x in range(self.x1, self.x2)]
        return [("V", self.x1, y) for y in range(self.y1, self.y2)]

    def tiles(self) -> List[Tile]:
        """All tiles touched by the segment, endpoint to endpoint."""
        if self.axis == "H":
            return [(x, self.y1) for x in range(self.x1, self.x2 + 1)]
        return [(self.x1, y) for y in range(self.y1, self.y2 + 1)]

    def midpoint(self) -> Tuple[float, float]:
        """Geometric centre — the point partitioning buckets segments by."""
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def other_endpoint(self, tile: Tile) -> Tile:
        a, b = self.endpoints
        if tile == a:
            return b
        if tile == b:
            return a
        raise ValueError(f"{tile} is not an endpoint of segment {self.id}")


@dataclass
class Net:
    """A net: a named collection of pins plus (after routing) a topology."""

    id: int
    name: str
    pins: List[Pin] = field(default_factory=list)
    # Filled by the router / topology builder:
    route_edges: List[Edge2D] = field(default_factory=list)
    topology: Optional["NetTopology"] = None  # type: ignore[name-defined]  # noqa: F821

    @property
    def num_pins(self) -> int:
        return len(self.pins)

    @property
    def pin_tiles(self) -> List[Tile]:
        return [p.tile for p in self.pins]

    @property
    def source(self) -> Pin:
        """By ISPD convention the first pin drives the net."""
        if not self.pins:
            raise ValueError(f"net {self.name} has no pins")
        return self.pins[0]

    @property
    def sinks(self) -> List[Pin]:
        return self.pins[1:]

    def hpwl(self) -> int:
        """Half-perimeter wirelength of the pin bounding box, in G-cells."""
        xs = [p.x for p in self.pins]
        ys = [p.y for p in self.pins]
        if not xs:
            return 0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def is_local(self) -> bool:
        """True when every pin shares one tile (no routing needed)."""
        tiles = {p.tile for p in self.pins}
        return len(tiles) <= 1
