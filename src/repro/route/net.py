"""Nets, pins, and wire segments.

A *segment* is a maximal straight run of routed G-cell edges that carries no
internal branch point or pin; layer assignment places each segment wholly on
one layer whose preferred direction matches the segment axis (Section 2.1 of
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.grid.graph import Edge2D, Tile
from repro.grid.layers import Direction

if TYPE_CHECKING:  # pragma: no cover - typing only (store imports Pin lazily)
    from repro.ispd.store import NetStore


@dataclass(frozen=True)
class Pin:
    """A net terminal: a tile location plus the layer the pin sits on."""

    x: int
    y: int
    layer: int = 1
    capacitance: float = 1.0

    @property
    def tile(self) -> Tile:
        return (self.x, self.y)


@dataclass
class Segment:
    """A maximal straight wire of one net.

    Coordinates are normalized so ``(x1, y1)`` is the lower/left endpoint.
    ``layer == 0`` means "not yet assigned".
    """

    id: int
    net_id: int
    axis: str  # 'H' or 'V'
    x1: int
    y1: int
    x2: int
    y2: int
    layer: int = 0

    def __post_init__(self) -> None:
        if self.axis == "H":
            if self.y1 != self.y2 or self.x1 >= self.x2:
                raise ValueError(f"bad horizontal segment {self}")
        elif self.axis == "V":
            if self.x1 != self.x2 or self.y1 >= self.y2:
                raise ValueError(f"bad vertical segment {self}")
        else:
            raise ValueError(f"bad axis {self.axis!r}")

    @property
    def direction(self) -> Direction:
        return Direction.HORIZONTAL if self.axis == "H" else Direction.VERTICAL

    @property
    def length(self) -> int:
        """Number of G-cell edges the segment spans."""
        if self.axis == "H":
            return self.x2 - self.x1
        return self.y2 - self.y1

    @property
    def endpoints(self) -> Tuple[Tile, Tile]:
        return (self.x1, self.y1), (self.x2, self.y2)

    def edges(self) -> List[Edge2D]:
        """The unit 2-D edges occupied by the segment."""
        if self.axis == "H":
            return [("H", x, self.y1) for x in range(self.x1, self.x2)]
        return [("V", self.x1, y) for y in range(self.y1, self.y2)]

    def tiles(self) -> List[Tile]:
        """All tiles touched by the segment, endpoint to endpoint."""
        if self.axis == "H":
            return [(x, self.y1) for x in range(self.x1, self.x2 + 1)]
        return [(self.x1, y) for y in range(self.y1, self.y2 + 1)]

    def midpoint(self) -> Tuple[float, float]:
        """Geometric centre — the point partitioning buckets segments by."""
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def other_endpoint(self, tile: Tile) -> Tile:
        a, b = self.endpoints
        if tile == a:
            return b
        if tile == b:
            return a
        raise ValueError(f"{tile} is not an endpoint of segment {self.id}")


class Net:
    """A net: a named collection of pins plus (after routing) a topology.

    Two construction modes:

    - **materialized** — ``Net(id, name, pins=[Pin(...), ...])``, the
      historical form every test and adapter uses;
    - **store-backed** — ``Net(id, name, store=store, row=i)``: pins live in
      the :class:`~repro.ispd.store.NetStore` structured arrays and the
      :class:`Pin` objects are only built on first ``.pins`` access.  The
      router-facing queries (``pin_tiles``, ``num_pins``, ``hpwl``) answer
      straight from the arrays, so routing an un-materialized population
      never boxes a pin.
    """

    __slots__ = ("id", "name", "route_edges", "topology", "_pins", "_store", "_row")

    def __init__(
        self,
        id: int,
        name: str,
        pins: Optional[Sequence[Pin]] = None,
        route_edges: Optional[List[Edge2D]] = None,
        topology: Optional["NetTopology"] = None,  # type: ignore[name-defined]  # noqa: F821
        *,
        store: Optional["NetStore"] = None,
        row: Optional[int] = None,
    ) -> None:
        self.id = id
        self.name = name
        if store is not None and row is None:
            raise ValueError("store-backed nets need a row index")
        self._store = store
        self._row = row
        if pins is not None:
            self._pins: Optional[List[Pin]] = list(pins)
        elif store is not None:
            self._pins = None  # lazily materialized from the store
        else:
            self._pins = []
        # Filled by the router / topology builder:
        self.route_edges: List[Edge2D] = route_edges if route_edges is not None else []
        self.topology = topology

    def __repr__(self) -> str:
        return f"Net(id={self.id}, name={self.name!r}, pins={self.num_pins})"

    @property
    def pins(self) -> List[Pin]:
        if self._pins is None:
            self._pins = self._store.materialize_pins(self._row)
        return self._pins

    @property
    def num_pins(self) -> int:
        if self._pins is None:
            return int(self._store.net_table["pin_count"][self._row])
        return len(self._pins)

    @property
    def pin_tiles(self) -> List[Tile]:
        if self._pins is None:
            return self._store.pin_tiles(self._row)
        return [p.tile for p in self._pins]

    @property
    def source(self) -> Pin:
        """By ISPD convention the first pin drives the net."""
        if self.num_pins == 0:
            raise ValueError(f"net {self.name} has no pins")
        return self.pins[0]

    @property
    def source_tile(self) -> Tile:
        """The source pin's tile, without materializing store-backed pins."""
        if self._pins is None:
            pins = self._store.pin_slice(self._row)
            if not len(pins):
                raise ValueError(f"net {self.name} has no pins")
            return (int(pins["x"][0]), int(pins["y"][0]))
        return self.source.tile

    @property
    def sinks(self) -> List[Pin]:
        return self.pins[1:]

    def hpwl(self) -> int:
        """Half-perimeter wirelength of the pin bounding box, in G-cells."""
        if self._pins is None:
            pins = self._store.pin_slice(self._row)
            if not len(pins):
                return 0
            xs = pins["x"]
            ys = pins["y"]
            return int(xs.max()) - int(xs.min()) + int(ys.max()) - int(ys.min())
        if not self._pins:
            return 0
        xs = [p.x for p in self._pins]
        ys = [p.y for p in self._pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def is_local(self) -> bool:
        """True when every pin shares one tile (no routing needed)."""
        return len(set(self.pin_tiles)) <= 1
