"""Routing substrate: nets, Steiner topologies, 2-D global routing, and the
initial (via-count-driven) layer assignment.

The paper assumes "initial routing and layer assignment" as input (Problem 1);
in the original work that input came from NCTU-GR.  This subpackage is our
stand-in: a congestion-aware pattern/maze router over rectilinear Steiner
topologies, followed by a congestion-constrained net-by-net dynamic-programming
layer assignment in the style of Lee & Wang (ref. [5] of the paper).
"""

from repro.route.net import Net, Pin, Segment
from repro.route.tree import NetTopology, build_topology
from repro.route.steiner import steiner_tree_edges
from repro.route.router import GlobalRouter, RouterConfig
from repro.route.assignment import InitialAssigner, AssignerConfig
from repro.route.validation import ValidationReport, validate_solution

__all__ = [
    "ValidationReport",
    "validate_solution",
    "Net",
    "Pin",
    "Segment",
    "NetTopology",
    "build_topology",
    "steiner_tree_edges",
    "GlobalRouter",
    "RouterConfig",
    "InitialAssigner",
    "AssignerConfig",
]
