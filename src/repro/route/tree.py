"""Segment-tree topology of a routed net.

Given the set of 2-D G-cell edges a router produced for a net, this module
derives the structure every later stage consumes:

- maximal straight *segments* (broken at pins, branch points, and corners);
- the directed tree over segments rooted at the source pin's tile;
- the junction tiles where stacked vias arise once layers are assigned.

The directed structure is what the Elmore engine walks (downstream
capacitances bottom-up, path delays top-down) and what the layer-assignment
DP and the CPLA optimizer use to pair segments into via terms ``S_x(N_c)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.grid.graph import Edge2D, Tile, edge_endpoints
from repro.route.net import Net, Pin, Segment


class TopologyError(ValueError):
    """Raised when route edges do not form a tree spanning the net's pins."""


@dataclass
class ViaStack:
    """A stacked via at ``tile`` spanning layers ``lower..upper`` (inclusive)."""

    tile: Tile
    lower: int
    upper: int

    @property
    def num_cuts(self) -> int:
        return self.upper - self.lower


@dataclass
class NetTopology:
    """Directed segment tree of one routed net.

    Attributes
    ----------
    segments:
        Segment list; ``segments[k].id == k`` (ids are local to the net).
    parent / children:
        Tree structure over segment ids; root segments have parent ``None``.
    parent_tile / child_tile:
        For each segment, the endpoint nearer to (resp. farther from) the
        source.  ``child_tile[s]`` is the junction where ``s`` meets its
        children.
    pins_at:
        Pins grouped by tile (a tile may hold several pins, possibly on
        different layers).
    """

    net_id: int
    root_tile: Tile
    segments: List[Segment] = field(default_factory=list)
    parent: Dict[int, Optional[int]] = field(default_factory=dict)
    children: Dict[int, List[int]] = field(default_factory=dict)
    parent_tile: Dict[int, Tile] = field(default_factory=dict)
    child_tile: Dict[int, Tile] = field(default_factory=dict)
    pins_at: Dict[Tile, List[Pin]] = field(default_factory=dict)
    # Lazily-built tile -> carrier-segment index (see carrier_segment()).
    # The tree is structurally immutable once built — only segment *layers*
    # change afterwards — so the index never needs invalidation.
    _carrier_index: Optional[Dict[Tile, Optional[int]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- structure queries -------------------------------------------------

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def root_segments(self) -> List[int]:
        return [s.id for s in self.segments if self.parent[s.id] is None]

    def topo_order(self) -> List[int]:
        """Segment ids ordered parents-before-children."""
        order: List[int] = []
        stack = list(reversed(self.root_segments()))
        while stack:
            sid = stack.pop()
            order.append(sid)
            stack.extend(reversed(self.children[sid]))
        if len(order) != len(self.segments):
            raise TopologyError("segment tree is not connected")
        return order

    def reverse_topo_order(self) -> List[int]:
        """Children-before-parents — the order downstream caps accumulate."""
        return list(reversed(self.topo_order()))

    def path_to_segment(self, sid: int) -> List[int]:
        """Segment ids from a root segment down to (and including) ``sid``."""
        path = [sid]
        cur = self.parent[sid]
        while cur is not None:
            path.append(cur)
            cur = self.parent[cur]
        path.reverse()
        return path

    def carrier_segment(self, tile: Tile) -> Optional[int]:
        """The segment whose child endpoint delivers the signal to ``tile``.

        Pin tiles are always breakpoints, hence segment endpoints; a tile
        that is only a parent-side endpoint (shouldn't happen for sinks)
        resolves to that segment's parent, and unknown tiles to ``None`` —
        the same answers the previous O(segments) scan produced, served from
        a one-time index (the Elmore engine asks once per sink per analyze).
        """
        index = self._carrier_index
        if index is None:
            index = {}
            fallback: Dict[Tile, Optional[int]] = {}
            for sid in range(len(self.segments)):
                index.setdefault(self.child_tile[sid], sid)
                fallback.setdefault(self.parent_tile[sid], self.parent[sid])
            for tile_, carrier in fallback.items():
                index.setdefault(tile_, carrier)
            self._carrier_index = index
        return index.get(tile)

    def segments_at(self, tile: Tile) -> List[int]:
        """Segments having ``tile`` as one of their endpoints."""
        return [
            s.id
            for s in self.segments
            if tile in (self.parent_tile[s.id], self.child_tile[s.id])
        ]

    def sink_pins(self, source: Pin) -> List[Pin]:
        out = []
        for pins in self.pins_at.values():
            out.extend(p for p in pins if p != source)
        return out

    # -- via derivation ------------------------------------------------------

    def junction_tiles(self) -> Set[Tile]:
        tiles: Set[Tile] = {self.root_tile}
        for sid in self.parent:
            tiles.add(self.parent_tile[sid])
            tiles.add(self.child_tile[sid])
        tiles.update(self.pins_at.keys())
        return tiles

    def via_stacks(self) -> List[ViaStack]:
        """Stacked vias implied by the current layer assignment.

        At each junction tile the layers of all incident segments plus any
        pin layers there must be joined by one via stack spanning their
        min..max.  Segments with ``layer == 0`` (unassigned) are skipped.
        """
        stacks: List[ViaStack] = []
        for tile in sorted(self.junction_tiles()):
            layers = [
                self.segments[sid].layer
                for sid in self.segments_at(tile)
                if self.segments[sid].layer > 0
            ]
            layers.extend(p.layer for p in self.pins_at.get(tile, []))
            if len(layers) >= 2:
                lo, hi = min(layers), max(layers)
                if hi > lo:
                    stacks.append(ViaStack(tile, lo, hi))
        return stacks

    def connected_pairs(self) -> List[Tuple[int, int]]:
        """All (parent, child) segment-id pairs joined by a junction —
        the pair set ``S_x(N_c)`` of the paper's via terms."""
        pairs = []
        for sid, par in self.parent.items():
            if par is not None:
                pairs.append((par, sid))
        return pairs


def _dedupe(edges: Iterable[Edge2D]) -> List[Edge2D]:
    seen: Set[Edge2D] = set()
    out: List[Edge2D] = []
    for e in edges:
        if e not in seen:
            seen.add(e)
            out.append(e)
    return out


def build_topology(net: Net, edges: Optional[Sequence[Edge2D]] = None) -> NetTopology:
    """Derive the :class:`NetTopology` of ``net`` from its route edges.

    ``edges`` defaults to ``net.route_edges``.  The edges must form a tree
    over tiles that contains every pin tile; otherwise :class:`TopologyError`
    is raised.  The result is also stored on ``net.topology``.
    """
    if edges is None:
        edges = net.route_edges
    edges = _dedupe(edges)
    if not net.pins:
        raise TopologyError(f"net {net.name} has no pins")

    pins_at: Dict[Tile, List[Pin]] = {}
    for pin in net.pins:
        pins_at.setdefault(pin.tile, []).append(pin)

    root = net.source.tile
    topo = NetTopology(net_id=net.id, root_tile=root, pins_at=pins_at)

    # Local net: all pins in one tile and no wiring.
    if not edges:
        if not net.is_local():
            raise TopologyError(
                f"net {net.name}: pins span multiple tiles but no route edges given"
            )
        net.topology = topo
        return topo

    # Tile adjacency from the unit edges.
    adj: Dict[Tile, Set[Tile]] = {}
    for e in edges:
        a, b = edge_endpoints(e)
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)

    for pin in net.pins:
        if pin.tile not in adj:
            raise TopologyError(
                f"net {net.name}: pin tile {pin.tile} not covered by route"
            )

    # BFS from the root establishes the directed tree over tiles and detects
    # cycles / disconnection.
    parent_of: Dict[Tile, Optional[Tile]] = {root: None}
    order: List[Tile] = [root]
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v == parent_of[u]:
                continue
            if v in parent_of:
                raise TopologyError(f"net {net.name}: route contains a cycle near {v}")
            parent_of[v] = u
            order.append(v)
            queue.append(v)
    if len(parent_of) != len(adj):
        raise TopologyError(f"net {net.name}: route is disconnected")

    # Breakpoints end segments: the root, pin tiles, branch tiles, corners.
    def axis_of(a: Tile, b: Tile) -> str:
        return "H" if a[1] == b[1] else "V"

    breakpoints: Set[Tile] = {root}
    breakpoints.update(t for t in adj if t in pins_at)
    for t, nbrs in adj.items():
        if len(nbrs) != 2:
            # Branch points and dangling endpoints (routers normally prune
            # non-pin stubs, but segmentation stays correct if they remain).
            breakpoints.add(t)
        else:
            n1, n2 = sorted(nbrs)
            if axis_of(t, n1) != axis_of(t, n2):
                breakpoints.add(t)

    children_tiles: Dict[Tile, List[Tile]] = {t: [] for t in adj}
    for t in order[1:]:
        par = parent_of[t]
        assert par is not None
        children_tiles[par].append(t)

    # Walk outward from each breakpoint, creating one segment per straight
    # chain.  Breakpoints are processed in BFS order so a segment's parent
    # (the segment that *arrived* at its start tile) is already known.
    incoming_seg: Dict[Tile, int] = {}

    def add_segment(start: Tile, end: Tile, axis: str) -> int:
        sid = len(topo.segments)
        (sx, sy), (ex, ey) = start, end
        x1, x2 = min(sx, ex), max(sx, ex)
        y1, y2 = min(sy, ey), max(sy, ey)
        seg = Segment(id=sid, net_id=net.id, axis=axis, x1=x1, y1=y1, x2=x2, y2=y2)
        topo.segments.append(seg)
        topo.parent_tile[sid] = start
        topo.child_tile[sid] = end
        par = incoming_seg.get(start)
        topo.parent[sid] = par
        topo.children[sid] = []
        if par is not None:
            topo.children[par].append(sid)
        incoming_seg[end] = sid
        return sid

    for bp in order:
        if bp not in breakpoints:
            continue
        for first in children_tiles[bp]:
            axis = axis_of(bp, first)
            cur = first
            while cur not in breakpoints:
                nxt = children_tiles[cur]
                # Non-breakpoint tiles are straight-through by construction.
                assert len(nxt) == 1, "non-breakpoint tile must continue straight"
                cur = nxt[0]
            add_segment(bp, cur, axis)

    if sum(s.length for s in topo.segments) != len(edges):
        raise TopologyError(
            f"net {net.name}: segmentation lost edges "
            f"({sum(s.length for s in topo.segments)} vs {len(edges)})"
        )

    net.topology = topo
    return topo
