"""Initial net-by-net layer assignment.

Produces the "initial layer assignment" input of Problem 1.  Following the
congestion-constrained via-minimization style of Lee & Wang (ref. [5] of the
paper), each net is assigned independently by a dynamic program over its
segment tree:

- segment cost: congestion penalty for occupying a track on (edge, layer),
  plus a mild bias that keeps non-critical wires on lower layers (leaving
  the fast upper layers available for the incremental timing optimizer);
- junction cost: via cuts between a parent layer and a child layer, plus the
  cuts needed to reach pin layers.

Nets are processed longest-first so that long nets — the ones that genuinely
need specific resources — see the emptiest grid; this is the fixed-net-order
weakness the negotiation literature (ref. [7]) points out, which is fine
here because CPLA/TILA later re-optimize the nets that matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grid.graph import GridGraph
from repro.route.net import Net
from repro.route.occupancy import commit_net
from repro.utils import get_logger

log = get_logger(__name__)


@dataclass
class AssignerConfig:
    """Cost weights of the initial-assignment DP."""

    congestion_weight: float = 16.0
    via_weight: float = 1.0
    upper_layer_bias: float = 0.05
    order: str = "wirelength_desc"  # or "wirelength_asc", "id"

    def __post_init__(self) -> None:
        if self.order not in ("wirelength_desc", "wirelength_asc", "id"):
            raise ValueError(f"unknown net order {self.order!r}")


class InitialAssigner:
    """Assigns layers to every net's segments and commits them to the grid."""

    def __init__(self, grid: GridGraph, config: Optional[AssignerConfig] = None) -> None:
        self.grid = grid
        self.config = config or AssignerConfig()

    # -- cost terms ---------------------------------------------------------

    def _segment_cost(self, seg, layer: int) -> float:
        """Congestion + layer-bias cost of placing ``seg`` on ``layer``."""
        cfg = self.config
        cost = cfg.upper_layer_bias * layer * seg.length
        for edge in seg.edges():
            remaining = self.grid.remaining(edge, layer)
            if remaining <= 0:
                cost += cfg.congestion_weight * (1 - remaining)
            else:
                # Soft load-balancing: fuller edges cost slightly more.
                cap = self.grid.capacity(edge, layer)
                cost += (cap - remaining + 1) / (cap + 1.0)
        return cost

    def _via_cost(self, layer_a: int, layer_b: int) -> float:
        return self.config.via_weight * abs(layer_a - layer_b)

    # -- per-net DP -----------------------------------------------------------

    def assign_net(self, net: Net) -> None:
        """Pick layers for one net (DP over its segment tree) and commit."""
        topo = net.topology
        if topo is None:
            raise ValueError(f"net {net.name} has no topology; route it first")
        if not topo.segments:
            # Local net: only pin-layer via stacks, derived automatically.
            commit_net(self.grid, topo)
            return

        candidates: Dict[int, Tuple[int, ...]] = {
            seg.id: self.grid.stack.layers_of(seg.direction) for seg in topo.segments
        }
        dp: Dict[int, Dict[int, float]] = {}
        best_child_layer: Dict[Tuple[int, int, int], int] = {}

        for sid in topo.reverse_topo_order():
            seg = topo.segments[sid]
            dp[sid] = {}
            pin_layers = [
                p.layer for p in topo.pins_at.get(topo.child_tile[sid], [])
            ]
            for layer in candidates[sid]:
                cost = self._segment_cost(seg, layer)
                cost += sum(self._via_cost(layer, pl) for pl in pin_layers)
                for cid in topo.children[sid]:
                    best = None
                    for child_layer in candidates[cid]:
                        total = dp[cid][child_layer] + self._via_cost(layer, child_layer)
                        if best is None or total < best[0]:
                            best = (total, child_layer)
                    assert best is not None
                    cost += best[0]
                    best_child_layer[(sid, layer, cid)] = best[1]
                dp[sid][layer] = cost

        # Roots couple through the source pin's layer.
        source_layer = net.source.layer
        chosen: Dict[int, int] = {}
        for rid in topo.root_segments():
            best_layer = min(
                candidates[rid],
                key=lambda l: dp[rid][l] + self._via_cost(l, source_layer),
            )
            chosen[rid] = best_layer

        # Back-propagate choices down the tree.
        stack: List[int] = list(chosen)
        while stack:
            sid = stack.pop()
            layer = chosen[sid]
            topo.segments[sid].layer = layer
            for cid in topo.children[sid]:
                chosen[cid] = best_child_layer[(sid, layer, cid)]
                stack.append(cid)

        commit_net(self.grid, topo)

    def assign(self, nets: Sequence[Net]) -> None:
        """Assign every net, in the configured order."""
        cfg = self.config
        if cfg.order == "wirelength_desc":
            order = sorted(nets, key=lambda n: (-len(n.route_edges), n.id))
        elif cfg.order == "wirelength_asc":
            order = sorted(nets, key=lambda n: (len(n.route_edges), n.id))
        else:
            order = sorted(nets, key=lambda n: n.id)
        for net in order:
            self.assign_net(net)
        log.debug(
            "initial assignment done: %d vias, wire overflow %d",
            self.grid.total_vias(),
            self.grid.total_wire_overflow(),
        )
