"""Commit/release of a net's 3-D occupancy on the grid.

Every optimizer in this repo follows the same discipline:

1. :func:`release_net` — remove the net's wires and vias from the grid
   *before* touching any segment layer;
2. mutate ``segment.layer`` freely;
3. :func:`commit_net` — re-add wires and the via stacks implied by the new
   assignment.

Releasing after layers changed would corrupt the usage counters, so the
functions recompute via stacks from the topology at call time and the caller
must keep the release/commit bracketing tight.
"""

from __future__ import annotations

from typing import Iterable

from repro.grid.graph import GridGraph
from repro.route.tree import NetTopology


def commit_net(grid: GridGraph, topo: NetTopology) -> None:
    """Add the net's wires and via stacks to the grid usage counters.

    Every segment must already have a positive layer.
    """
    for seg in topo.segments:
        if seg.layer <= 0:
            raise ValueError(
                f"net {topo.net_id} segment {seg.id} has no layer; "
                "assign layers before committing"
            )
        for edge in seg.edges():
            grid.add_wire(edge, seg.layer)
    for via in topo.via_stacks():
        grid.add_via_stack(via.tile, via.lower, via.upper)


def release_net(grid: GridGraph, topo: NetTopology) -> None:
    """Remove the net's wires and via stacks from the grid usage counters.

    Must be called with the same layer assignment that was committed.
    """
    for seg in topo.segments:
        if seg.layer <= 0:
            raise ValueError(
                f"net {topo.net_id} segment {seg.id} has no layer; "
                "cannot release an uncommitted net"
            )
        for edge in seg.edges():
            grid.remove_wire(edge, seg.layer)
    for via in topo.via_stacks():
        grid.remove_via_stack(via.tile, via.lower, via.upper)


def commit_all(grid: GridGraph, topologies: Iterable[NetTopology]) -> None:
    for topo in topologies:
        commit_net(grid, topo)
