"""Whole-solution consistency checking.

`validate_solution` audits a routed, layer-assigned benchmark the way a
downstream consumer (detailed router, sign-off flow) would:

- every net's route edges form a tree spanning its pins (via the topology);
- every segment sits on a direction-legal layer;
- the grid's wire-usage counters equal the usage recomputed from scratch
  out of the nets (no double counting, no leaks from release/commit);
- the via-usage counters equal the stacks implied by the assignments;
- capacity violations are enumerated rather than silently tolerated.

The optimizers maintain these invariants incrementally; the validator
re-derives them from first principles, so tests (and users) can catch any
bookkeeping drift after arbitrarily long engine runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.grid.graph import Edge2D
from repro.ispd.benchmark import Benchmark


@dataclass
class ValidationReport:
    """Outcome of one audit; ``ok`` is True when nothing is wrong.

    Capacity overflows are listed separately (``wire_overflows``) because
    inputs with pre-existing overflow are legal for the incremental problem;
    they make the report "dirty" only if ``strict_capacity`` was requested.
    """

    errors: List[str] = field(default_factory=list)
    wire_overflows: List[Tuple[Edge2D, int, int]] = field(default_factory=list)
    via_overflow: int = 0
    strict_capacity: bool = False

    @property
    def ok(self) -> bool:
        if self.errors:
            return False
        if self.strict_capacity and self.wire_overflows:
            return False
        return True

    def summary(self) -> str:
        lines = [f"errors: {len(self.errors)}"]
        lines += [f"  - {e}" for e in self.errors[:20]]
        if len(self.errors) > 20:
            lines.append(f"  ... and {len(self.errors) - 20} more")
        lines.append(f"wire overflows: {len(self.wire_overflows)}")
        lines.append(f"via overflow total: {self.via_overflow}")
        return "\n".join(lines)


def validate_solution(bench: Benchmark, strict_capacity: bool = False) -> ValidationReport:
    """Audit a benchmark's routing + layer assignment against its grid."""
    report = ValidationReport(strict_capacity=strict_capacity)
    grid = bench.grid
    stack = bench.stack

    # Recompute wire and via usage from the nets.
    wire_usage: Dict[Tuple[Edge2D, int], int] = {}
    via_usage = np.zeros(
        (grid.nx_tiles, grid.ny_tiles, max(stack.num_layers - 1, 0)), dtype=np.int64
    )
    for net in bench.nets:
        topo = net.topology
        if topo is None:
            report.errors.append(f"net {net.name}: no topology")
            continue
        for seg in topo.segments:
            if seg.layer <= 0:
                report.errors.append(
                    f"net {net.name} segment {seg.id}: unassigned layer"
                )
                continue
            if stack.direction_of(seg.layer) is not seg.direction:
                report.errors.append(
                    f"net {net.name} segment {seg.id}: layer {seg.layer} routes "
                    f"{stack.direction_of(seg.layer)}, segment is {seg.direction}"
                )
                continue
            for edge in seg.edges():
                if not grid.contains_edge(edge):
                    report.errors.append(
                        f"net {net.name} segment {seg.id}: edge {edge} off grid"
                    )
                    continue
                key = (edge, seg.layer)
                wire_usage[key] = wire_usage.get(key, 0) + 1
        for via in topo.via_stacks():
            x, y = via.tile
            if not grid.contains_tile(via.tile):
                report.errors.append(f"net {net.name}: via tile {via.tile} off grid")
                continue
            via_usage[x, y, via.lower - 1 : via.upper - 1] += 1

    # Compare against the grid's counters.
    for layer in stack:
        orient = "H" if layer.direction.value == "H" else "V"
        for edge in grid.iter_edges(orient):
            expected = wire_usage.get((edge, layer.index), 0)
            actual = grid.usage(edge, layer.index)
            if expected != actual:
                report.errors.append(
                    f"usage drift at {edge} layer {layer.index}: grid says "
                    f"{actual}, nets imply {expected}"
                )
            cap = grid.capacity(edge, layer.index)
            if actual > cap:
                report.wire_overflows.append((edge, layer.index, actual - cap))

    for tile in grid.iter_tiles():
        x, y = tile
        for cut in range(1, stack.num_layers):
            expected = int(via_usage[x, y, cut - 1])
            actual = grid.via_usage_at(tile, cut)
            if expected != actual:
                report.errors.append(
                    f"via drift at {tile} cut {cut}: grid says {actual}, "
                    f"nets imply {expected}"
                )

    report.via_overflow = grid.total_via_overflow()
    return report
