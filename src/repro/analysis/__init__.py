"""Metrics, reports, and figure/table rendering for the evaluation."""

from repro.analysis.runreport import IterationStats, RunReport
from repro.analysis.metrics import benchmark_metrics, MethodMetrics
from repro.analysis.histogram import delay_histogram, render_histogram
from repro.analysis.report import Table, render_table, density_map_text

__all__ = [
    "IterationStats",
    "RunReport",
    "benchmark_metrics",
    "MethodMetrics",
    "delay_histogram",
    "render_histogram",
    "Table",
    "render_table",
    "density_map_text",
]
