"""Table-2-style metric rows and aggregate ratios."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.runreport import RunReport


@dataclass
class MethodMetrics:
    """One benchmark x method row of Table 2."""

    benchmark: str
    method: str
    avg_tcp: float
    max_tcp: float
    via_overflow: int
    vias: int
    cpu_seconds: float

    @classmethod
    def from_report(cls, report: RunReport) -> "MethodMetrics":
        return cls(
            benchmark=report.benchmark,
            method=report.method,
            avg_tcp=report.final_avg_tcp,
            max_tcp=report.final_max_tcp,
            via_overflow=report.final_via_overflow,
            vias=report.final_vias,
            cpu_seconds=report.runtime,
        )


def benchmark_metrics(report: RunReport) -> MethodMetrics:
    """Convenience wrapper for :meth:`MethodMetrics.from_report`."""
    return MethodMetrics.from_report(report)


def average_row(rows: Sequence[MethodMetrics], method: str) -> MethodMetrics:
    """Arithmetic mean over benchmarks (the paper's ``average`` row)."""
    if not rows:
        raise ValueError("cannot average zero rows")
    n = len(rows)
    return MethodMetrics(
        benchmark="average",
        method=method,
        avg_tcp=sum(r.avg_tcp for r in rows) / n,
        max_tcp=sum(r.max_tcp for r in rows) / n,
        via_overflow=int(round(sum(r.via_overflow for r in rows) / n)),
        vias=int(round(sum(r.vias for r in rows) / n)),
        cpu_seconds=sum(r.cpu_seconds for r in rows) / n,
    )


def ratio_row(ours: MethodMetrics, baseline: MethodMetrics) -> Dict[str, float]:
    """Per-column ratio of ``ours`` to ``baseline`` (paper's ``ratio`` row,
    where the baseline normalizes to 1.00)."""

    def safe(a: float, b: float) -> float:
        return a / b if b else float("nan")

    return {
        "avg_tcp": safe(ours.avg_tcp, baseline.avg_tcp),
        "max_tcp": safe(ours.max_tcp, baseline.max_tcp),
        "via_overflow": safe(ours.via_overflow, baseline.via_overflow),
        "vias": safe(ours.vias, baseline.vias),
        "cpu_seconds": safe(ours.cpu_seconds, baseline.cpu_seconds),
    }


def collect_by_method(
    reports: Sequence[RunReport], method: Optional[str] = None
) -> List[MethodMetrics]:
    rows = [MethodMetrics.from_report(r) for r in reports]
    if method is not None:
        rows = [r for r in rows if r.method == method]
    return rows
