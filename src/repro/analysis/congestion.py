"""Congestion analytics over a routed grid.

The paper motivates self-adaptive partitioning with the uneven routing
density of Fig. 3(b); these helpers quantify that unevenness:

- per-(edge, layer) utilization series and summary statistics;
- hotspot extraction (the most-utilized edges);
- a Gini coefficient of edge utilization — 0 means perfectly uniform
  routing, values toward 1 mean demand concentrates in a few corridors
  (the regime where uniform K x K partitioning wastes effort).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.grid.graph import Edge2D, GridGraph
from repro.grid.layers import Direction


@dataclass
class CongestionStats:
    """Summary of edge utilization across the whole grid."""

    mean_utilization: float
    max_utilization: float
    p95_utilization: float
    overflowed_edges: int
    gini: float

    def summary(self) -> str:
        return (
            f"util mean={self.mean_utilization:.2f} "
            f"p95={self.p95_utilization:.2f} max={self.max_utilization:.2f} "
            f"overflowed={self.overflowed_edges} gini={self.gini:.3f}"
        )


def _utilizations(grid: GridGraph) -> np.ndarray:
    values = []
    for layer in grid.stack:
        orient = "H" if layer.direction is Direction.HORIZONTAL else "V"
        cap = grid.capacity_array(layer.index).astype(np.float64)
        use = grid.usage_array(layer.index).astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(cap > 0, use / cap, 0.0)
        values.append(util.ravel())
        del orient
    if not values:
        return np.zeros(0)
    return np.concatenate(values)


def gini_coefficient(values: np.ndarray) -> float:
    """Gini of a non-negative sample (0 = uniform, -> 1 = concentrated)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    n = v.size
    index = np.arange(1, n + 1)
    return float((2 * (index * v).sum() - (n + 1) * v.sum()) / (n * v.sum()))


def congestion_stats(grid: GridGraph) -> CongestionStats:
    """Utilization statistics of every (edge, layer) in the grid."""
    utils = _utilizations(grid)
    if utils.size == 0:
        return CongestionStats(0.0, 0.0, 0.0, 0, 0.0)
    return CongestionStats(
        mean_utilization=float(utils.mean()),
        max_utilization=float(utils.max()),
        p95_utilization=float(np.percentile(utils, 95)),
        overflowed_edges=int((utils > 1.0).sum()),
        gini=gini_coefficient(utils),
    )


def hotspots(grid: GridGraph, top: int = 10) -> List[Tuple[Edge2D, int, float]]:
    """The ``top`` most-utilized (edge, layer) pairs with their utilization."""
    entries: List[Tuple[Edge2D, int, float]] = []
    for layer in grid.stack:
        orient = "H" if layer.direction is Direction.HORIZONTAL else "V"
        for edge in grid.iter_edges(orient):
            cap = grid.capacity(edge, layer.index)
            if cap <= 0:
                continue
            util = grid.usage(edge, layer.index) / cap
            if util > 0:
                entries.append((edge, layer.index, util))
    entries.sort(key=lambda e: (-e[2], e[0], e[1]))
    return entries[:top]
