"""Text tables and maps for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

import numpy as np

Cell = Union[str, int, float]


@dataclass
class Table:
    """A simple column-aligned text table."""

    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self, float_format: str = "{:.2f}") -> str:
        return render_table(self.headers, self.rows, float_format)

    def render_csv(self, float_format: str = "{:.6g}") -> str:
        """Comma-separated rendering for downstream tooling/plotting."""
        lines = [",".join(self.headers)]
        for row in self.rows:
            lines.append(
                ",".join(_format_cell(c, float_format).replace(",", ";") for c in row)
            )
        return "\n".join(lines)


def _format_cell(cell: Cell, float_format: str) -> str:
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    float_format: str = "{:.2f}",
) -> str:
    """Render rows under headers with right-aligned numeric columns."""
    text_rows = [[_format_cell(c, float_format) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(widths[k]) for k, h in enumerate(headers)), sep]
    for row in text_rows:
        lines.append(" | ".join(cell.rjust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


_SHADES = " .:-=+*#%@"


def density_map_text(density: np.ndarray, width: int = 64) -> str:
    """ASCII heat map of a 2-D density array (Fig. 3(b)-style view).

    The array is oriented with y increasing upward, x rightward.
    """
    dens = np.asarray(density, dtype=np.float64)
    if dens.ndim != 2:
        raise ValueError("density must be 2-D")
    peak = dens.max()
    if peak <= 0:
        peak = 1.0
    lines = []
    for y in range(dens.shape[1] - 1, -1, -1):
        chars = []
        for x in range(dens.shape[0]):
            level = int(dens[x, y] / peak * (len(_SHADES) - 1))
            chars.append(_SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)
