"""Pin-delay distribution histograms (Fig. 1 of the paper).

Fig. 1 plots sink-pin delay counts of the released critical nets on a
log-2 vertical axis; :func:`render_histogram` reproduces that as text so
runs are comparable in a terminal or a log file.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np


def delay_histogram(
    delays: Sequence[float],
    bins: int = 14,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bin delays into ``bins`` equal-width buckets; returns (edges, counts)."""
    if bins < 1:
        raise ValueError("need at least one bin")
    data = np.asarray(list(delays), dtype=np.float64)
    if data.size == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return edges, np.zeros(bins, dtype=np.int64)
    lo = float(data.min()) if lo is None else lo
    hi = float(data.max()) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    counts, edges = np.histogram(data, bins=bins, range=(lo, hi))
    return edges, counts.astype(np.int64)


def render_histogram(
    edges: np.ndarray,
    counts: np.ndarray,
    title: str = "",
    width: int = 48,
    log2: bool = True,
) -> str:
    """ASCII rendering with an (optionally) log-2 bar length, as in Fig. 1."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(int(counts.max()), 1) if len(counts) else 1
    denom = math.log2(peak + 1) if log2 else float(peak)
    for k, count in enumerate(counts):
        if log2:
            frac = math.log2(count + 1) / denom if denom > 0 else 0.0
        else:
            frac = count / denom if denom > 0 else 0.0
        bar = "#" * max(int(round(frac * width)), 1 if count else 0)
        lines.append(f"[{edges[k]:>12.1f}, {edges[k + 1]:>12.1f})  {count:>6d}  {bar}")
    return "\n".join(lines)


def tail_mass(delays: Sequence[float], threshold: float) -> int:
    """How many sink delays exceed ``threshold`` — the 'pins with delay over
    4.2e6' comparison the paper makes about Fig. 1."""
    return int(sum(1 for d in delays if d > threshold))
