"""Shared run-report container.

Both the CPLA engine (the paper's method) and the TILA baseline emit a
:class:`RunReport`, so the evaluation harness can tabulate them uniformly
(Table 2, Figs. 1 and 7-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.utils import WallClock


@dataclass
class IterationStats:
    """Diagnostics of one optimizer iteration."""

    index: int
    num_partitions: int
    num_segments: int
    avg_tcp: float
    max_tcp: float
    accepted: bool


@dataclass
class RunReport:
    """Everything the evaluation section needs from one optimizer run."""

    benchmark: str
    method: str
    critical_ratio: float
    critical_net_ids: List[int] = field(default_factory=list)
    initial_avg_tcp: float = 0.0
    initial_max_tcp: float = 0.0
    final_avg_tcp: float = 0.0
    final_max_tcp: float = 0.0
    initial_via_overflow: int = 0
    final_via_overflow: int = 0
    initial_vias: int = 0
    final_vias: int = 0
    initial_pin_delays: List[float] = field(default_factory=list)
    final_pin_delays: List[float] = field(default_factory=list)
    iterations: List[IterationStats] = field(default_factory=list)
    clock: WallClock = field(default_factory=WallClock)
    # Phase totals measured *inside* process-pool workers (Jacobi mode).
    # Kept separate from ``clock``: the worker seconds overlap the parent's
    # ``solve`` wall time, so folding them in would double-count runtime.
    worker_clock: WallClock = field(default_factory=WallClock)
    # Snapshot of the observability metrics registry taken at the end of the
    # run (empty unless metrics were enabled; see repro.obs).
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # Convergence diagnostics snapshot ({"solves": [...], "partitions":
    # [...]}; empty unless repro.obs.convergence was enabled).
    convergence: Dict[str, Any] = field(default_factory=dict)
    # Distributed-fabric scheduler counters (tasks, retries, steals,
    # stragglers, per-worker utilization; empty unless the run used
    # exec_backend="dist").  Rides into the run ledger's "scheduler"
    # section — the fault-injection CI gate reads retries from there.
    scheduler: Dict[str, Any] = field(default_factory=dict)
    # Global-router observability (nets routed/rerouted, reroute rounds,
    # maze aborts, final 2-D overflow) captured when the benchmark was
    # prepared; empty when the caller routed out-of-band.  Rides into the
    # run ledger's "router" section.
    router: Dict[str, Any] = field(default_factory=dict)

    @property
    def runtime(self) -> float:
        """Total optimizer wall-clock seconds (the CPU(s) column)."""
        return self.clock.total

    def observability_summary(self) -> str:
        """Phase totals, worker phase totals, and counter metrics as text."""
        lines = ["phases:"]
        lines.extend("  " + l for l in self.clock.report().splitlines())
        if self.worker_clock.totals:
            lines.append("worker phases (inside process pool):")
            lines.extend("  " + l for l in self.worker_clock.report().splitlines())
        counters = self.metrics.get("counters", {})
        if counters:
            width = max(len(k) for k in counters)
            lines.append("counters:")
            lines.extend(
                f"  {name:<{width}}  {value:g}"
                for name, value in sorted(counters.items())
            )
        gauges = self.metrics.get("gauges", {})
        if gauges:
            width = max(len(k) for k in gauges)
            lines.append("gauges:")
            lines.extend(
                f"  {name:<{width}}  {value:g}"
                for name, value in sorted(gauges.items())
            )
        if self.convergence:
            from repro.obs import convergence as _convergence

            lines.append(
                _convergence.summary_text(_convergence.summarize(self.convergence))
            )
        return "\n".join(lines)

    @property
    def avg_improvement(self) -> float:
        """Fractional Avg(Tcp) reduction versus the initial assignment."""
        if self.initial_avg_tcp == 0:
            return 0.0
        return 1.0 - self.final_avg_tcp / self.initial_avg_tcp

    @property
    def max_improvement(self) -> float:
        if self.initial_max_tcp == 0:
            return 0.0
        return 1.0 - self.final_max_tcp / self.initial_max_tcp
