"""The coordinator: dynamic, fault-tolerant scheduling of leaf solves.

:class:`DistFabric` is a drop-in replacement for
:class:`~repro.core.engine.LeafSolvePool` (same ``map``/``close``
contract, same ``(result, telemetry)`` item shape) that swaps the static
chunked ``pool.map`` for a scheduler:

- **cost-ordered dispatch** — tasks are heaped by an estimated cost
  (segment count x candidate-layer count, see :func:`task_cost`) and
  dealt largest-first into per-worker queues, so the biggest leaves start
  earliest and cannot become end-of-run stragglers;
- **work stealing** — a worker that drains its own queue steals the
  smallest task from the back of the longest remaining queue, so one
  slow worker cannot strand its backlog;
- **liveness** — local workers are watched through their process
  sentinels, remote ones through heartbeats; a crashed worker's tasks
  are re-dispatched (``dist.retries``) with exponential backoff and the
  worker is replaced (``dist.worker_restarts``), up to configured caps;
- **straggler speculation** — an attempt running far past the median
  completed attempt is duplicated onto an idle worker
  (``dist.stragglers``); the first result wins and late duplicates are
  dropped.  Leaf solves are deterministic functions of the problem (the
  warm-start caches provably do not change results — see
  tests/test_engine_reuse.py), so *which* attempt wins cannot change the
  assignment: output stays bit-identical to the single-attempt run.

Scheduling state lives entirely in the coordinator thread; worker I/O is
multiplexed with :func:`multiprocessing.connection.wait`, so there are
no coordinator-side locks to misorder results.  Every ``map`` returns
results in task order, which is what keeps the engine's post-mapping
(and therefore the final assignment digest) independent of scheduling.

Catastrophic failure (a task exhausting its attempts, every worker lost,
a protocol error) permanently downgrades the fabric exactly like a
broken pool: ``map`` returns ``None``, the caller solves sequentially,
and the failure is logged and counted (``engine.pool_failures`` plus
``dist.failures``).
"""

from __future__ import annotations

import atexit
import heapq
import itertools
import multiprocessing
import os
import statistics
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Listener, wait as mp_wait
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.dist import protocol
from repro.obs import convergence, metrics, tracer
from repro.utils import get_logger

log = get_logger(__name__)


def task_cost(problem) -> float:
    """Cost-model estimate of one leaf: segment count x layer count.

    The SDP matrix order (and hence ADMM eigendecomposition cost) grows
    with the total number of assignment variables, which is the sum of
    candidate-layer counts over the leaf's segments; pair terms add a
    little more work.  Objects without the :class:`PartitionProblem`
    shape (test doubles) may advertise a ``cost_hint`` instead.
    """
    seg_vars = getattr(problem, "vars", None)
    if seg_vars is None:
        return float(getattr(problem, "cost_hint", 1.0))
    return float(
        sum(len(var.layers) for var in seg_vars)
        + len(getattr(problem, "pairs", ()))
    )


@dataclass
class DistFabricConfig:
    """Scheduler knobs (all tunable; defaults documented in
    docs/DISTRIBUTED.md)."""

    # Hard per-attempt ceiling: an attempt running longer is declared
    # hung, its worker is killed, and the task is re-dispatched.
    task_timeout: float = 300.0
    # Worker -> coordinator heartbeat cadence, and how long silence is
    # tolerated before a worker (remote ones have no sentinel) is lost.
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 15.0
    # Total attempts per task before the fabric gives up (and the engine
    # falls back to sequential solving).
    max_attempts: int = 4
    # Exponential backoff between re-dispatches of a failed task.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    # Speculative duplicates: an attempt running straggler_factor x the
    # median completed attempt (and at least straggler_min_seconds) is
    # duplicated onto an idle worker.
    straggler_factor: float = 4.0
    straggler_min_seconds: float = 1.0
    # Crashed local workers are replaced up to this many times per fabric.
    max_worker_restarts: int = 4
    # Optional TCP listener for remote `repro dist-worker --connect`
    # workers; authkey is required when listening.
    listen: Optional[Tuple[str, int]] = None
    authkey: Optional[bytes] = None
    # How long map() waits for a first ready worker before giving up.
    worker_wait_timeout: float = 60.0


class FabricBroken(RuntimeError):
    """The fabric cannot finish the current map (see module docstring)."""


@dataclass
class _Task:
    index: int
    problem: Any
    cost: float
    # Warm-start state captured from the coordinator's solver when the map
    # began.  It ships inside the payload, so every attempt of this task —
    # any worker, any retry, any speculative duplicate — solves the exact
    # same (problem, warm) pair and returns the identical result.
    warm: Any = None
    new_warm: Any = None  # post-solve state from the accepted result
    payload: Optional[str] = None  # lazily packed, cached across retries
    failures: int = 0
    dispatches: int = 0
    done: bool = False
    result: Any = None
    not_before: float = 0.0
    speculated: bool = False
    running_on: set = field(default_factory=set)


class _Worker:
    """Coordinator-side handle of one worker (local child or remote)."""

    def __init__(self, worker_id, index, conn, process=None):
        self.id = worker_id
        # Display name: remote workers replace it with their self-chosen
        # ``--id`` when the ready frame arrives (self.id stays the stable
        # registry key).
        self.label = worker_id
        self.index = index
        self.conn = conn
        self.process = process
        self.remote = process is None
        self.ready = False
        self.dead = False
        self.queue: Deque[int] = deque()
        self.inflight: Optional[int] = None
        self.dispatched_at = 0.0
        self.last_seen = time.monotonic()
        self.busy_seconds = 0.0
        self.tasks_done = 0

    @property
    def idle(self) -> bool:
        return self.ready and not self.dead and self.inflight is None


_LIVE_FABRICS: "weakref.WeakSet[DistFabric]" = weakref.WeakSet()


@atexit.register
def _close_leaked_fabrics() -> None:  # pragma: no cover - exit-time guard
    for fabric in list(_LIVE_FABRICS):
        fabric.close()


class DistFabric:
    """Coordinator for dynamic leaf-solve scheduling (see module docstring)."""

    def __init__(
        self,
        workers: int,
        solver,
        config: Optional[DistFabricConfig] = None,
    ) -> None:
        self.workers = workers
        self.config = config or DistFabricConfig()
        if self.config.listen is not None and self.config.authkey is None:
            raise ValueError("a TCP listener requires an authkey")
        if workers < 1 and self.config.listen is None:
            raise ValueError("need local workers or a listener")
        self._solver = solver
        self._broken = False
        self._started = False
        self._init_payload: Optional[str] = None
        self._workers: Dict[str, _Worker] = {}
        self._serial = itertools.count()
        self._restarts_left = self.config.max_worker_restarts
        self._listener: Optional[Listener] = None
        self._accepted: List[Any] = []
        self._accept_lock = threading.Lock()
        self._accept_thread: Optional[threading.Thread] = None
        self._durations: List[float] = []  # completed attempt seconds
        self.stats: Dict[str, Any] = {
            "tasks": 0, "retries": 0, "steals": 0, "stragglers": 0,
            "worker_restarts": 0, "late_results": 0, "failures": 0,
            "maps": 0, "utilization": {},
        }
        _LIVE_FABRICS.add(self)

    # -- public API (the LeafSolvePool contract) --------------------------

    def map(self, problems, leaf_mask=None) -> Optional[list]:
        """Solve the leaf problems; ``None`` means "do it yourself".

        ``leaf_mask`` (indices into ``problems``) restricts the solve to a
        sparse leaf subset: only the masked tasks are scheduled on the
        fabric and masked-out positions come back as ``None`` — the ECO
        path leaves clean leaves as unextracted placeholders.
        """
        if self._broken or not problems:
            return None if self._broken else []
        if leaf_mask is not None:
            indices = list(leaf_mask)
            if not indices:
                return [None] * len(problems)
            subset = self.map([problems[i] for i in indices])
            if subset is None:
                return None
            results: list = [None] * len(problems)
            for position, index in enumerate(indices):
                results[index] = subset[position]
            return results
        try:
            self._ensure_started()
            with tracer.span("dist.map", tasks=len(problems)):
                return self._run(problems)
        except Exception as exc:
            log.warning(
                "dist fabric failed (%s: %s); continuing with sequential "
                "solves", type(exc).__name__, exc,
            )
            metrics.inc("engine.pool_failures")
            metrics.inc("dist.failures")
            self.stats["failures"] += 1
            self._broken = True
            self.close()
            return None

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        for worker in list(self._workers.values()):
            self._shutdown_worker(worker)
        self._workers.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        # Remote conns accepted but never adopted into a map would leave
        # their worker blocked on the init frame forever — hang up instead.
        with self._accept_lock:
            pending, self._accepted = self._accepted, []
        for conn in pending:
            try:
                conn.close()
            except OSError:
                pass
        self._started = False

    # ``shutdown`` mirrors LeafSolvePool's legacy spelling.
    def shutdown(self) -> None:
        self.close()

    def __enter__(self) -> "DistFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats_snapshot(self) -> Dict[str, Any]:
        """Scheduler counters for the run ledger (plain JSON-able dict)."""
        snapshot = dict(self.stats)
        snapshot["utilization"] = dict(self.stats["utilization"])
        snapshot["backend"] = "dist"
        snapshot["workers"] = self.workers
        return snapshot

    # -- worker lifecycle -------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        capture = (
            tracer.is_enabled(), metrics.is_enabled(), convergence.is_enabled(),
        )
        self._init_payload = protocol.pack_payload((self._solver, capture))
        for _ in range(self.workers):
            self._spawn_worker()
        if self.config.listen is not None:
            self._listener = Listener(
                self.config.listen, authkey=self.config.authkey
            )
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="dist-accept", daemon=True
            )
            self._accept_thread.start()
        self._started = True

    @property
    def listen_address(self) -> Optional[Tuple[str, int]]:
        """Actual listener address (resolves a requested port of 0)."""
        if self._listener is None:
            return None
        return self._listener.address

    def _spawn_worker(self) -> _Worker:
        from repro.dist.worker import worker_main

        index = next(self._serial)
        worker_id = f"w{index}"
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, index),
            name=f"dist-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # our copy; the child holds the real end
        worker = _Worker(worker_id, index, parent_conn, process)
        protocol.send_message(parent_conn, {
            "type": "init", "payload": self._init_payload,
        })
        self._workers[worker_id] = worker
        return worker

    def _accept_loop(self) -> None:  # runs on the accept thread
        while self._listener is not None:
            try:
                conn = self._listener.accept()
            except (OSError, EOFError, multiprocessing.AuthenticationError):
                if self._listener is None:
                    return
                continue
            with self._accept_lock:
                self._accepted.append(conn)

    def _adopt_remote_workers(self) -> None:
        with self._accept_lock:
            conns, self._accepted = self._accepted, []
        for conn in conns:
            index = next(self._serial)
            worker = _Worker(f"r{index}", index, conn, process=None)
            try:
                protocol.send_message(conn, {
                    "type": "init", "payload": self._init_payload,
                })
            except (OSError, ValueError):
                continue
            self._workers[worker.id] = worker
            log.info("adopted remote worker %s", worker.id)

    def _shutdown_worker(self, worker: _Worker) -> None:
        if not worker.dead:
            try:
                protocol.send_message(worker.conn, {"type": "shutdown"})
            except (OSError, ValueError):
                pass
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process is not None:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():  # pragma: no cover - last resort
                    worker.process.kill()
                    worker.process.join(timeout=2.0)
        worker.dead = True

    # -- scheduling -------------------------------------------------------

    def _run(self, problems) -> list:
        cfg = self.config
        managed = hasattr(self._solver, "export_warm") and hasattr(
            self._solver, "import_warm"
        )
        tasks = [
            _Task(
                index=i, problem=p, cost=task_cost(p),
                warm=self._solver.export_warm(p) if managed else None,
            )
            for i, p in enumerate(problems)
        ]
        self.stats["tasks"] += len(tasks)
        self.stats["maps"] += 1
        metrics.inc("dist.tasks", len(tasks))
        retry_heap: List[Tuple[float, float, int]] = []  # (not_before, -cost, idx)
        started = time.monotonic()
        for worker in self._workers.values():
            worker.queue.clear()
            worker.busy_seconds = 0.0
        self._deal_queues(tasks)

        completed = 0
        while completed < len(tasks):
            now = time.monotonic()
            self._adopt_remote_workers()
            self._dispatch_idle(tasks, retry_heap, now)
            self._await_first_worker(started, now)
            timeout = self._wait_timeout(tasks, retry_heap, now)
            for event in mp_wait(self._wait_handles(), timeout):
                worker = self._worker_for_event(event)
                if worker is None or worker.dead:
                    continue
                if event is worker.conn:
                    completed += self._drain_worker(worker, tasks, retry_heap)
                else:  # process sentinel: the child died
                    self._lose_worker(
                        worker, tasks, retry_heap, "process exited"
                    )
            completed += self._reap_timeouts(tasks, retry_heap)
        self._finish_map(started)
        # Advance the authoritative warm store in task order — the same
        # order the sequential fallback and the pool backend would.
        if managed:
            for task in tasks:
                self._solver.import_warm(task.problem, task.new_warm)
        return [t.result for t in tasks]

    def _deal_queues(self, tasks: List[_Task]) -> None:
        """Largest-first heap, dealt round-robin into per-worker queues."""
        heap = [(-t.cost, t.index) for t in tasks]
        heapq.heapify(heap)
        targets = [w for w in self._workers.values() if not w.dead]
        if not targets:
            return
        i = 0
        while heap:
            _, index = heapq.heappop(heap)
            targets[i % len(targets)].queue.append(index)
            i += 1

    def _wait_handles(self) -> list:
        handles = []
        for worker in self._workers.values():
            if worker.dead:
                continue
            handles.append(worker.conn)
            if worker.process is not None:
                handles.append(worker.process.sentinel)
        return handles

    def _worker_for_event(self, event) -> Optional[_Worker]:
        for worker in self._workers.values():
            if event is worker.conn or (
                worker.process is not None
                and event == worker.process.sentinel
            ):
                return worker
        return None

    def _wait_timeout(
        self, tasks: List[_Task], retry_heap, now: float
    ) -> float:
        deadline = now + min(1.0, self.config.heartbeat_timeout / 2)
        for worker in self._workers.values():
            if worker.dead or worker.inflight is None:
                continue
            deadline = min(
                deadline, worker.dispatched_at + self.config.task_timeout
            )
        if retry_heap:
            deadline = min(deadline, retry_heap[0][0])
        return max(0.05, deadline - now)

    def _await_first_worker(self, started: float, now: float) -> None:
        if any(w.ready and not w.dead for w in self._workers.values()):
            return
        if any(not w.dead for w in self._workers.values()):
            if now - started < self.config.worker_wait_timeout:
                return
        else:
            raise FabricBroken("no live workers and restarts exhausted")
        if now - started >= self.config.worker_wait_timeout:
            raise FabricBroken(
                f"no worker became ready within "
                f"{self.config.worker_wait_timeout:.0f}s"
            )

    # -- dispatch ---------------------------------------------------------

    def _dispatch_idle(self, tasks, retry_heap, now: float) -> None:
        for worker in list(self._workers.values()):
            if not worker.idle:
                continue
            index = self._pick_task(worker, tasks, retry_heap, now)
            if index is None:
                continue
            if not self._send_task(worker, tasks[index], now):
                # The send found the worker dead: redistribute its queue
                # and put the undelivered task back in front of everyone.
                heapq.heappush(
                    retry_heap, (0.0, -tasks[index].cost, index)
                )
                self._lose_worker(worker, tasks, retry_heap, "send failed")

    def _pick_task(self, worker, tasks, retry_heap, now) -> Optional[int]:
        # 1. a retried task whose backoff elapsed;
        while retry_heap and retry_heap[0][0] <= now:
            _, _, index = heapq.heappop(retry_heap)
            if not tasks[index].done:
                return index
        # 2. the worker's own queue, largest-first;
        while worker.queue:
            index = worker.queue.popleft()
            if not tasks[index].done:
                return index
        # 3. steal the smallest task off the back of the longest queue;
        victim = max(
            (w for w in self._workers.values() if not w.dead and w.queue),
            key=lambda w: len(w.queue),
            default=None,
        )
        if victim is not None and victim is not worker:
            while victim.queue:
                index = victim.queue.pop()
                if not tasks[index].done:
                    self.stats["steals"] += 1
                    metrics.inc("dist.steals")
                    return index
        # 4. speculatively duplicate the worst straggler.
        return self._pick_straggler(tasks, now)

    def _pick_straggler(self, tasks, now) -> Optional[int]:
        if not self._durations:
            return None
        median = statistics.median(self._durations)
        threshold = max(
            self.config.straggler_min_seconds,
            self.config.straggler_factor * median,
        )
        worst, worst_elapsed = None, threshold
        for worker in self._workers.values():
            if worker.dead or worker.inflight is None:
                continue
            task = tasks[worker.inflight]
            if task.done or task.speculated:
                continue
            elapsed = now - worker.dispatched_at
            if elapsed >= worst_elapsed:
                worst, worst_elapsed = task, elapsed
        if worst is None:
            return None
        worst.speculated = True
        self.stats["stragglers"] += 1
        metrics.inc("dist.stragglers")
        log.info(
            "speculatively re-dispatching straggler task %d "
            "(running %.1fs, median %.2fs)", worst.index, worst_elapsed, median,
        )
        return worst.index

    def _send_task(self, worker, task: _Task, now: float) -> bool:
        if task.payload is None:
            task.payload = protocol.pack_payload((task.problem, task.warm))
        task.dispatches += 1
        message = {
            "type": "task",
            "task": task.index,
            "attempt": task.dispatches,
            "cost": task.cost,
            "payload": task.payload,
        }
        # The trace context rides in the JSON envelope, not the cached
        # pickled payload, so retried/stolen dispatches re-ship it too.
        ctx = tracer.current_context()
        if ctx is not None:
            message["trace"] = ctx.to_dict()
        try:
            protocol.send_message(worker.conn, message)
        except (OSError, ValueError):
            task.dispatches -= 1
            return False
        worker.inflight = task.index
        worker.dispatched_at = now
        task.running_on.add(worker.id)
        return True

    # -- event handling ---------------------------------------------------

    def _drain_worker(self, worker, tasks, retry_heap) -> int:
        """Process every buffered frame of one worker; returns completions."""
        completed = 0
        while True:
            try:
                if not worker.conn.poll(0):
                    return completed
                message = protocol.recv_message(worker.conn)
            except (EOFError, OSError):
                self._lose_worker(worker, tasks, retry_heap, "connection lost")
                return completed
            except protocol.ProtocolError as exc:
                self._lose_worker(
                    worker, tasks, retry_heap, f"protocol error: {exc}"
                )
                return completed
            worker.last_seen = time.monotonic()
            kind = message.get("type")
            if kind == "ready":
                worker.ready = True
                if worker.remote and message.get("worker"):
                    worker.label = str(message["worker"])
                    log.info(
                        "remote worker %s ready as %s", worker.id, worker.label
                    )
            elif kind == "heartbeat":
                pass  # last_seen already refreshed
            elif kind == "result":
                completed += self._on_result(worker, message, tasks)
            elif kind == "error":
                self._on_error(worker, message, tasks, retry_heap)
            elif kind == "bye":
                worker.dead = True
                return completed

    def _on_result(self, worker, message, tasks) -> int:
        index = message["task"]
        task = tasks[index]
        now = time.monotonic()
        if worker.inflight == index:
            worker.inflight = None
            worker.busy_seconds += now - worker.dispatched_at
            worker.tasks_done += 1
        if task.done:
            # A speculative duplicate lost the race.  Every attempt solves
            # the same (problem, warm) pair, so the dropped result is
            # bit-identical to the one already recorded — dropping it
            # cannot change the output.
            self.stats["late_results"] += 1
            metrics.inc("dist.late_results")
            return 0
        task.done = True
        result, telemetry, task.new_warm = protocol.unpack_payload(
            message["payload"]
        )
        task.result = (result, telemetry)
        self._durations.append(float(message.get("solve_seconds", 0.0)))
        return 1

    def _on_error(self, worker, message, tasks, retry_heap) -> None:
        index = message["task"]
        if worker.inflight == index:
            worker.inflight = None
        task = tasks[index]
        if task.done:
            return
        self._requeue(
            task, retry_heap,
            f"worker {worker.id} error: {message.get('message')}",
        )

    def _lose_worker(self, worker, tasks, retry_heap, reason: str) -> None:
        if worker.dead:
            return
        log.warning("lost dist worker %s (%s)", worker.id, reason)
        worker.dead = True
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process is not None:
            worker.process.join(timeout=0.5)
        if worker.inflight is not None:
            task = tasks[worker.inflight]
            worker.inflight = None
            if not task.done:
                self._requeue(task, retry_heap, f"worker {worker.id} died")
        # Orphaned queue entries go back to the living.
        orphans = [i for i in worker.queue if not tasks[i].done]
        worker.queue.clear()
        survivors = [
            w for w in self._workers.values() if not w.dead
        ]
        for pos, index in enumerate(orphans):
            if survivors:
                survivors[pos % len(survivors)].queue.append(index)
            else:
                heapq.heappush(
                    retry_heap, (0.0, -tasks[index].cost, index)
                )
        if worker.process is not None and self._restarts_left > 0:
            self._restarts_left -= 1
            self.stats["worker_restarts"] += 1
            metrics.inc("dist.worker_restarts")
            replacement = self._spawn_worker()
            log.info(
                "respawned dist worker %s -> %s", worker.id, replacement.id
            )

    def _requeue(self, task: _Task, retry_heap, reason: str) -> None:
        task.failures += 1
        if task.failures >= self.config.max_attempts:
            raise FabricBroken(
                f"task {task.index} failed {task.failures} attempts "
                f"(last: {reason})"
            )
        backoff = self.config.backoff_base * (
            self.config.backoff_factor ** (task.failures - 1)
        )
        task.not_before = time.monotonic() + backoff
        heapq.heappush(retry_heap, (task.not_before, -task.cost, task.index))
        self.stats["retries"] += 1
        metrics.inc("dist.retries")
        log.warning(
            "re-dispatching task %d in %.2fs (attempt %d; %s)",
            task.index, backoff, task.failures + 1, reason,
        )

    def _reap_timeouts(self, tasks, retry_heap) -> int:
        """Kill hung workers; lose silent ones.  Returns 0 (completions
        only come from result frames) — kept as an int for symmetry."""
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if worker.dead:
                continue
            if (
                worker.inflight is not None
                and now - worker.dispatched_at > self.config.task_timeout
            ):
                if worker.process is not None:
                    worker.process.terminate()
                self._lose_worker(
                    worker, tasks, retry_heap,
                    f"task {worker.inflight} exceeded the "
                    f"{self.config.task_timeout:.0f}s timeout",
                )
                continue
            if (
                worker.ready
                and now - worker.last_seen > self.config.heartbeat_timeout
            ):
                if worker.process is not None and worker.process.is_alive():
                    # A local child with a live process is observable via
                    # its sentinel; tolerate missing heartbeats (e.g. a
                    # fully loaded CPU starving the beat thread).
                    continue
                self._lose_worker(
                    worker, tasks, retry_heap, "heartbeat silence"
                )
        return 0

    def _finish_map(self, started: float) -> None:
        wall = max(time.monotonic() - started, 1e-9)
        utilization = {
            w.label: round(min(w.busy_seconds / wall, 1.0), 4)
            for w in self._workers.values()
            if w.tasks_done or not w.dead
        }
        self.stats["utilization"] = utilization
        for worker_id, value in utilization.items():
            metrics.set_gauge(f"dist.worker_utilization.{worker_id}", value)
        metrics.set_gauge(
            "dist.workers_live",
            sum(1 for w in self._workers.values() if not w.dead),
        )
