"""The fabric's wire protocol: length-prefixed JSON frames.

One frame is::

    +----------------+---------------------------+
    | 4 bytes, BE    | ``length`` bytes of UTF-8 |
    | frame length   | JSON (one object)         |
    +----------------+---------------------------+

The JSON object always carries a ``"v"`` protocol version and a
``"type"`` discriminator; binary payloads (pickled
:class:`~repro.core.problem.PartitionProblem` instances, solver results,
telemetry) ride inside the envelope as a base64 string under
``"payload"`` — JSON stays the single framing/metadata format while the
numeric payloads keep their efficient native serialization.

Frames travel over :mod:`multiprocessing.connection` ``Connection``
objects — an OS pipe for the in-process workers the engine spawns, or an
authenticated TCP connection for ``repro dist-worker --connect`` — so
the coordinator code is transport-agnostic.  ``Connection.send_bytes``
is message-oriented and would frame for us on a pipe, but the explicit
length prefix makes frames self-describing on *any* byte stream and lets
the receiver reject truncated or oversized messages loudly.

Message types (all coordinator<->worker frames):

==============  ==========  ==================================================
type            direction   fields
==============  ==========  ==================================================
``init``        C -> W      ``payload`` = pickled ``(solver, capture_flags)``
``ready``       W -> C      ``worker``, ``pid``
``task``        C -> W      ``task``, ``attempt``, ``cost``, ``payload`` =
                            pickled ``(problem, warm_state)``; optional
                            ``trace`` = ``{"trace_id", "span_id"}`` — the
                            coordinator's trace context, carried in the
                            JSON envelope (not the cached pickled payload)
                            so retries and steals re-ship the live context
``result``      W -> C      ``task``, ``attempt``, ``solve_seconds``,
                            ``payload`` = pickled
                            ``(result, telemetry, new_warm_state)``
``error``       W -> C      ``task``, ``attempt``, ``message``
``heartbeat``   W -> C      ``worker``, ``tasks_done``
``shutdown``    C -> W      --
``bye``         W -> C      ``worker``
==============  ==========  ==================================================
"""

from __future__ import annotations

import base64
import json
import pickle
import struct
from typing import Any, Dict, Optional

PROTOCOL_VERSION = "repro.dist/v1"

# 64 MiB: far above any leaf problem, far below a runaway payload.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ValueError):
    """A malformed, truncated, oversized, or foreign-version frame."""


# -- frame codec -------------------------------------------------------------


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message object -> length-prefixed JSON frame bytes."""
    message = dict(message)
    message.setdefault("v", PROTOCOL_VERSION)
    blob = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(blob)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(blob)) + blob


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Length-prefixed frame bytes -> message object (validates hard)."""
    if len(data) < _LENGTH.size:
        raise ProtocolError(f"frame shorter than its length prefix ({len(data)}B)")
    (length,) = _LENGTH.unpack(data[: _LENGTH.size])
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    body = data[_LENGTH.size:]
    if len(body) != length:
        raise ProtocolError(
            f"frame body is {len(body)} bytes but the prefix declared {length}"
        )
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid UTF-8 JSON: {exc}")
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame must decode to an object with a 'type'")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"frame version {version!r} is not {PROTOCOL_VERSION!r}"
        )
    return message


# -- payload codec -----------------------------------------------------------


def pack_payload(obj: Any) -> str:
    """Arbitrary picklable object -> base64 payload string."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_payload(payload: str) -> Any:
    try:
        return pickle.loads(base64.b64decode(payload.encode("ascii")))
    except Exception as exc:  # corrupted payloads must not kill the peer loop
        raise ProtocolError(f"undecodable payload: {type(exc).__name__}: {exc}")


# -- connection helpers ------------------------------------------------------


def send_message(conn, message: Dict[str, Any]) -> None:
    """Encode and ship one frame over a ``Connection``."""
    conn.send_bytes(encode_frame(message))


def recv_message(conn, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` when ``timeout`` elapses with no data.

    Raises :class:`EOFError` on a closed connection and
    :class:`ProtocolError` on an undecodable frame.
    """
    if timeout is not None and not conn.poll(timeout):
        return None
    return decode_frame(conn.recv_bytes())
