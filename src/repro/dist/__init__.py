"""Distributed solve fabric: fault-tolerant sharded leaf scheduling.

The paper's quadruple partition makes every leaf an independent SDP (or
ILP) solve; this package replaces the static chunked ``pool.map`` of
:class:`~repro.core.engine.LeafSolvePool` with a coordinator/worker
fabric that schedules leaves dynamically:

- :mod:`repro.dist.protocol` — the length-prefixed JSON task protocol
  spoken over :mod:`multiprocessing.connection`, so the same fabric
  drives in-process worker children today and remote hosts
  (``repro dist-worker --connect host:port``) tomorrow;
- :mod:`repro.dist.worker` — the worker loop: one resident solver with
  its ADMM warm caches, heartbeats, and the env-var fault-injection hook
  used by the fault tests and the CI ``dist-smoke`` job;
- :mod:`repro.dist.fabric` — the :class:`~repro.dist.fabric.DistFabric`
  coordinator: cost-model-ordered task heap (largest leaves first, to cut
  makespan), per-worker queues with work stealing, heartbeat liveness,
  crash/timeout retry with exponential backoff, and speculative
  re-dispatch of stragglers (first result wins; solves are deterministic,
  so the output stays bit-identical no matter which attempt lands).

The fabric is selected per run with ``CPLAConfig.exec_backend = "dist"``
(CLI: ``--exec dist``); scheduler counters surface as ``dist.*`` metrics
and as the ``scheduler`` section of run-ledger entries.
"""

from repro.dist.fabric import DistFabric, DistFabricConfig, task_cost
from repro.dist.protocol import PROTOCOL_VERSION

__all__ = [
    "DistFabric",
    "DistFabricConfig",
    "task_cost",
    "PROTOCOL_VERSION",
]
