"""The fabric worker: one resident solver serving leaf tasks over a pipe.

A worker is a plain loop over :mod:`repro.dist.protocol` frames — it does
not care whether its connection is an OS pipe (the in-process workers the
coordinator spawns) or an authenticated TCP socket (``repro dist-worker
--connect host:port``).  The first frame must be ``init``: it carries the
pickled solver (shipped once, exactly like the pool initializer used to)
plus the observability capture flags; the solver stays resident across
tasks, while each task ships its own ADMM warm-start state from the
coordinator's authoritative store (see :func:`solve_task`) so results
never depend on which worker serves which task.

A daemon thread emits ``heartbeat`` frames so the coordinator can tell a
hung solve from a dead host even without a process sentinel (the remote
case).  All sends share one lock — ``Connection`` writes are not atomic
across threads.

Fault injection (tests + the CI ``dist-smoke`` job) is armed through the
``REPRO_DIST_FAULT`` env var, a comma-separated list of specs:

- ``crash:<worker>:<task>`` — SIGKILL ourselves upon receiving our
  ``<task>``-th task (1-based) — a mid-task hard crash;
- ``hang:<worker>:<task>``  — sleep far past any task timeout instead of
  solving — a straggler/hung worker;
- ``initfail:<worker>``     — raise from the init handshake — a worker
  whose initializer is poisoned.

``<worker>`` matches the numeric worker index; replacement workers
spawned after a fault get fresh indices, so an injected fault fires a
bounded number of times and the run still completes.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dist import protocol
from repro.obs import collect, tracer
from repro.utils import WallClock, get_logger

log = get_logger(__name__)

FAULT_ENV = "REPRO_DIST_FAULT"

# A "hang" must outlast any plausible task timeout without leaking a
# sleeping process forever if the coordinator never reaps it.
_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``REPRO_DIST_FAULT`` entry."""

    kind: str  # "crash", "hang", or "initfail"
    worker_index: int
    task_serial: int = 0  # 1-based; 0 for init-time faults


def parse_fault_specs(text: Optional[str]) -> List[FaultSpec]:
    """Parse the env-var hook; malformed specs raise ``ValueError`` loudly."""
    specs: List[FaultSpec] = []
    for chunk in (text or "").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        kind = parts[0]
        if kind == "initfail" and len(parts) == 2:
            specs.append(FaultSpec(kind, int(parts[1])))
        elif kind in ("crash", "hang") and len(parts) == 3:
            specs.append(FaultSpec(kind, int(parts[1]), int(parts[2])))
        else:
            raise ValueError(f"bad {FAULT_ENV} spec {chunk!r}")
    return specs


class _Heartbeat(threading.Thread):
    """Periodic heartbeat frames, sharing the connection's send lock."""

    def __init__(self, conn, lock, worker_id: str, interval: float) -> None:
        super().__init__(name=f"heartbeat-{worker_id}", daemon=True)
        self._conn = conn
        self._lock = lock
        self._worker_id = worker_id
        self._interval = interval
        self._stop = threading.Event()
        self.tasks_done = 0

    def run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    protocol.send_message(self._conn, {
                        "type": "heartbeat",
                        "worker": self._worker_id,
                        "tasks_done": self.tasks_done,
                    })
            except (OSError, ValueError):
                return  # connection gone; the main loop is exiting too

    def stop(self) -> None:
        self._stop.set()


def solve_task(solver, capture_flags: Tuple[bool, bool, bool], problem, warm=None,
               trace=None):
    """One leaf solve with its telemetry, mirroring the pool task body.

    ``warm`` is the coordinator-owned warm-start state shipped with the
    task; it overwrites this worker's resident state before solving, so
    every attempt of a task — on any worker, after any steal or retry —
    computes the identical result.  The post-solve state rides back in
    the result frame for the coordinator's authoritative store.

    ``trace`` is the coordinator's trace context (``TraceContext`` wire
    dict): attaching it after the observability reset makes the worker's
    ``engine.leaf`` span parent directly under the coordinator's
    ``dist.map`` span, across the process (and machine) boundary.
    """
    if any(capture_flags):
        collect.init_worker_observability(*capture_flags)
    if trace is not None and tracer.is_enabled():
        tracer.attach(tracer.TraceContext.from_dict(trace))
    managed = hasattr(solver, "import_warm") and hasattr(solver, "export_warm")
    if managed:
        solver.import_warm(problem, warm)
    clock = WallClock()
    with clock.phase("solve"):
        with tracer.span(
            "engine.leaf", segments=problem.num_vars, worker=True
        ):
            result = solver.solve(problem)
    new_warm = solver.export_warm(problem) if managed else None
    return result, collect.capture_worker_telemetry(clock), new_warm


def serve_connection(
    conn,
    worker_id: str,
    worker_index: int,
    heartbeat_interval: float = 1.0,
) -> None:
    """Run the worker loop until ``shutdown`` or connection loss."""
    faults = parse_fault_specs(os.environ.get(FAULT_ENV))
    mine = [f for f in faults if f.worker_index == worker_index]

    init = protocol.recv_message(conn)
    if init is None or init.get("type") != "init":
        raise protocol.ProtocolError(
            f"worker {worker_id} expected an init frame, got "
            f"{init and init.get('type')!r}"
        )
    if any(f.kind == "initfail" for f in mine):
        raise RuntimeError(
            f"injected initializer failure in worker {worker_id}"
        )
    solver, capture_flags = protocol.unpack_payload(init["payload"])

    send_lock = threading.Lock()
    with send_lock:
        protocol.send_message(conn, {
            "type": "ready", "worker": worker_id, "pid": os.getpid(),
        })
    heartbeat = _Heartbeat(conn, send_lock, worker_id, heartbeat_interval)
    heartbeat.start()
    serial = 0
    try:
        while True:
            try:
                message = protocol.recv_message(conn)
            except EOFError:
                return
            kind = message.get("type")
            if kind == "shutdown":
                with send_lock:
                    protocol.send_message(
                        conn, {"type": "bye", "worker": worker_id}
                    )
                return
            if kind != "task":
                log.warning("worker %s ignoring %r frame", worker_id, kind)
                continue
            serial += 1
            fault = next(
                (f for f in mine if f.task_serial == serial), None
            )
            if fault is not None and fault.kind == "crash":
                os.kill(os.getpid(), signal.SIGKILL)
            if fault is not None and fault.kind == "hang":
                time.sleep(_HANG_SECONDS)
            task_id = message["task"]
            attempt = message["attempt"]
            started = time.monotonic()
            try:
                problem, warm = protocol.unpack_payload(message["payload"])
                result = solve_task(solver, tuple(capture_flags), problem, warm,
                                    trace=message.get("trace"))
            except Exception as exc:
                with send_lock:
                    protocol.send_message(conn, {
                        "type": "error",
                        "task": task_id,
                        "attempt": attempt,
                        "worker": worker_id,
                        "message": f"{type(exc).__name__}: {exc}",
                    })
                continue
            heartbeat.tasks_done += 1
            with send_lock:
                protocol.send_message(conn, {
                    "type": "result",
                    "task": task_id,
                    "attempt": attempt,
                    "worker": worker_id,
                    "solve_seconds": time.monotonic() - started,
                    "payload": protocol.pack_payload(result),
                })
    finally:
        heartbeat.stop()


def worker_main(conn, worker_id: str, worker_index: int) -> None:
    """Entry point of a coordinator-spawned local worker process."""
    try:
        serve_connection(conn, worker_id, worker_index)
    except (EOFError, OSError):
        pass  # coordinator went away; nothing to report to
    except Exception:
        log.exception("worker %s crashed", worker_id)
        raise
    finally:
        try:
            conn.close()
        except OSError:
            pass


def connect_and_serve(
    host: str, port: int, authkey: bytes, worker_id: Optional[str] = None
) -> None:
    """``repro dist-worker`` body: join a remote coordinator and serve.

    Remote workers carry index ``-1`` so local fault-injection specs never
    match them; the coordinator tracks them purely via heartbeats/EOF.
    """
    from multiprocessing.connection import Client

    worker_id = worker_id or f"remote-{os.getpid()}"
    conn = Client((host, port), authkey=authkey)
    log.info("worker %s connected to %s:%d", worker_id, host, port)
    try:
        serve_connection(conn, worker_id, worker_index=-1)
    except EOFError:
        log.info("worker %s: coordinator hung up", worker_id)
    finally:
        try:
            conn.close()
        except OSError:
            pass
