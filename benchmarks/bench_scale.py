"""Scale-tier benchmark: ingest + routing + solve at real-magnitude net counts.

The tier-1 suite runs at python-toy scale (``--scale 1`` is a few thousand
nets); this harness drives the same pipeline at ``--scale`` >= 10 so the
big-input trajectory — streaming parse, structured-array net storage, the
vectorized router — is measured and regression-gated like the pool/dist/
batch tiers already are.

Per benchmark the harness times every stage a cold start pays:

- ``scale:generate`` — synthesize the suite instance at ``--scale``;
- ``scale:write``    — serialize it to a real ISPD'08 ``.gr`` file;
- ``scale:parse``    — re-read that file through the parser (the streaming
  ingest hot path; the parsed instance is what gets routed, exactly as a
  real benchmark file would be);
- ``scale:route``    — 2-D global routing (pattern + negotiated maze);
- ``scale:topology`` / ``scale:assign`` — segment trees + initial DP layers;
- ``solve``          — the optimizer via the public ``run_method``.

"Ingest" is generate+write+parse; the headline number is **ingest+route**,
the pre-solve wall time that bounds how close the suite can get to the real
ISPD'08 magnitudes.  Snapshots land in ``BENCH_scale.json`` keyed by
``--label`` (baseline = pre-change revision, current = this revision; the
harness only uses public APIs so the identical command measures either).
``--ledger`` appends one run-ledger entry per benchmark whose phase clocks
include the stage timings above, giving ``repro obs check`` a scale-tier
regression gate against ``benchmarks/results/scale_baseline.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py --label current \
        --scale 10 --benchmarks adaptec1,newblue1 --out BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import CPLAConfig
from repro.ispd.parser import parse_ispd08
from repro.ispd.suite import load_benchmark
from repro.ispd.writer import write_ispd08
from repro.obs import metrics
from repro.pipeline import run_method
from repro.route.assignment import InitialAssigner
from repro.route.router import GlobalRouter, RouterConfig
from repro.route.tree import build_topology

SCHEMA = "repro.bench_scale/v1"
DEFAULT_BENCHMARKS = "adaptec1,newblue1"

METHODOLOGY = (
    "Per benchmark: generate the deterministic synthetic suite instance at "
    "--scale, write it as an ISPD'08 .gr file, re-parse that file (ingest "
    "hot path), then route/segment/assign the parsed instance and run the "
    "optimizer through the public pipeline API. ingest = generate+write+"
    "parse; the gated quantity is ingest+route wall seconds. The harness "
    "only touches public APIs, so the identical command measures any "
    "revision: 'baseline' is recorded on the pre-change commit, 'current' "
    "on this one, same machine, same inputs."
)

_ROUTER_COUNTERS = (
    "router.nets_routed",
    "router.nets_rerouted",
    "router.negotiation_rounds",
    "router.reroute_rounds",
    "router.maze_aborts",
)


def _git_commit() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True,
        ).strip()
    except Exception:
        return "unknown"


def run_one(
    name: str,
    scale: float,
    ratio: float,
    method: str,
    workers: int,
    exec_backend: str,
    rounds: Optional[int],
    keep_dir: Optional[str],
) -> tuple:
    """Time every stage for one benchmark; returns (record, report)."""
    metrics.enable()
    metrics.registry().reset()
    phases: Dict[str, float] = {}

    def timed(phase: str, fn):
        start = time.perf_counter()
        result = fn()
        phases[phase] = time.perf_counter() - start
        return result

    generated = timed("scale:generate", lambda: load_benchmark(name, scale=scale))
    if keep_dir:
        os.makedirs(keep_dir, exist_ok=True)
        path = os.path.join(keep_dir, f"{name}-x{scale:g}.gr")
    else:
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".gr", prefix=f"scale-{name}-", delete=False
        )
        handle.close()
        path = handle.name
    try:
        timed("scale:write", lambda: write_ispd08(generated, path))
        size_mb = os.path.getsize(path) / 1e6
        bench = timed("scale:parse", lambda: parse_ispd08(path, name=name))
    finally:
        if not keep_dir:
            os.unlink(path)

    router_config = RouterConfig(rounds=rounds) if rounds else None
    router = GlobalRouter(bench.grid, router_config)
    timed("scale:route", lambda: router.route(bench.nets))
    timed(
        "scale:topology",
        lambda: [build_topology(net) for net in bench.nets],
    )
    timed("scale:assign", lambda: InitialAssigner(bench.grid).assign(bench.nets))
    stats = getattr(router, "stats", None)
    if stats is not None:
        bench.router_stats = stats.as_dict()

    cfg = CPLAConfig(workers=workers, exec_backend=exec_backend)
    solve_start = time.perf_counter()
    report = run_method(bench, method, critical_ratio=ratio / 100.0, cpla_config=cfg)
    phases["solve_wall"] = time.perf_counter() - solve_start

    counters = metrics.registry().as_dict()["counters"]
    metrics.disable()
    num_segments = sum(len(n.topology.segments) for n in bench.nets)
    ingest = phases["scale:generate"] + phases["scale:write"] + phases["scale:parse"]
    record = {
        "scale": scale,
        "nets": bench.num_nets,
        "segments": num_segments,
        "grid": [bench.grid.nx_tiles, bench.grid.ny_tiles, bench.stack.num_layers],
        "file_mb": round(size_mb, 3),
        "ingest_seconds": round(ingest, 4),
        "route_seconds": round(phases["scale:route"], 4),
        "ingest_route_seconds": round(ingest + phases["scale:route"], 4),
        "solve_seconds": round(phases["solve_wall"], 4),
        "phases": {k: round(v, 4) for k, v in sorted(phases.items())},
        "final_avg_tcp": report.final_avg_tcp,
        "final_max_tcp": report.final_max_tcp,
        "final_via_overflow": report.final_via_overflow,
        "wire_overflow": bench.grid.total_wire_overflow(),
        "counters": {k: counters[k] for k in _ROUTER_COUNTERS if k in counters},
    }
    # Fold the stage timings into the report clock so the run-ledger entry
    # carries ingest/route/solve phases next to the optimizer's own.
    for phase, seconds in phases.items():
        if phase != "solve_wall":
            report.clock.add(phase, seconds)
    print(
        f"{name} x{scale:g}: {bench.num_nets} nets, {num_segments} segments | "
        f"ingest {ingest:.2f}s route {phases['scale:route']:.2f}s "
        f"solve {phases['solve_wall']:.2f}s",
        flush=True,
    )
    return record, report


def _improvement(baseline: dict, current: dict) -> dict:
    out: Dict[str, object] = {"per_benchmark": {}}
    speedups = []
    for name, base_rec in baseline["benchmarks"].items():
        cur_rec = current["benchmarks"].get(name)
        if cur_rec is None:
            continue
        entry: Dict[str, object] = {}
        for key in ("ingest_seconds", "route_seconds", "ingest_route_seconds"):
            if cur_rec.get(key):
                entry[key.replace("_seconds", "_speedup")] = round(
                    base_rec[key] / cur_rec[key], 3
                )
        entry["same_inputs"] = (
            base_rec.get("nets") == cur_rec.get("nets")
            and base_rec.get("grid") == cur_rec.get("grid")
        )
        out["per_benchmark"][name] = entry
        if cur_rec.get("ingest_route_seconds"):
            speedups.append(
                base_rec["ingest_route_seconds"] / cur_rec["ingest_route_seconds"]
            )
    if speedups:
        out["ingest_route_speedup_min"] = round(min(speedups), 3)
        out["ingest_route_speedup_geomean"] = round(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 3
        )
    out["methodology"] = METHODOLOGY
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", required=True, help="snapshot label (baseline/current)")
    parser.add_argument("--out", default="BENCH_scale.json")
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS)
    parser.add_argument("--scale", type=float, default=10.0)
    parser.add_argument("--ratio", type=float, default=0.5, help="critical ratio in percent")
    parser.add_argument("--method", default="sdp", choices=["sdp", "ilp"])
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument(
        "--exec", dest="exec_backend", default="pool",
        choices=["pool", "dist", "batch", "seq"],
    )
    parser.add_argument(
        "--router-rounds", type=int, default=0, metavar="N",
        help="override RouterConfig.rounds (0 = default)",
    )
    parser.add_argument(
        "--keep-files", default=None, metavar="DIR",
        help="keep the generated .gr files in DIR instead of a temp file",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append one run-ledger entry per benchmark (phases include the "
             "scale:* stage timings)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the suite N times and keep each benchmark's fastest "
        "ingest+route pass (noise robustness on shared machines)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI smoke mode: fail unless every benchmark completed with all "
             "stages recorded and Avg(Tcp) not regressing its own initial",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]

    records: Dict[str, dict] = {}
    reports: Dict[str, object] = {}
    for rep in range(args.repeat):
        if rep:
            print(f"-- repeat {rep + 1}/{args.repeat}", flush=True)
        for name in names:
            record, report = run_one(
                name, args.scale, args.ratio, args.method, args.workers,
                args.exec_backend, args.router_rounds, args.keep_files,
            )
            kept = records.get(name)
            if (
                kept is None
                or record["ingest_route_seconds"] < kept["ingest_route_seconds"]
            ):
                records[name] = record
                reports[name] = report
    if args.ledger:
        from repro.obs import ledger as run_ledger

        for name in names:
            entry = run_ledger.build_entry(
                reports[name],
                config={
                    "benchmark": name,
                    "method": args.method,
                    "scale": args.scale,
                    "ratio_percent": args.ratio,
                    "workers": args.workers,
                    "exec": args.exec_backend,
                    "tier": "scale",
                },
                label="scale",
            )
            run_ledger.append_entry(args.ledger, entry)

    snapshot = {
        "label": args.label,
        "commit": _git_commit(),
        "python": platform.python_version(),
        "suite": {
            "benchmarks": names,
            "scale": args.scale,
            "ratio_percent": args.ratio,
            "method": args.method,
            "workers": args.workers,
            "exec": args.exec_backend,
            "repeat": args.repeat,
        },
        "total_ingest_route_seconds": round(
            sum(r["ingest_route_seconds"] for r in records.values()), 4
        ),
        "benchmarks": records,
    }

    data = {"schema": SCHEMA, "methodology": METHODOLOGY, "runs": {}}
    if os.path.exists(args.out):
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            if existing.get("schema") == SCHEMA:
                data = existing
        except (OSError, ValueError):
            pass
    data.setdefault("runs", {})[args.label] = snapshot
    runs = data["runs"]
    if "baseline" in runs and "current" in runs:
        data["improvement"] = _improvement(runs["baseline"], runs["current"])
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.label} snapshot to {args.out}")

    if args.check:
        bad = []
        for name, rec in records.items():
            stages = {"scale:generate", "scale:write", "scale:parse",
                      "scale:route", "scale:topology", "scale:assign"}
            if not stages <= set(rec["phases"]):
                bad.append(f"{name}: missing stages")
            if not rec["final_avg_tcp"] <= rec["final_max_tcp"] + 1e-9:
                bad.append(f"{name}: inconsistent Tcp stats")
        if bad:
            print(f"scale-smoke failed: {bad}", file=sys.stderr)
            return 1
        print(f"scale-smoke ok: {len(records)} benchmarks completed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
