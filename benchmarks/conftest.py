"""Shared infrastructure for the experiment benches.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  Conventions:

- ``REPRO_BENCH_SCALE`` (default 1.0 — the full-size reproduction recorded
  in EXPERIMENTS.md) multiplies instance sizes; e.g. 0.25 gives a quick
  smoke pass in a few minutes at the cost of noisier, tiny released sets.
- paired TILA/CPLA runs are cached per (benchmark, ratio) so that e.g.
  Table 2 and Fig. 1 share work within one pytest session;
- rendered tables/figures are written to ``benchmarks/results/`` so runs
  leave an inspectable artifact.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.pipeline import ComparisonResult, compare

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


_cache: Dict[Tuple[str, float, float], ComparisonResult] = {}


def cached_compare(name: str, ratio: float = 0.005) -> ComparisonResult:
    """TILA-vs-SDP comparison, cached for the session."""
    key = (name, ratio, bench_scale())
    if key not in _cache:
        _cache[key] = compare(name, critical_ratio=ratio, scale=bench_scale())
        write_phase_snapshot(name, ratio, _cache[key])
    return _cache[key]


def write_phase_snapshot(name: str, ratio: float, result: ComparisonResult) -> Path:
    """Record per-phase wall-clock (and any obs metrics) for each run.

    Written next to the rendered tables so future perf PRs have a
    per-phase baseline to diff against, not just end-to-end seconds.
    """
    sections = []
    for report in (result.baseline, result.ours):
        sections.append(
            f"== {name} / {report.method} (ratio={ratio}, "
            f"scale={bench_scale()}) ==\n" + report.observability_summary()
        )
    return write_result(
        f"phases_{name}_r{ratio:g}.txt", "\n\n".join(sections)
    )


def write_result(filename: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
