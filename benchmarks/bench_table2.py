"""Table 2 — TILA-0.5% vs SDP-0.5% across the ISPD'08 suite.

Regenerates the paper's headline table: Avg(Tcp), Max(Tcp), via-capacity
overflow OV#, via count, and CPU seconds per method, plus the average and
ratio rows.  Paper ratios (SDP/TILA): Avg 0.86, Max 0.96, OV 0.90, via 1.00,
CPU 3.16.

Shape assertions (not absolute numbers): SDP wins Avg(Tcp) on average and on
most benchmarks, stays at parity on Max(Tcp) and vias, and costs more CPU.
Per-benchmark deviations at this scale are expected and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_table2
from repro.experiments.export import export_table2

from benchmarks.conftest import RESULTS_DIR, cached_compare, write_result

BENCHMARKS = [
    "adaptec1", "adaptec2", "adaptec3", "adaptec4", "adaptec5",
    "bigblue1", "bigblue2", "bigblue3", "bigblue4",
    "newblue1", "newblue2", "newblue4", "newblue5", "newblue6", "newblue7",
]


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark):
    result = benchmark.pedantic(
        lambda: run_table2(BENCHMARKS, ratio=0.005, compare_fn=cached_compare),
        rounds=1,
        iterations=1,
    )
    write_result("table2.txt", result.rendered)
    export_table2(result, str(RESULTS_DIR / "plots"))
    print("\n" + result.rendered)

    ratios = result.ratios
    # --- shape assertions (paper: 0.86 / 0.96 / 0.90 / 1.00 / 3.16) ---
    assert ratios["avg_tcp"] < 1.0, "SDP must beat TILA on Avg(Tcp) on average"
    assert ratios["max_tcp"] < 1.05, "SDP must hold Max(Tcp) near or below TILA"
    assert 0.9 < ratios["vias"] < 1.1, "via counts stay at parity"
    assert ratios["via_overflow"] < 1.15, "via overflow must not regress materially"
    assert ratios["cpu_seconds"] > 1.0, "the SDP method costs more CPU than TILA"
    # SDP wins Avg(Tcp) on a clear majority of the suite, as in the paper.
    assert result.sdp_wins_avg >= len(BENCHMARKS) * 0.6
