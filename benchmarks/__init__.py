"""Experiment benches — one module per table/figure of the paper."""
