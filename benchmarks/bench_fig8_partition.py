"""Fig. 8 — impact of the self-adaptive partition size (SDP method).

Paper claims, sweeping the per-partition segment limit on three small cases:
(a)/(b) quality (Avg and Max Tcp) is nearly flat in the partition size;
(c) runtime grows sharply with the partition size, with its minimum around
10 segments per partition — the paper's default.

Reproduced shapes: quality band within ~18% across the sweep; runtime at the
largest partitions exceeds runtime at the paper's default.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig8
from repro.experiments.export import export_fig8

from benchmarks.conftest import RESULTS_DIR, bench_scale, write_result

CASES = ("adaptec1", "adaptec2", "bigblue1")
SEGMENT_LIMITS = (5, 10, 20, 40, 80)


@pytest.mark.benchmark(group="fig8")
def test_fig8_partition_size(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig8(CASES, SEGMENT_LIMITS, scale=bench_scale()),
        rounds=1,
        iterations=1,
    )
    write_result("fig8_partition.txt", result.rendered)
    export_fig8(result, str(RESULTS_DIR / "plots"))
    print("\n" + result.rendered)

    for name in CASES:
        avgs = result.series(name, "final_avg_tcp")
        maxs = result.series(name, "final_max_tcp")
        # (a)/(b): negligible quality impact across the sweep.
        assert max(avgs) / min(avgs) < 1.18, f"{name}: Avg(Tcp) not flat: {avgs}"
        assert max(maxs) / min(maxs) < 1.25, f"{name}: Max(Tcp) not flat: {maxs}"
        # (c): big partitions are slower than the paper's default of 10.
        t10 = result.reports[(name, 10)].runtime
        t80 = result.reports[(name, 80)].runtime
        assert t80 > t10 * 0.9, f"{name}: runtime should grow toward 80 segs"
