"""Fig. 7 — ILP formulation vs SDP relaxation on the six small cases.

Paper claims: (a)/(b) the SDP relaxation achieves nearly the same average
and maximum critical-path timing as the exact ILP; (c) SDP is much faster
than ILP (GUROBI vs CSDP, 2016).

Reproduced shape: the *quality* equivalence (a)/(b) holds — SDP lands within
a few percent of ILP on both metrics.  The runtime ordering (c) does NOT
transfer to this substrate and is reported as measured: our ILP stand-in is
the 2024 HiGHS branch-and-bound, which dispatches the paper-sized (<=10
segment) partition problems in milliseconds, while our SDP solver is a
pure-Python first-order method.  EXPERIMENTS.md discusses the inversion.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig7
from repro.experiments.export import export_fig7
from repro.ispd.suite import SMALL_CASES

from benchmarks.conftest import RESULTS_DIR, bench_scale, write_result


@pytest.mark.benchmark(group="fig7")
def test_fig7_ilp_vs_sdp(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig7(SMALL_CASES, ratio=0.005, scale=bench_scale()),
        rounds=1,
        iterations=1,
    )
    write_result("fig7_ilp_vs_sdp.txt", result.rendered)
    export_fig7(result, str(RESULTS_DIR / "plots"))
    print("\n" + result.rendered)

    # (a) + (b): SDP quality tracks the exact ILP closely on every case.
    for name, per in result.reports.items():
        assert per["sdp"].final_avg_tcp <= per["ilp"].final_avg_tcp * 1.10, name
        assert per["sdp"].final_max_tcp <= per["ilp"].final_max_tcp * 1.15, name
    # Aggregate quality within a few percent either way.
    assert 0.9 < result.quality_ratio("avg") < 1.08
    assert 0.9 < result.quality_ratio("max") < 1.12
