"""ECO-tier benchmark: incremental re-solve vs cold full re-solve.

The ECO engine's pitch is that a small edit against a committed
assignment should cost a small fraction of a cold solve: only the dirty
partition leaves are re-solved, everything else keeps its committed
layers.  This harness measures exactly that, per edit size:

- commit a baseline solve (fresh prepare + full ``CPLAEngine.run``);
- apply one ``net_resize`` edit touching ``k`` nets through
  :class:`~repro.eco.engine.EcoEngine` and time the **incremental**
  apply (dirty timing + restricted re-solve + post-map + commit);
- replay the same edit history cold via
  :func:`~repro.eco.engine.cold_replay_digest` (fresh state, full
  re-solve) and time the **cold** path;
- assert the two digests are bit-identical (the equivalence guarantee —
  a speedup that changes the answer is not a speedup).

The headline number is the single-net speedup ``cold/incremental``;
``--check`` fails unless it clears ``--min-speedup`` (default 3x) and
every edit size replayed bit-identically.  Snapshots land in
``BENCH_eco.json`` keyed by ``--label``; ``--ledger`` appends one
``eco:<method>`` run-ledger entry per edit size (``tier: eco``, with an
``eco`` section) so ``repro obs check --max-dirty-fraction`` gates the
dirtiness blast radius in CI against ``benchmarks/results/
eco_baseline.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/bench_eco.py --label current \
        --scale 3 --edit-sizes 1,5,25 --out BENCH_eco.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import CPLAConfig, CPLAEngine
from repro.eco.edits import EcoEdit
from repro.eco.engine import EcoEngine, EcoReport, cold_replay_digest
from repro.ispd.request import assignment_digest
from repro.obs.ledger import SCHEMA, append_entry, fingerprint
from repro.pipeline import prepare

BENCH_SCHEMA = "repro.bench_eco/v1"
DEFAULT_EDIT_SIZES = "1,5,25"

METHODOLOGY = (
    "Per edit size k: prepare the benchmark fresh, commit a full baseline "
    "solve, then apply one net_resize edit touching k nets spread evenly "
    "across the net-id space through EcoEngine (incremental wall), and "
    "replay the identical edit history cold from fresh state via "
    "cold_replay_digest (cold wall = prepare + full solve + replay). The "
    "digests must match bit-for-bit; speedup = cold/incremental. The "
    "harness only touches public APIs, so the identical command measures "
    "any revision: 'baseline' is recorded on the pre-change commit, "
    "'current' on this one, same machine, same inputs."
)


def _git_commit() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True,
        ).strip()
    except Exception:
        return "unknown"


def _edit_for(num_nets: int, size: int, factor: float) -> EcoEdit:
    """One resize edit touching ``size`` nets, spread over the id space."""
    if size >= num_nets:
        nets = tuple(range(num_nets))
    else:
        stride = num_nets / size
        nets = tuple(sorted({int(i * stride) for i in range(size)}))
    return EcoEdit(op="net_resize", nets=nets, factor=factor)


def run_one(
    benchmark: str,
    size: int,
    scale: float,
    ratio: float,
    method: str,
    workers: int,
    exec_backend: str,
    factor: float,
) -> tuple:
    """Measure one edit size; returns (record, report)."""
    bench = prepare(benchmark, scale=scale)
    config = CPLAConfig(
        method=method, critical_ratio=ratio / 100.0,
        workers=workers, exec_backend=exec_backend,
    )
    edit = _edit_for(bench.num_nets, size, factor)
    with CPLAEngine(bench, config) as engine:
        baseline_start = time.perf_counter()
        engine.run()
        baseline_seconds = time.perf_counter() - baseline_start
        eco = EcoEngine(engine)
        incremental_start = time.perf_counter()
        report = eco.apply([edit])
        incremental_seconds = time.perf_counter() - incremental_start
        incremental_digest = assignment_digest(engine.bench)

    cold_start = time.perf_counter()
    cold_digest = cold_replay_digest(
        benchmark, ((edit,),), scale=scale, critical_ratio=ratio / 100.0,
        workers=workers, exec_backend=exec_backend,
    )
    cold_seconds = time.perf_counter() - cold_start

    speedup = cold_seconds / incremental_seconds if incremental_seconds else 0.0
    record = {
        "edit_size": size,
        "nets_edited": len(edit.nets),
        "num_nets": bench.num_nets,
        "baseline_solve_seconds": round(baseline_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "speedup": round(speedup, 3),
        "dirty_leaves": report.dirty.get("dirty_leaves", 0),
        "num_leaves": report.dirty.get("num_leaves", 0),
        "dirty_fraction": round(report.dirty_fraction, 4),
        "accepted": report.accepted,
        "digest": incremental_digest,
        "digest_match": incremental_digest == cold_digest,
    }
    print(
        f"edit size {size:>3}: incremental {incremental_seconds:.2f}s vs "
        f"cold {cold_seconds:.2f}s = {speedup:.1f}x | dirty "
        f"{record['dirty_leaves']}/{record['num_leaves']} leaves | "
        f"digests {'match' if record['digest_match'] else 'DIVERGE'}",
        flush=True,
    )
    return record, report


def _ledger_entry(
    args: argparse.Namespace, record: Dict[str, Any], report: EcoReport
) -> Dict[str, Any]:
    """One ``eco:<method>`` run-ledger entry for one edit size."""
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "benchmark": report.benchmark,
        "method": f"eco:{args.method}",
        "critical_ratio": args.ratio / 100.0,
        "fingerprint": fingerprint({
            "scale": args.scale,
            "critical_ratio": args.ratio / 100.0,
            "workers": args.workers,
            "exec_backend": args.exec_backend,
            "tier": "eco",
            "edit_size": record["edit_size"],
            "resize_factor": args.factor,
        }),
        "quality": {
            "initial_avg_tcp": report.pre_avg_tcp,
            "final_avg_tcp": report.post_avg_tcp,
            "initial_max_tcp": report.pre_max_tcp,
            "final_max_tcp": report.post_max_tcp,
        },
        "runtime": {
            "total_seconds": record["incremental_seconds"],
            "phases": {
                "eco:incremental": record["incremental_seconds"],
                "eco:cold_replay": record["cold_seconds"],
            },
            "worker_phases": {},
        },
        "convergence": {},
        "eco": {
            "epoch": report.epoch,
            "num_edits": report.num_edits,
            "edit_digest": report.edit_digest,
            "edit_size": record["edit_size"],
            "released": report.released,
            "dirty_leaves": record["dirty_leaves"],
            "num_leaves": record["num_leaves"],
            "dirty_fraction": report.dirty_fraction,
            "accepted": report.accepted,
            "digest": record["digest"],
            "speedup": record["speedup"],
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", required=True, help="snapshot label (baseline/current)")
    parser.add_argument("--out", default="BENCH_eco.json")
    parser.add_argument("--benchmark", default="adaptec1")
    parser.add_argument("--scale", type=float, default=3.0)
    parser.add_argument("--ratio", type=float, default=0.5, help="critical ratio in percent")
    parser.add_argument("--method", default="sdp", choices=["sdp", "ilp"])
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument(
        "--exec", dest="exec_backend", default="seq",
        choices=["seq", "pool", "dist", "batch"],
    )
    parser.add_argument("--edit-sizes", default=DEFAULT_EDIT_SIZES)
    parser.add_argument(
        "--factor", type=float, default=1.25,
        help="net_resize RC perturbation factor",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append one eco-tier run-ledger entry per edit size",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0, metavar="X",
        help="--check fails unless the smallest edit clears this speedup",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI smoke mode: fail on any digest divergence or if the "
             "smallest edit's incremental speedup misses --min-speedup",
    )
    args = parser.parse_args(argv)
    try:
        sizes = sorted({int(s) for s in args.edit_sizes.split(",") if s.strip()})
    except ValueError:
        parser.error("--edit-sizes must be a comma list of integers")
    if not sizes or min(sizes) < 1:
        parser.error("--edit-sizes must be positive integers")

    records: List[Dict[str, Any]] = []
    for size in sizes:
        record, report = run_one(
            args.benchmark, size, args.scale, args.ratio, args.method,
            args.workers, args.exec_backend, args.factor,
        )
        records.append(record)
        if args.ledger:
            append_entry(args.ledger, _ledger_entry(args, record, report))

    snapshot = {
        "label": args.label,
        "commit": _git_commit(),
        "python": platform.python_version(),
        "suite": {
            "benchmark": args.benchmark,
            "scale": args.scale,
            "ratio_percent": args.ratio,
            "method": args.method,
            "workers": args.workers,
            "exec": args.exec_backend,
            "edit_sizes": sizes,
            "resize_factor": args.factor,
        },
        "single_net_speedup": next(
            (r["speedup"] for r in records if r["edit_size"] == min(sizes)), 0.0
        ),
        "edits": records,
    }

    data = {"schema": BENCH_SCHEMA, "methodology": METHODOLOGY, "runs": {}}
    if os.path.exists(args.out):
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            if existing.get("schema") == BENCH_SCHEMA:
                data = existing
        except (OSError, ValueError):
            pass
    data.setdefault("runs", {})[args.label] = snapshot
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.label} snapshot to {args.out}")

    if args.check:
        bad = []
        for record in records:
            if not record["digest_match"]:
                bad.append(
                    f"edit size {record['edit_size']}: incremental and cold "
                    f"digests diverge"
                )
        smallest = records[0]
        if smallest["speedup"] < args.min_speedup:
            bad.append(
                f"edit size {smallest['edit_size']}: speedup "
                f"{smallest['speedup']:.2f}x below --min-speedup "
                f"{args.min_speedup:g}x"
            )
        if bad:
            print(f"eco-smoke failed: {bad}", file=sys.stderr)
            return 1
        print(
            f"eco-smoke ok: {len(records)} edit sizes, single-net speedup "
            f"{smallest['speedup']:.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
