"""Fig. 1 — pin-delay distribution of critical nets, TILA vs ours.

The paper's motivating figure: on adaptec1 with 0.5% of nets released, TILA
leaves more sink pins in the high-delay tail, while CPLA pulls the worst
pins down (the paper highlights the mass above 4.2e6 in their units).

Reproduced shape: CPLA's (SDP's) pin-delay tail — the pins above the 90th
percentile of the *initial* distribution — is no heavier than TILA's, and
its worst pin is no slower (within 10%).
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig1
from repro.experiments.export import export_fig1

from benchmarks.conftest import RESULTS_DIR, cached_compare, write_result


@pytest.mark.benchmark(group="fig1")
def test_fig1_pin_delay_distribution(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig1("adaptec1", ratio=0.005, compare_fn=cached_compare),
        rounds=1,
        iterations=1,
    )
    write_result("fig1_distribution.txt", result.rendered)
    export_fig1(result, str(RESULTS_DIR / "plots"))
    print("\n" + result.rendered)

    tila = result.comparison.baseline
    ours = result.comparison.ours
    assert result.ours_tail <= result.tila_tail, (
        f"CPLA tail ({result.ours_tail} pins above {result.tail_threshold:.0f}) "
        f"must not exceed TILA's ({result.tila_tail})"
    )
    assert max(ours.final_pin_delays) <= max(tila.final_pin_delays) * 1.10
    # Both methods improve on the shared initial distribution.
    assert max(ours.final_pin_delays) < max(ours.initial_pin_delays)
    assert max(tila.final_pin_delays) < max(tila.initial_pin_delays)
