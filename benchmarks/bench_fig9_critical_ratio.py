"""Fig. 9 — impact of the critical ratio (0.5%..2.5%) on adaptec1.

Paper claims, releasing more of the most-critical nets: (a) Avg(Tcp) of the
released set decreases slightly with the ratio for both methods; (b) TILA
does not control Max(Tcp) as well as SDP as the ratio grows; (c) SDP runtime
grows roughly in proportion to the ratio ("well-controlled scalability").

Reproduced shapes: Avg(Tcp) non-increasing in the ratio for SDP, below
TILA's across the sweep; SDP's Max(Tcp) at parity with TILA summed over the
sweep; SDP runtime growth bounded by the released-net growth.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig9
from repro.experiments.export import export_fig9

from benchmarks.conftest import RESULTS_DIR, cached_compare, write_result

RATIOS = (0.005, 0.010, 0.015, 0.020, 0.025)


@pytest.mark.benchmark(group="fig9")
def test_fig9_critical_ratio(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig9("adaptec1", RATIOS, compare_fn=cached_compare),
        rounds=1,
        iterations=1,
    )
    write_result("fig9_critical_ratio.txt", result.rendered)
    export_fig9(result, str(RESULTS_DIR / "plots"))
    print("\n" + result.rendered)

    # (a): releasing more (less-critical) nets lowers the released-set average.
    sdp_avgs = result.series("ours", "final_avg_tcp")
    assert sdp_avgs[-1] <= sdp_avgs[0], f"Avg(Tcp) should fall with ratio: {sdp_avgs}"

    # (b): across the sweep SDP keeps the worst path at parity with TILA
    # while winning the average (the paper's SDP also only gains 4% on Max).
    assert sum(result.series("ours", "final_max_tcp")) <= 1.08 * sum(
        result.series("baseline", "final_max_tcp")
    )
    assert sum(result.series("ours", "final_avg_tcp")) < sum(
        result.series("baseline", "final_avg_tcp")
    ), "SDP must win Avg(Tcp) across the sweep"

    # (c): runtime scales with the released work, not explosively.
    released_growth = len(
        result.comparisons[RATIOS[-1]].ours.critical_net_ids
    ) / max(len(result.comparisons[RATIOS[0]].ours.critical_net_ids), 1)
    runtime_growth = result.comparisons[RATIOS[-1]].ours.runtime / max(
        result.comparisons[RATIOS[0]].ours.runtime, 1e-9
    )
    assert runtime_growth < max(2.5 * released_growth, 4.0), (
        f"runtime growth {runtime_growth:.1f}x vs released growth "
        f"{released_growth:.1f}x"
    )
