"""Ablations of the design choices DESIGN.md calls out (our additions).

Not a paper figure — these benches justify the implementation decisions and
probe the paper's qualitative criticisms of TILA:

1. TILA initial-multiplier sensitivity (paper criticism (2)): sweep the
   initial price and record the outcome spread.
2. TILA via-cost linearization (criticism (3)): linearized (faithful) vs
   our exact tree-DP coupling.
3. CPLA post-mapping: Alg. 1 ("paper") vs global-greedy rounding, and the
   effect of the refinement sweeps.
4. CPLA criticality weighting: exponent 0 (the plain (4a) sum) vs the
   default worst-path emphasis.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import Table
from repro.core.engine import CPLAConfig
from repro.pipeline import prepare, run_method
from repro.tila.engine import TILAConfig

from benchmarks.conftest import bench_scale, write_result


@pytest.mark.benchmark(group="ablation")
def test_tila_initial_multiplier_sensitivity(benchmark):
    results = {}

    def run_all():
        for mu in (0.0, 0.1, 1.0, 10.0):
            bench = prepare("adaptec1", scale=bench_scale())
            results[mu] = run_method(
                bench, "tila",
                tila_config=TILAConfig(initial_multiplier=mu),
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(["initial mu", "Avg(Tcp)", "Max(Tcp)", "OV#"])
    for mu, rep in results.items():
        table.add_row(mu, rep.final_avg_tcp, rep.final_max_tcp, rep.final_via_overflow)
    text = table.render()
    write_result("ablation_tila_multiplier.txt", text)
    print("\n" + text)
    avgs = [r.final_avg_tcp for r in results.values()]
    # All settings must still improve over the initial assignment...
    for rep in results.values():
        assert rep.final_avg_tcp <= rep.initial_avg_tcp
    # ...and the spread documents the sensitivity (may be small at this scale).
    assert max(avgs) / min(avgs) < 1.5


@pytest.mark.benchmark(group="ablation")
def test_tila_via_linearization(benchmark):
    results = {}

    def run_all():
        for model in ("linearized", "exact-dp"):
            bench = prepare("adaptec1", scale=bench_scale())
            results[model] = run_method(
                bench, "tila", tila_config=TILAConfig(via_model=model)
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    lin = results["linearized"]
    exact = results["exact-dp"]
    text = (
        f"linearized: avg={lin.final_avg_tcp:.1f} max={lin.final_max_tcp:.1f}\n"
        f"exact-dp:   avg={exact.final_avg_tcp:.1f} max={exact.final_max_tcp:.1f}"
    )
    write_result("ablation_tila_via_model.txt", text)
    print("\n" + text)
    # Exact via coupling never hurts the DP's own objective: the paper's
    # criticism (3) predicts linearization costs quality.
    assert exact.final_avg_tcp <= lin.final_avg_tcp * 1.02


@pytest.mark.benchmark(group="ablation")
def test_cpla_mapping_modes(benchmark):
    results = {}

    def run_all():
        for mode, passes in (("paper", 2), ("greedy", 2), ("paper", 0)):
            bench = prepare("adaptec1", scale=bench_scale())
            results[(mode, passes)] = run_method(
                bench, "sdp",
                cpla_config=CPLAConfig(
                    method="sdp", mapping_mode=mode, mapping_refine_passes=passes
                ),
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(["mapping", "refine", "Avg(Tcp)", "Max(Tcp)"])
    for (mode, passes), rep in results.items():
        table.add_row(mode, passes, rep.final_avg_tcp, rep.final_max_tcp)
    text = table.render()
    write_result("ablation_mapping.txt", text)
    print("\n" + text)
    # Refinement must not hurt Alg. 1's result.
    assert (
        results[("paper", 2)].final_avg_tcp
        <= results[("paper", 0)].final_avg_tcp * 1.02
    )


@pytest.mark.benchmark(group="ablation")
def test_cpla_criticality_weighting(benchmark):
    results = {}

    def run_all():
        for exponent in (0.0, 2.0):
            bench = prepare("adaptec1", scale=bench_scale())
            results[exponent] = run_method(
                bench, "sdp",
                cpla_config=CPLAConfig(method="sdp", criticality_exponent=exponent),
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    plain = results[0.0]
    weighted = results[2.0]
    text = (
        f"exponent 0 (plain 4a sum): avg={plain.final_avg_tcp:.1f} "
        f"max={plain.final_max_tcp:.1f}\n"
        f"exponent 2 (worst-path):   avg={weighted.final_avg_tcp:.1f} "
        f"max={weighted.final_max_tcp:.1f}"
    )
    write_result("ablation_weighting.txt", text)
    print("\n" + text)
    # The weighted objective must control the worst path at least as well.
    assert weighted.final_max_tcp <= plain.final_max_tcp * 1.05
