set logscale y
set xlabel "Segment# in each partition"
set ylabel "Runtime (s)"
plot "fig8_adaptec1.dat" using 1:4 with linespoints title "adaptec1", "fig8_adaptec2.dat" using 1:4 with linespoints title "adaptec2", "fig8_bigblue1.dat" using 1:4 with linespoints title "bigblue1"
