set style data histogram
set style fill solid 0.6
set xlabel "benchmark"
plot "fig7.dat" using 3:xtic(2) title "ILP Avg(Tcp)", "" using 4 title "SDP Avg(Tcp)"
