set xlabel "Critical Ratio (%)"
set ylabel "Avg(Tcp)"
plot "fig9.dat" using 1:2 with linespoints title "TILA", "fig9.dat" using 1:3 with linespoints title "SDP"
