set logscale y 2
set xlabel "Delay Distribution"
set ylabel "Pin #"
set style data histeps
plot "fig1_tila.dat" title "TILA", "fig1_ours.dat" title "ours"
