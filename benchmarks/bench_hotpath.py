"""Hot-path benchmark: end-to-end ``repro run`` wall-clock with phase breakdown.

Records one labelled snapshot (``--label baseline`` / ``--label current``)
per invocation into ``BENCH_hotpath.json``; when both labels are present the
file also carries an ``improvement`` section comparing them.  CI's perf-smoke
step runs the same harness with ``--check`` to assert the suite completes
and the snapshot is well-formed.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --label current \
        --out BENCH_hotpath.json --benchmarks adaptec1,bigblue1,newblue1

The harness goes through the public pipeline API only (prepare +
run_method), so the identical command measures any revision of the repo.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import CPLAConfig
from repro.obs import metrics
from repro.pipeline import prepare, run_method

SCHEMA = "repro.bench_hotpath/v1"
DEFAULT_BENCHMARKS = "adaptec1,bigblue1,newblue1"

# Counters worth keeping in the snapshot (all optional: older revisions of
# the repo simply don't emit them and the harness records what exists).
_COUNTERS_OF_INTEREST = (
    "elmore.cache_hits",
    "elmore.cache_misses",
    "elmore.nets_analyzed",
    "sdp.solves",
    "sdp.warm_starts",
    "sdp.iterations",
    "engine.leaves",
    "engine.pool_failures",
    "batch.buckets",
    "batch.iters",
    "batch.member_iters",
)


def _git_commit() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True,
        ).strip()
    except Exception:
        return "unknown"


def run_suite(
    names: List[str],
    scale: float,
    ratio: float,
    method: str,
    workers: int,
    exec_backend: str = "pool",
) -> Dict[str, dict]:
    """Run the optimizer on every benchmark; return per-benchmark records."""
    records: Dict[str, dict] = {}
    for name in names:
        metrics.enable()
        metrics.registry().reset()
        cfg = CPLAConfig(workers=workers, exec_backend=exec_backend)
        start = time.perf_counter()
        bench = prepare(name, scale=scale)
        prepare_seconds = time.perf_counter() - start
        report = run_method(
            bench, method, critical_ratio=ratio / 100.0, cpla_config=cfg
        )
        wall = time.perf_counter() - start
        counters = metrics.registry().as_dict()["counters"]
        metrics.disable()
        phases = dict(report.clock.totals)
        phases["prepare"] = prepare_seconds
        records[name] = {
            "scale": scale,
            "nets": bench.num_nets,
            "segments": sum(len(n.topology.segments) for n in bench.nets),
            "wall_seconds": round(wall, 4),
            "run_seconds": round(report.runtime, 4),
            "phases": {k: round(v, 4) for k, v in sorted(phases.items())},
            "worker_phases": {
                k: round(v, 4) for k, v in sorted(report.worker_clock.totals.items())
            },
            "initial_avg_tcp": report.initial_avg_tcp,
            "final_avg_tcp": report.final_avg_tcp,
            "initial_max_tcp": report.initial_max_tcp,
            "final_max_tcp": report.final_max_tcp,
            "counters": {
                k: counters[k] for k in _COUNTERS_OF_INTEREST if k in counters
            },
        }
        print(
            f"{name}: {wall:.2f}s wall ({report.runtime:.2f}s optimize), "
            f"Avg(Tcp) {report.initial_avg_tcp:.1f} -> {report.final_avg_tcp:.1f}",
            flush=True,
        )
    return records


def _aggregate_phases(records: Dict[str, dict]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for rec in records.values():
        for phase, seconds in rec["phases"].items():
            totals[phase] = round(totals.get(phase, 0.0) + seconds, 4)
    return dict(sorted(totals.items()))


# SDP warm starts perturb the ADMM trajectory within the solver tolerance,
# so final Tcp may move by a fraction of a percent in either direction
# (bitwise parity is available with SdpRelaxationConfig(warm_start=False)).
# Quality counts as preserved when no final metric *worsens* beyond this.
QUALITY_TOLERANCE = 0.005


def _improvement(baseline: dict, current: dict) -> dict:
    """Baseline-vs-current speedup summary (positive = current faster)."""
    out: Dict[str, object] = {}
    base_total = baseline["total_wall_seconds"]
    cur_total = current["total_wall_seconds"]
    if base_total > 0:
        out["wall_clock_improvement"] = round(1.0 - cur_total / base_total, 4)
    per_bench = {}
    quality_preserved = True
    for name, base_rec in baseline["benchmarks"].items():
        cur_rec = current["benchmarks"].get(name)
        if cur_rec is None:
            continue
        entry = {}
        if base_rec["wall_seconds"] > 0:
            entry["wall_clock_improvement"] = round(
                1.0 - cur_rec["wall_seconds"] / base_rec["wall_seconds"], 4
            )
        for metric in ("final_avg_tcp", "final_max_tcp"):
            base_v, cur_v = base_rec[metric], cur_rec[metric]
            change = (cur_v - base_v) / base_v if base_v else cur_v
            entry[f"{metric}_change"] = round(change, 8)
            if change > QUALITY_TOLERANCE:
                quality_preserved = False
        per_bench[name] = entry
    out["per_benchmark"] = per_bench
    out["quality_preserved"] = quality_preserved
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", required=True, help="snapshot label (baseline/current)")
    parser.add_argument("--out", default="BENCH_hotpath.json")
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--ratio", type=float, default=0.5, help="critical ratio in percent")
    parser.add_argument("--method", default="sdp", choices=["sdp", "ilp"])
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument(
        "--exec", dest="exec_backend", default="pool",
        choices=["pool", "dist", "batch", "seq"],
        help="leaf-solve execution backend (see `repro run --help`)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the suite N times and keep each benchmark's fastest run "
        "(noise robustness on shared machines)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI smoke mode: fail unless every benchmark completed and improved timing",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]

    records = run_suite(
        names, args.scale, args.ratio, args.method, args.workers,
        args.exec_backend,
    )
    for rep in range(1, args.repeat):
        print(f"-- repeat {rep + 1}/{args.repeat}", flush=True)
        again = run_suite(
            names, args.scale, args.ratio, args.method, args.workers,
            args.exec_backend,
        )
        for name, rec in again.items():
            if rec["wall_seconds"] < records[name]["wall_seconds"]:
                records[name] = rec
    snapshot = {
        "label": args.label,
        "commit": _git_commit(),
        "python": platform.python_version(),
        "suite": {
            "benchmarks": names,
            "scale": args.scale,
            "ratio_percent": args.ratio,
            "method": args.method,
            "workers": args.workers,
            "exec": args.exec_backend,
            "repeat": args.repeat,
        },
        "total_wall_seconds": round(
            sum(r["wall_seconds"] for r in records.values()), 4
        ),
        "phases_total": _aggregate_phases(records),
        "benchmarks": records,
    }

    data = {"schema": SCHEMA, "runs": {}}
    if os.path.exists(args.out):
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            if existing.get("schema") == SCHEMA:
                data = existing
        except (OSError, ValueError):
            pass
    data.setdefault("runs", {})[args.label] = snapshot
    runs = data["runs"]
    if "baseline" in runs and "current" in runs:
        data["improvement"] = _improvement(runs["baseline"], runs["current"])
    out_dir = os.path.dirname(os.path.abspath(args.out))
    os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.label} snapshot to {args.out}")

    if args.check:
        bad = [
            name for name, rec in records.items()
            if not rec["final_avg_tcp"] <= rec["initial_avg_tcp"] * (1 + 1e-9)
        ]
        if bad:
            print(f"perf-smoke failed: Avg(Tcp) regressed on {bad}", file=sys.stderr)
            return 1
        print(f"perf-smoke ok: {len(records)} benchmarks completed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
