"""Tests for metrics, histograms, tables, and run reports."""

import numpy as np
import pytest

from repro.analysis.histogram import delay_histogram, render_histogram, tail_mass
from repro.analysis.metrics import (
    MethodMetrics,
    average_row,
    collect_by_method,
    ratio_row,
)
from repro.analysis.report import Table, density_map_text, render_table
from repro.analysis.runreport import RunReport
from repro.utils import WallClock


def report(method="sdp", avg=100.0, mx=200.0, ov=50, vias=1000, secs=2.0):
    r = RunReport(benchmark="b", method=method, critical_ratio=0.005)
    r.initial_avg_tcp, r.final_avg_tcp = avg * 1.2, avg
    r.initial_max_tcp, r.final_max_tcp = mx * 1.2, mx
    r.final_via_overflow = ov
    r.final_vias = vias
    r.clock = WallClock()
    r.clock.add("solve", secs)
    return r


class TestRunReport:
    def test_improvements(self):
        r = report()
        assert r.avg_improvement == pytest.approx(1 - 1 / 1.2)
        assert r.max_improvement == pytest.approx(1 - 1 / 1.2)
        assert r.runtime == pytest.approx(2.0)

    def test_zero_initial_guarded(self):
        r = RunReport(benchmark="b", method="m", critical_ratio=0.005)
        assert r.avg_improvement == 0.0


class TestMetrics:
    def test_from_report(self):
        m = MethodMetrics.from_report(report())
        assert (m.avg_tcp, m.max_tcp, m.via_overflow) == (100.0, 200.0, 50)

    def test_average_row(self):
        rows = [
            MethodMetrics("a", "m", 10, 20, 2, 100, 1.0),
            MethodMetrics("b", "m", 30, 40, 4, 300, 3.0),
        ]
        avg = average_row(rows, "m")
        assert avg.avg_tcp == 20
        assert avg.via_overflow == 3
        assert avg.benchmark == "average"

    def test_average_row_empty_rejected(self):
        with pytest.raises(ValueError):
            average_row([], "m")

    def test_ratio_row(self):
        ours = MethodMetrics("a", "sdp", 86, 96, 90, 100, 3.16)
        base = MethodMetrics("a", "tila", 100, 100, 100, 100, 1.0)
        r = ratio_row(ours, base)
        assert r["avg_tcp"] == pytest.approx(0.86)
        assert r["cpu_seconds"] == pytest.approx(3.16)

    def test_collect_by_method(self):
        reports = [report("tila"), report("sdp"), report("sdp")]
        assert len(collect_by_method(reports, "sdp")) == 2
        assert len(collect_by_method(reports)) == 3


class TestHistogram:
    def test_binning(self):
        edges, counts = delay_histogram([1.0, 2.0, 3.0, 10.0], bins=3)
        assert len(edges) == 4
        assert counts.sum() == 4

    def test_empty_input(self):
        edges, counts = delay_histogram([], bins=5)
        assert counts.sum() == 0

    def test_render_contains_counts(self):
        edges, counts = delay_histogram([1.0] * 8 + [5.0], bins=2)
        text = render_histogram(edges, counts, title="t")
        assert "t" in text
        assert "8" in text

    def test_tail_mass(self):
        assert tail_mass([1.0, 5.0, 9.0], 4.0) == 2

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            delay_histogram([1.0], bins=0)


class TestTables:
    def test_render_aligns_columns(self):
        text = render_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_table_add_row_validation(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row(3.14159)
        assert "3.14" in t.render()

    def test_csv_rendering(self):
        t = Table(["name", "value"])
        t.add_row("a,b", 1.5)
        csv = t.render_csv()
        lines = csv.splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a;b,1.5"

    def test_density_map_shape(self):
        dens = np.zeros((4, 3))
        dens[1, 1] = 5.0
        text = density_map_text(dens)
        lines = text.splitlines()
        assert len(lines) == 3  # one per y, top-down
        assert len(lines[0]) == 4

    def test_density_map_rejects_1d(self):
        with pytest.raises(ValueError):
            density_map_text(np.zeros(5))
