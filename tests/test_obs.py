"""Tests of the observability subsystem (repro.obs)."""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.core.engine import CPLAConfig, CPLAEngine
from repro.core.sdp_relaxation import SdpRelaxationConfig
from repro.ispd.synthetic import generate
from repro.obs import collect, convergence, metrics, tracer
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.pipeline import prepare
from repro.solver.sdp import SDPSettings
from repro.utils import WallClock

from tests.conftest import tiny_spec


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    yield
    obs.disable()


def fast_cpla(**kwargs) -> CPLAConfig:
    defaults = dict(
        method="sdp",
        critical_ratio=0.05,
        max_iterations=1,
        max_phase_iterations=1,
        sdp=SdpRelaxationConfig(
            settings=SDPSettings(tolerance=3e-4, max_iterations=400)
        ),
    )
    defaults.update(kwargs)
    return CPLAConfig(**defaults)


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        s1 = tracer.span("a", key=1)
        s2 = tracer.span("b")
        assert s1 is s2  # the singleton: no allocation on the disabled path
        with s1 as inner:
            inner.set_attr("x", 1)  # must not raise
        assert tracer.snapshot() == []

    def test_span_nesting_and_ordering(self):
        tracer.enable()
        with tracer.span("outer", run=1) as outer:
            with tracer.span("mid") as mid:
                with tracer.span("inner"):
                    pass
            with tracer.span("mid2"):
                pass
        spans = tracer.snapshot()
        # Spans record on exit: innermost first, root last.
        assert [s["name"] for s in spans] == ["inner", "mid", "mid2", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["parent"] is None
        assert by_name["mid"]["parent"] == by_name["outer"]["id"]
        assert by_name["mid2"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["parent"] == by_name["mid"]["id"]
        assert by_name["outer"]["attrs"] == {"run": 1}
        for s in spans:
            assert s["end"] >= s["start"]
            assert s["dur"] == pytest.approx(s["end"] - s["start"])
        assert outer.id != mid.id

    def test_export_jsonl_round_trips(self, tmp_path):
        tracer.enable()
        with tracer.span("a", n=3):
            pass
        path = tmp_path / "trace.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["attrs"] == {"n": 3}

    def test_drain_clears_buffer(self):
        tracer.enable()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.snapshot() == []

    def test_current_span_id(self):
        tracer.enable()
        assert tracer.current_span_id() is None
        with tracer.span("a") as s:
            assert tracer.current_span_id() == s.id
        assert tracer.current_span_id() is None


class TestHistogram:
    def test_bucket_edges_are_inclusive(self):
        hist = Histogram((1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 5.0, 5.0001, 10.0, 11.0, 100.0):
            hist.observe(v)
        # le semantics: value goes to the first bucket with bound >= value.
        assert hist.counts == [2, 1, 2, 2]
        assert hist.cumulative() == [2, 3, 5, 7]
        assert hist.count == 7
        assert hist.sum == pytest.approx(0.5 + 1.0 + 5.0 + 5.0001 + 10.0 + 11.0 + 100.0)

    def test_bounds_sorted_and_required(self):
        assert Histogram((10.0, 1.0)).buckets == (1.0, 10.0)
        with pytest.raises(ValueError):
            Histogram(())

    def test_nonfinite_bounds(self):
        # +Inf duplicates the implicit overflow slot; -Inf catches nothing.
        assert Histogram((1.0, float("inf"))).buckets == (1.0,)
        assert Histogram((float("-inf"), 1.0)).buckets == (1.0,)
        with pytest.raises(ValueError):
            Histogram((float("nan"), 1.0))
        with pytest.raises(ValueError):
            Histogram((float("inf"),))  # nothing finite left

    def test_duplicate_bounds_collapse(self):
        hist = Histogram((1.0, 1.0, 2.0))
        assert hist.buckets == (1.0, 2.0)
        assert len(hist.counts) == 3


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a.count")
        reg.inc("a.count", 2)
        reg.set_gauge("a.gauge", 1.5)
        reg.set_gauge("a.gauge", 2.5)
        reg.observe("a.lat", 0.3, buckets=(0.1, 1.0))
        data = reg.as_dict()
        assert data["counters"] == {"a.count": 3.0}
        assert data["gauges"] == {"a.gauge": 2.5}
        assert data["histograms"]["a.lat"]["counts"] == [0, 1, 0]

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.inc("engine.iterations", 4)
        reg.set_gauge("sdp.last_objective", 1.25)
        reg.observe("leaf.seconds", 0.05, buckets=(0.01, 0.1))
        text = reg.render_prometheus()
        assert "# TYPE repro_engine_iterations_total counter" in text
        assert "repro_engine_iterations_total 4" in text
        assert "# TYPE repro_sdp_last_objective gauge" in text
        assert "repro_sdp_last_objective 1.25" in text
        assert "# TYPE repro_leaf_seconds histogram" in text
        assert 'repro_leaf_seconds_bucket{le="0.01"} 0' in text
        assert 'repro_leaf_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_leaf_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_leaf_seconds_count 1" in text

    def test_merge_dict_adds_counters_and_buckets(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 5)
        b.set_gauge("g", 9.0)
        a.observe("h", 0.5, buckets=(1.0,))
        b.observe("h", 2.0, buckets=(1.0,))
        a.merge_dict(b.as_dict())
        data = a.as_dict()
        assert data["counters"] == {"x": 3.0, "y": 5.0}
        assert data["gauges"] == {"g": 9.0}
        assert data["histograms"]["h"]["counts"] == [1, 1]
        assert a.merge_conflicts == 0

    def test_merge_conflicting_buckets_dropped(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0,))
        b.observe("h", 0.5, buckets=(2.0,))
        a.merge_dict(b.as_dict())
        assert a.merge_conflicts == 1
        assert a.as_dict()["histograms"]["h"]["counts"] == [1, 0]

    def test_merge_rejects_malformed_counts(self, caplog):
        a = MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0,))
        # Counts list not matching bounds+1: drop loudly, local untouched.
        with caplog.at_level("WARNING"):
            a.merge_dict(
                {"histograms": {"h": {"buckets": [1.0], "counts": [1, 2, 3],
                                      "sum": 9.0, "count": 6}}}
            )
        assert a.merge_conflicts == 1
        assert "dropping histogram 'h'" in caplog.text
        data = a.as_dict()["histograms"]["h"]
        assert data["counts"] == [1, 0]
        assert data["sum"] == pytest.approx(0.5)
        assert data["count"] == 1

    def test_merge_rejects_unbuildable_new_histogram(self):
        a = MetricsRegistry()
        # Unknown name whose payload layout is self-inconsistent: rejected,
        # never materialized.
        a.merge_dict(
            {"histograms": {"bad": {"buckets": [], "counts": [1],
                                    "sum": 1.0, "count": 1}}}
        )
        assert a.merge_conflicts == 1
        assert "bad" not in a.as_dict()["histograms"]

    def test_sanitized_name_collisions_get_suffixes(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 1)
        reg.inc("a_b", 2)
        reg.set_gauge("a-b", 3.0)
        text = reg.render_prometheus()
        # Sorted order: "a-b" < "a.b" < "a_b"; first keeps the plain name.
        assert "repro_a_b 3" in text
        assert "repro_a_b_2_total 1" in text
        assert "repro_a_b_3_total 2" in text
        # No duplicate metric family names in the exposition.
        families = [
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE")
        ]
        assert len(families) == len(set(families))

    def test_render_nonfinite_values(self):
        reg = MetricsRegistry()
        reg.set_gauge("g.nan", float("nan"))
        reg.set_gauge("g.inf", float("inf"))
        reg.set_gauge("g.ninf", float("-inf"))
        reg.observe("h", float("inf"), buckets=(1.0,))
        text = reg.render_prometheus()
        assert "repro_g_nan NaN" in text
        assert "repro_g_inf +Inf" in text
        assert "repro_g_ninf -Inf" in text
        # An infinite observation lands in the overflow bucket; the sum is
        # rendered in Prometheus spelling, not Python's 'inf'.
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_sum +Inf" in text
        assert "inf\n" not in text and " nan" not in text

    def test_module_helpers_disabled_by_default(self):
        metrics.inc("nope")
        metrics.set_gauge("nope", 1.0)
        metrics.observe("nope", 1.0)
        data = metrics.registry().as_dict()
        assert data["counters"] == {}
        assert data["gauges"] == {}
        assert data["histograms"] == {}


class TestCollect:
    def test_merge_worker_telemetry(self):
        tracer.enable()
        metrics.enable()
        telemetry = collect.WorkerTelemetry(
            spans=[
                {"id": "999:1", "parent": None, "name": "engine.leaf",
                 "start": 0.0, "end": 1.0, "dur": 1.0, "pid": 999},
                {"id": "999:2", "parent": "999:1", "name": "solver.sdp",
                 "start": 0.1, "end": 0.9, "dur": 0.8, "pid": 999},
            ],
            metrics={"counters": {"sdp.solves": 3.0}, "gauges": {},
                     "histograms": {}},
            phases={"solve": 1.25},
        )
        worker_clock = WallClock()
        collect.merge_worker_telemetry(telemetry, worker_clock, "1:42")
        spans = tracer.snapshot()
        # Orphan worker roots are re-parented; nested spans keep their link.
        assert {s["id"]: s["parent"] for s in spans} == {
            "999:1": "1:42", "999:2": "999:1"
        }
        assert metrics.registry().as_dict()["counters"]["sdp.solves"] == 3.0
        assert worker_clock.totals == {"solve": 1.25}

    def test_merge_none_is_noop(self):
        collect.merge_worker_telemetry(None, WallClock(), "1:1")

    def test_capture_resets_buffers(self):
        tracer.enable()
        metrics.enable()
        with tracer.span("a"):
            metrics.inc("c")
        clock = WallClock()
        clock.add("solve", 0.5)
        telemetry = collect.capture_worker_telemetry(clock)
        assert [s["name"] for s in telemetry.spans] == ["a"]
        assert telemetry.phases == {"solve": 0.5}
        assert tracer.snapshot() == []  # drained

    def test_multi_worker_histogram_payloads_accumulate_exactly(self):
        metrics.enable()
        buckets = (0.01, 0.1, 1.0)
        observations = ([0.005, 0.05, 0.5], [0.02, 0.2, 2.0], [0.05, 5.0])
        payloads = []
        for values in observations:
            # Each "worker" builds its own registry, as a pool worker would.
            reg = MetricsRegistry()
            for v in values:
                reg.observe("leaf.seconds", v, buckets=buckets)
            payloads.append(
                collect.WorkerTelemetry(
                    metrics={"counters": {}, "gauges": {},
                             "histograms": {"leaf.seconds":
                                            reg.histograms["leaf.seconds"].as_dict()}}
                )
            )
        for payload in payloads:
            collect.merge_worker_telemetry(payload)
        merged = metrics.registry().as_dict()["histograms"]["leaf.seconds"]
        every = [v for values in observations for v in values]
        # Counts, sum, and count accumulate exactly across all workers.
        assert merged["count"] == len(every)
        assert merged["sum"] == pytest.approx(sum(every))
        expected = Histogram(buckets)
        for v in every:
            expected.observe(v)
        assert merged["counts"] == expected.counts
        assert metrics.registry().merge_conflicts == 0

    def test_mismatched_worker_bucket_layout_rejected_loudly(self, caplog):
        metrics.enable()
        metrics.observe("leaf.seconds", 0.5, buckets=(1.0,))
        rogue = collect.WorkerTelemetry(
            metrics={"counters": {}, "gauges": {},
                     "histograms": {"leaf.seconds":
                                    {"buckets": [0.5, 2.0], "counts": [1, 0, 0],
                                     "sum": 0.4, "count": 1}}}
        )
        with caplog.at_level("WARNING"):
            collect.merge_worker_telemetry(rogue)
        assert metrics.registry().merge_conflicts == 1
        assert "leaf.seconds" in caplog.text
        local = metrics.registry().as_dict()["histograms"]["leaf.seconds"]
        assert local["counts"] == [1, 0] and local["count"] == 1

    def test_convergence_records_round_trip(self):
        convergence.enable()
        convergence.record_solve(convergence.SolveRecord(
            solver="sdp", matrix_order=8, num_constraints=4, warm_start=True,
            iterations=120, converged=True, objective=1.5,
            primal_residual=1e-6, dual_residual=2e-6, solve_seconds=0.01,
            projection_seconds=0.008, psd_identity_fraction=0.25,
            samples=[{"iteration": 10, "objective": 2.0, "primal": 0.1,
                      "dual": 0.2, "rho": 1.0}],
        ))
        telemetry = collect.capture_worker_telemetry()
        assert len(telemetry.convergence) == 1
        assert telemetry.convergence[0]["iterations"] == 120
        # Capture drains the worker-side buffer.
        assert convergence.snapshot()["solves"] == []
        collect.merge_worker_telemetry(telemetry)
        solves = convergence.snapshot()["solves"]
        assert len(solves) == 1
        assert solves[0]["samples"][0]["iteration"] == 10


class TestEngineIntegration:
    def test_sequential_run_produces_nested_spans_and_metrics(self):
        obs.enable()
        bench = prepare(generate(tiny_spec(nets=60)))
        report = CPLAEngine(bench, fast_cpla()).run()
        spans = tracer.snapshot()
        names = {s["name"] for s in spans}
        assert {"engine.run", "engine.iteration", "engine.leaf",
                "solver.sdp", "postmap.map", "timing.analyze_all"} <= names
        by_id = {s["id"]: s for s in spans}
        leaf = next(s for s in spans if s["name"] == "engine.leaf")
        assert by_id[leaf["parent"]]["name"] == "engine.iteration"
        # The run report carries the metrics snapshot from >= 5 modules.
        counters = report.metrics["counters"]
        assert counters["engine.iterations"] >= 1
        assert counters["sdp.solves"] >= 1
        assert counters["postmap.calls"] >= 1
        assert counters["elmore.refreshes"] >= 1
        assert counters["router.nets_routed"] >= 1
        summary = report.observability_summary()
        assert "counters:" in summary and "sdp.solves" in summary

    def test_parallel_run_merges_worker_telemetry(self):
        obs.enable()
        bench = prepare(generate(tiny_spec(nets=60)))
        report = CPLAEngine(bench, fast_cpla(workers=2)).run()
        spans = tracer.snapshot()
        worker_spans = [
            s for s in spans
            if s["name"] == "engine.leaf" and s.get("attrs", {}).get("worker")
        ]
        assert worker_spans, "per-leaf spans from pool workers must be merged"
        by_id = {s["id"]: s for s in spans}
        for s in worker_spans:
            assert by_id[s["parent"]]["name"] == "engine.iteration"
        # The worker-timing fix: per-leaf solve seconds reach the report.
        assert report.worker_clock.totals.get("solve", 0.0) > 0.0
        assert report.metrics["counters"]["sdp.solves"] >= 1

    def test_parallel_worker_clock_survives_without_obs(self):
        # The timing fix must work even with observability fully disabled.
        bench = prepare(generate(tiny_spec(nets=60)))
        report = CPLAEngine(bench, fast_cpla(workers=2)).run()
        assert report.worker_clock.totals.get("solve", 0.0) > 0.0
        assert report.metrics == {}
        assert tracer.snapshot() == []


class TestOverhead:
    def test_obs_overhead(self):
        """The disabled path must be near-free in the engine hot loop."""
        assert not obs.is_enabled()
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            with tracer.span("engine.leaf"):
                pass
            metrics.inc("engine.leaves")
            metrics.observe("engine.leaf_solve_seconds", 0.001)
        elapsed = time.perf_counter() - start
        # ~3 disabled calls per leaf solve; a real leaf solve costs
        # milliseconds, so anything under ~2.5us per triple is noise.
        assert elapsed < n * 2.5e-6 * 10  # 10x slack for CI jitter
        assert tracer.snapshot() == []
        assert metrics.registry().as_dict()["counters"] == {}
