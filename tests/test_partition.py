"""Tests for K x K division and self-adaptive quadruple partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import Region, kxk_regions, self_adaptive_partition
from repro.route.net import Segment


def seg(key, x, y, length=1, axis="H"):
    if axis == "H":
        return (key, Segment(0, 0, "H", x, y, x + length, y))
    return (key, Segment(0, 0, "V", x, y, x, y + length))


class TestRegion:
    def test_contains_half_open(self):
        r = Region(0, 0, 4, 4)
        assert r.contains_point(0, 0)
        assert r.contains_point(3.999, 0)
        assert not r.contains_point(4, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Region(2, 2, 2, 4)

    def test_quad_children_partition_area(self):
        r = Region(0, 0, 4, 6)
        children = r.quad_children()
        assert len(children) == 4
        area = sum(c.width * c.height for c in children)
        assert area == pytest.approx(r.width * r.height)

    def test_thin_region_splits_in_one_axis(self):
        r = Region(0, 0, 1, 4)
        children = r.quad_children()
        assert len(children) == 2

    def test_atomic(self):
        assert Region(0, 0, 1, 1).is_atomic
        assert not Region(0, 0, 2, 1).is_atomic


class TestKxK:
    def test_covers_grid_exactly(self):
        regions = kxk_regions(20, 20, 5)
        assert len(regions) == 25
        area = sum(r.width * r.height for r in regions)
        assert area == pytest.approx(400)

    def test_k_clamped_to_grid(self):
        regions = kxk_regions(3, 3, 10)
        assert len(regions) == 9

    def test_k_validation(self):
        with pytest.raises(ValueError):
            kxk_regions(10, 10, 0)


class TestSelfAdaptive:
    def test_every_segment_in_exactly_one_leaf(self):
        segments = [seg(i, x, y) for i, (x, y) in enumerate(
            [(0, 0), (1, 1), (5, 5), (9, 9), (9, 0), (0, 9), (4, 4), (6, 2)]
        )]
        leaves = self_adaptive_partition(12, 12, segments, k=2, max_segments=3)
        seen = [k for _, keys in leaves for k in keys]
        assert sorted(seen) == list(range(8))

    def test_leaves_respect_max_segments(self):
        segments = [seg(i, i % 10, i // 10) for i in range(60)]
        leaves = self_adaptive_partition(12, 12, segments, k=1, max_segments=5)
        for region, keys in leaves:
            assert len(keys) <= 5 or region.is_atomic

    def test_dense_single_tile_stops_splitting(self):
        # 20 segments with the same midpoint: cannot split below one tile.
        segments = [seg(i, 3, 3) for i in range(20)]
        leaves = self_adaptive_partition(8, 8, segments, k=1, max_segments=4)
        assert len(leaves) == 1
        region, keys = leaves[0]
        assert len(keys) == 20

    def test_no_empty_leaves(self):
        segments = [seg(0, 1, 1)]
        leaves = self_adaptive_partition(16, 16, segments, k=4, max_segments=10)
        assert len(leaves) == 1

    def test_boundary_midpoints_bucketed(self):
        # Segment midpoint on the far grid edge must still land in a leaf.
        segments = [seg(0, 10, 11, length=1)]
        leaves = self_adaptive_partition(12, 12, segments, k=3, max_segments=10)
        assert sum(len(keys) for _, keys in leaves) == 1

    def test_deterministic_order(self):
        segments = [seg(i, (i * 3) % 11, (i * 7) % 11) for i in range(30)]
        a = self_adaptive_partition(12, 12, segments, 3, 4)
        b = self_adaptive_partition(12, 12, segments, 3, 4)
        assert [(r, keys) for r, keys in a] == [(r, keys) for r, keys in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            self_adaptive_partition(8, 8, [], 2, 0)


@settings(max_examples=40, deadline=None)
@given(
    coords=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=1,
        max_size=50,
    ),
    k=st.integers(1, 5),
    max_segments=st.integers(1, 8),
)
def test_partition_is_exhaustive_and_disjoint(coords, k, max_segments):
    segments = [seg(i, x, y) for i, (x, y) in enumerate(coords)]
    leaves = self_adaptive_partition(17, 16, segments, k, max_segments)
    seen = [key for _, keys in leaves for key in keys]
    assert sorted(seen) == sorted(range(len(coords)))
    for region, keys in leaves:
        assert keys
