"""Unit tests for nets, pins, and segments."""

import pytest

from repro.grid.layers import Direction
from repro.route.net import Net, Pin, Segment


class TestPin:
    def test_tile(self):
        assert Pin(3, 4, 2).tile == (3, 4)

    def test_frozen_and_hashable(self):
        a = Pin(1, 1, 1, 1.0)
        b = Pin(1, 1, 1, 1.0)
        assert a == b
        assert len({a, b}) == 1


class TestSegment:
    def test_horizontal_properties(self):
        s = Segment(0, 0, "H", 2, 5, 6, 5)
        assert s.length == 4
        assert s.direction is Direction.HORIZONTAL
        assert s.edges() == [("H", x, 5) for x in range(2, 6)]
        assert s.tiles() == [(x, 5) for x in range(2, 7)]
        assert s.midpoint() == (4.0, 5.0)

    def test_vertical_properties(self):
        s = Segment(0, 0, "V", 3, 1, 3, 4)
        assert s.length == 3
        assert s.direction is Direction.VERTICAL
        assert len(s.edges()) == 3
        assert all(e[0] == "V" for e in s.edges())

    def test_other_endpoint(self):
        s = Segment(0, 0, "H", 0, 0, 3, 0)
        assert s.other_endpoint((0, 0)) == (3, 0)
        assert s.other_endpoint((3, 0)) == (0, 0)
        with pytest.raises(ValueError):
            s.other_endpoint((1, 0))

    def test_validation(self):
        with pytest.raises(ValueError):
            Segment(0, 0, "H", 3, 0, 1, 0)  # reversed
        with pytest.raises(ValueError):
            Segment(0, 0, "H", 0, 0, 3, 1)  # not straight
        with pytest.raises(ValueError):
            Segment(0, 0, "V", 0, 2, 0, 2)  # zero length
        with pytest.raises(ValueError):
            Segment(0, 0, "D", 0, 0, 1, 0)  # bad axis


class TestNet:
    def _net(self):
        return Net(7, "n7", [Pin(0, 0), Pin(4, 2, capacitance=2.0), Pin(1, 5)])

    def test_source_and_sinks(self):
        net = self._net()
        assert net.source == net.pins[0]
        assert len(net.sinks) == 2

    def test_hpwl(self):
        assert self._net().hpwl() == 4 + 5

    def test_empty_net_source_rejected(self):
        with pytest.raises(ValueError):
            Net(0, "e", []).source

    def test_local_detection(self):
        local = Net(0, "l", [Pin(2, 2, 1), Pin(2, 2, 4)])
        assert local.is_local()
        assert not self._net().is_local()
        assert local.hpwl() == 0

    def test_pin_tiles(self):
        assert self._net().pin_tiles == [(0, 0), (4, 2), (1, 5)]
