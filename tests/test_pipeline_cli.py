"""Integration tests for the pipeline layer and the CLI."""

import pytest

from repro.cli import EXIT_INFEASIBLE, EXIT_OVERFLOW, build_parser, main
from repro.ispd.synthetic import generate
from repro.pipeline import compare, prepare, run_method

from tests.conftest import tiny_spec


class TestPrepare:
    def test_prepare_by_name(self):
        bench = prepare("adaptec1", scale=0.05)
        assert bench.name == "adaptec1"
        for net in bench.nets:
            assert net.topology is not None
            for seg in net.topology.segments:
                assert seg.layer > 0

    def test_prepare_benchmark_object(self):
        bench = prepare(generate(tiny_spec()))
        assert bench.grid.total_wirelength() > 0


class TestRunMethod:
    def test_all_methods_run(self):
        for method in ("tila", "sdp"):
            bench = prepare(generate(tiny_spec()))
            report = run_method(bench, method, critical_ratio=0.05)
            assert report.final_avg_tcp <= report.initial_avg_tcp * 1.001

    def test_unknown_method_rejected(self):
        bench = prepare(generate(tiny_spec()))
        with pytest.raises(ValueError):
            run_method(bench, "quantum")

    def test_compare_pairs_same_released_nets(self):
        result = compare("adaptec1", critical_ratio=0.01, scale=0.05)
        assert set(result.baseline.critical_net_ids) == set(
            result.ours.critical_net_ids
        )
        assert result.avg_ratio > 0
        assert result.max_ratio > 0


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--benchmark", "adaptec1"])
        assert args.command == "run"
        args = parser.parse_args(["table2", "--scale", "0.1"])
        assert args.scale == 0.1

    def test_gen_writes_files(self, tmp_path, capsys):
        rc = main(["gen", "adaptec1", "--out", str(tmp_path), "--scale", "0.05"])
        assert rc == 0
        assert (tmp_path / "adaptec1.gr").exists()

    def test_gen_unknown_benchmark(self, tmp_path):
        rc = main(["gen", "nonesuch", "--out", str(tmp_path)])
        assert rc == 2

    def test_run_command(self, capsys):
        # This configuration is known to finish with residual via-capacity
        # overflow, which `repro run` now reports as exit code 3 (the
        # result is still produced and printed).
        rc = main([
            "run", "--benchmark", "adaptec1", "--method", "tila",
            "--scale", "0.05", "--ratio", "2",
        ])
        assert rc == EXIT_OVERFLOW
        captured = capsys.readouterr()
        assert "Avg(Tcp)" in captured.out
        assert "runtime" in captured.out
        assert "assignment digest: sha256:" in captured.out
        assert "overflow" in captured.err

    def test_run_command_infeasible_input(self, capsys, monkeypatch):
        import repro.cli as cli_mod

        def broken_prepare(*args, **kwargs):
            raise ValueError("no such benchmark data")

        monkeypatch.setattr(cli_mod, "prepare", broken_prepare)
        rc = main(["run", "--benchmark", "adaptec1", "--scale", "0.05"])
        assert rc == EXIT_INFEASIBLE
        assert "infeasible" in capsys.readouterr().err

    def test_density_command(self, capsys):
        rc = main(["density", "--benchmark", "adaptec1", "--scale", "0.05"])
        assert rc == 0
        assert capsys.readouterr().out.strip()
