"""Shared fixtures.

Tests run on purpose-built tiny instances (not the evaluation-scale suite)
so the whole suite stays fast; the benches exercise full scale.
"""

from __future__ import annotations

import pytest

from repro.grid.graph import GridGraph
from repro.grid.layers import Direction, Layer, LayerStack
from repro.ispd.synthetic import SyntheticSpec, generate
from repro.pipeline import prepare
from repro.timing.rc import industrial_rc


def make_stack(
    num_layers: int = 4,
    tracks: int = 4,
    via_r: float = 4.0,
    first: Direction = Direction.HORIZONTAL,
) -> LayerStack:
    """A small uniform stack: R halves per tier, C constant, w = s = 1."""
    rc = industrial_rc(num_layers, via_cut_resistance=via_r)
    direction = first
    layers = []
    for i in range(num_layers):
        layers.append(
            Layer(
                index=i + 1,
                direction=direction,
                unit_resistance=rc.unit_resistance[i],
                unit_capacitance=rc.unit_capacitance[i],
                min_width=1.0,
                min_spacing=1.0,
                default_capacity=tracks * 2.0,
            )
        )
        direction = direction.other
    return LayerStack(
        layers=tuple(layers),
        via_resistances=rc.via_resistance,
        via_capacitances=rc.via_capacitance,
        via_width=1.0,
        via_spacing=1.0,
        tile_width=10.0,
        tile_height=10.0,
    )


@pytest.fixture
def stack4() -> LayerStack:
    return make_stack(4)


@pytest.fixture
def stack6() -> LayerStack:
    return make_stack(6)


@pytest.fixture
def grid8(stack4) -> GridGraph:
    return GridGraph(8, 8, stack4)


def tiny_spec(name: str = "tiny", nets: int = 100, seed: int = 7) -> SyntheticSpec:
    return SyntheticSpec(
        name=name, nx=12, ny=12, num_layers=6, num_nets=nets, seed=seed
    )


@pytest.fixture
def tiny_bench():
    """A fresh unrouted tiny benchmark per test."""
    return generate(tiny_spec())


@pytest.fixture
def prepared_bench():
    """A fresh routed + initially-assigned tiny benchmark per test."""
    return prepare(generate(tiny_spec()))
