"""Tests for the TILA baseline: tree DP, multipliers, flow legalizer, engine."""

import itertools

import numpy as np
import pytest

from repro.grid.graph import GridGraph, manhattan_path_edges
from repro.pipeline import prepare
from repro.route.net import Net, Pin
from repro.route.tree import build_topology
from repro.solver.mcmf import MinCostFlow
from repro.tila.engine import TILAConfig, TILAEngine
from repro.tila.flow import legalize_with_flow, overflowed_edges_with_critical
from repro.tila.lagrangian import MultiplierState
from repro.tila.treedp import tree_dp_assign
from repro.timing.elmore import ElmoreEngine

from tests.conftest import make_stack, tiny_spec
from repro.ispd.synthetic import generate


def branched_net():
    net = Net(0, "b", [Pin(0, 0), Pin(4, 0, capacitance=2.0), Pin(2, 2, capacitance=1.0)])
    edges = manhattan_path_edges([(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)])
    edges += manhattan_path_edges([(2, 0), (2, 1), (2, 2)])
    net.route_edges = edges
    return build_topology(net), net


class TestTreeDp:
    def test_matches_brute_force(self):
        stack = make_stack(4)
        topo, _ = branched_net()
        rng = np.random.default_rng(0)
        seg_costs = {
            (sid, l): float(rng.uniform(1, 10))
            for sid in range(topo.num_segments)
            for l in stack.layers_of(topo.segments[sid].direction)
        }
        via_w = 2.0

        def seg_cost(seg, layer):
            return seg_costs[(seg.id, layer)]

        def junction_cost(p, c, lp, lc):
            return via_w * abs(lp - lc)

        def root_cost(r, layer):
            return 0.5 * layer

        layers, cost = tree_dp_assign(topo, stack, seg_cost, junction_cost, root_cost)

        # Brute force over all combinations.
        cands = {
            sid: stack.layers_of(topo.segments[sid].direction)
            for sid in range(topo.num_segments)
        }
        best = None
        for combo in itertools.product(*cands.values()):
            assign = dict(zip(cands.keys(), combo))
            total = sum(seg_cost(topo.segments[s], l) for s, l in assign.items())
            for p, c in topo.connected_pairs():
                total += junction_cost(p, c, assign[p], assign[c])
            for r in topo.root_segments():
                total += root_cost(r, assign[r])
            if best is None or total < best:
                best = total
        assert cost == pytest.approx(best)
        # And the returned assignment realizes that cost.
        realized = sum(
            seg_cost(topo.segments[s], l) for s, l in layers.items()
        )
        for p, c in topo.connected_pairs():
            realized += junction_cost(p, c, layers[p], layers[c])
        for r in topo.root_segments():
            realized += root_cost(r, layers[r])
        assert realized == pytest.approx(best)

    def test_all_segments_assigned_legal_directions(self):
        stack = make_stack(6)
        topo, _ = branched_net()
        layers, _ = tree_dp_assign(
            topo, stack,
            lambda seg, l: float(l),
            lambda p, c, lp, lc: 0.0,
            lambda r, l: 0.0,
        )
        assert set(layers) == set(range(topo.num_segments))
        for sid, layer in layers.items():
            assert stack.direction_of(layer) is topo.segments[sid].direction


class TestMultipliers:
    def test_prices_rise_on_overflow(self):
        grid = GridGraph(6, 6, make_stack(4, tracks=1))
        for _ in range(3):
            grid.add_wire(("H", 0, 0), 1)
        state = MultiplierState(step=1.0)
        state.update_from_grid(grid, scale=1.0)
        assert state.wire_price(("H", 0, 0), 1) == pytest.approx(2.0)

    def test_prices_decay_with_slack(self):
        grid = GridGraph(6, 6, make_stack(4, tracks=2))
        state = MultiplierState(step=1.0)
        state.wire[(("H", 0, 0), 1)] = 4.0
        state.update_from_grid(grid, scale=1.0)
        assert state.wire_price(("H", 0, 0), 1) < 4.0

    def test_prices_never_negative(self):
        grid = GridGraph(6, 6, make_stack(4, tracks=4))
        state = MultiplierState(step=10.0)
        state.wire[(("H", 0, 0), 1)] = 0.1
        state.update_from_grid(grid, scale=1.0)
        assert state.wire_price(("H", 0, 0), 1) >= 0.0

    def test_initial_multiplier_used(self):
        state = MultiplierState(initial=0.7)
        assert state.wire_price(("H", 3, 3), 1) == 0.7
        assert state.via_span_price((0, 0), 1, 3) == pytest.approx(1.4)


class TestFlowLegalizer:
    def test_overflow_detection(self):
        grid = GridGraph(6, 6, make_stack(4, tracks=1))
        nets = []
        for i in range(2):
            net = Net(i, f"n{i}", [Pin(0, 0), Pin(3, 0)])
            net.route_edges = manhattan_path_edges([(x, 0) for x in range(4)])
            topo = build_topology(net)
            topo.segments[0].layer = 1
            for e in topo.segments[0].edges():
                grid.add_wire(e, 1)
            nets.append(net)
        over = overflowed_edges_with_critical(grid, nets)
        assert over
        for refs in over.values():
            assert len(refs) == 2

    def test_legalize_reduces_overflow(self):
        grid = GridGraph(6, 6, make_stack(4, tracks=1))
        engine = ElmoreEngine(grid.stack)
        nets = []
        for i in range(2):
            net = Net(i, f"n{i}", [Pin(0, 0), Pin(3, 0, capacitance=2.0)])
            net.route_edges = manhattan_path_edges([(x, 0) for x in range(4)])
            topo = build_topology(net)
            topo.segments[0].layer = 1
            from repro.route.occupancy import commit_net

            commit_net(grid, topo)
            nets.append(net)
        assert grid.total_wire_overflow() > 0
        timings = {n.id: engine.analyze(n) for n in nets}
        changed = legalize_with_flow(grid, engine, nets, timings, MultiplierState())
        assert changed >= 1
        assert grid.total_wire_overflow() == 0


class TestTilaEngine:
    def test_improves_critical_timing(self):
        bench = prepare(generate(tiny_spec()))
        report = TILAEngine(bench, TILAConfig(critical_ratio=0.05)).run()
        assert report.final_avg_tcp <= report.initial_avg_tcp
        assert report.method == "tila"
        assert report.critical_net_ids

    def test_hard_capacity_keeps_wires_legal(self):
        bench = prepare(generate(tiny_spec()))
        before = bench.grid.total_wire_overflow()
        TILAEngine(bench, TILAConfig(critical_ratio=0.05)).run()
        assert bench.grid.total_wire_overflow() <= before

    def test_non_released_nets_untouched(self):
        bench = prepare(generate(tiny_spec()))
        engine = TILAEngine(bench, TILAConfig(critical_ratio=0.03))
        report = engine.run()
        released = set(report.critical_net_ids)
        for net in bench.nets:
            if net.id not in released and net.topology is not None:
                for seg in net.topology.segments:
                    assert seg.layer > 0  # still assigned

    def test_via_model_ablation_differs_or_matches(self):
        lin = prepare(generate(tiny_spec()))
        r_lin = TILAEngine(lin, TILAConfig(critical_ratio=0.05)).run()
        ex = prepare(generate(tiny_spec()))
        r_ex = TILAEngine(
            ex, TILAConfig(critical_ratio=0.05, via_model="exact-dp")
        ).run()
        # Exact via coupling can only help the DP's own objective.
        assert r_ex.final_avg_tcp <= r_lin.final_avg_tcp * 1.05

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TILAConfig(engine="bogus")
        with pytest.raises(ValueError):
            TILAConfig(via_model="bogus")
        with pytest.raises(ValueError):
            TILAConfig(critical_ratio=0.0)
