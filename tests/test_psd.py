"""Tests for svec/smat and the PSD projection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.solver.psd import (
    entry_svec_index,
    is_psd,
    project_psd,
    smat,
    svec,
    svec_dim,
    svec_indices,
)


def random_symmetric(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return (a + a.T) / 2


class TestSvec:
    def test_dim(self):
        assert svec_dim(1) == 1
        assert svec_dim(4) == 10

    def test_roundtrip(self):
        m = random_symmetric(5, seed=1)
        assert np.allclose(smat(svec(m), 5), m)

    def test_isometry(self):
        """<A, B>_F == svec(A) . svec(B)."""
        a = random_symmetric(4, seed=2)
        b = random_symmetric(4, seed=3)
        assert np.tensordot(a, b) == pytest.approx(float(svec(a) @ svec(b)))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            svec(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            smat(np.zeros(4), 3)

    def test_entry_index_matches_layout(self):
        n = 5
        rows, cols = svec_indices(n)
        for k, (i, j) in enumerate(zip(rows, cols)):
            assert entry_svec_index(n, int(i), int(j)) == k
            assert entry_svec_index(n, int(j), int(i)) == k

    def test_entry_index_bounds(self):
        with pytest.raises(IndexError):
            entry_svec_index(3, 0, 3)


class TestProjection:
    def test_psd_input_unchanged(self):
        m = np.diag([1.0, 2.0, 0.0])
        assert np.allclose(project_psd(m), m)

    def test_negative_eigenvalues_clipped(self):
        m = np.diag([2.0, -3.0])
        p = project_psd(m)
        assert np.allclose(p, np.diag([2.0, 0.0]))

    def test_result_is_psd(self):
        m = random_symmetric(6, seed=4) - 2 * np.eye(6)
        assert is_psd(project_psd(m))

    def test_projection_is_idempotent(self):
        m = random_symmetric(5, seed=5)
        p = project_psd(m)
        assert np.allclose(project_psd(p), p, atol=1e-10)

    def test_is_psd_detects_indefinite(self):
        assert not is_psd(np.diag([1.0, -1.0]))
        assert is_psd(np.eye(3))


@settings(max_examples=40, deadline=None)
@given(
    m=arrays(
        np.float64,
        (4, 4),
        elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False),
    )
)
def test_projection_properties(m):
    sym = (m + m.T) / 2
    p = project_psd(sym)
    # PSD and never farther than the original from any PSD matrix
    assert is_psd(p, tol=1e-7)
    # Projection is the closest PSD matrix: distance to p <= distance to
    # any other PSD candidate we can easily construct (identity scaled).
    dist_p = np.linalg.norm(sym - p)
    dist_eye = np.linalg.norm(sym - np.eye(4) * max(np.trace(sym) / 4, 0.0))
    assert dist_p <= dist_eye + 1e-8


@settings(max_examples=40, deadline=None)
@given(
    v=arrays(
        np.float64,
        (svec_dim(4),),
        elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
    )
)
def test_svec_smat_inverse_property(v):
    m = smat(v, 4)
    assert np.allclose(m, m.T)
    assert np.allclose(svec(m), v)
