"""Tests for the 2-D global router."""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.graph import GridGraph, edge_endpoints
from repro.route.net import Net, Pin
from repro.route.router import GlobalRouter, RouterConfig, _extract_tree
from repro.route.tree import build_topology

from tests.conftest import make_stack


def make_grid(n=10, tracks=4):
    return GridGraph(n, n, make_stack(4, tracks=tracks))


def route_edges_connected(edges, pins):
    """All pin tiles reachable within the edge set."""
    adj = {}
    for e in edges:
        a, b = edge_endpoints(e)
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    if not adj:
        return len({p for p in pins}) <= 1
    start = pins[0]
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in adj.get(u, ()):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return all(p in seen for p in pins)


class TestPatternRouting:
    def test_two_pin_l_route(self):
        grid = make_grid()
        router = GlobalRouter(grid)
        net = Net(0, "n0", [Pin(1, 1), Pin(4, 5)])
        router.route([net])
        assert route_edges_connected(net.route_edges, net.pin_tiles)
        # Wirelength equals Manhattan distance for a clean 2-pin route.
        assert len(net.route_edges) == 3 + 4

    def test_local_net_no_edges(self):
        grid = make_grid()
        router = GlobalRouter(grid)
        net = Net(0, "local", [Pin(2, 2), Pin(2, 2, layer=3)])
        router.route([net])
        assert net.route_edges == []

    def test_straight_net(self):
        grid = make_grid()
        router = GlobalRouter(grid)
        net = Net(0, "s", [Pin(0, 3), Pin(6, 3)])
        router.route([net])
        assert len(net.route_edges) == 6
        assert all(e[0] == "H" for e in net.route_edges)

    def test_multipin_net_spans_all(self):
        grid = make_grid()
        router = GlobalRouter(grid)
        net = Net(0, "m", [Pin(0, 0), Pin(9, 0), Pin(0, 9), Pin(9, 9), Pin(5, 5)])
        router.route([net])
        assert route_edges_connected(net.route_edges, net.pin_tiles)

    def test_routes_are_topology_buildable(self):
        grid = make_grid()
        router = GlobalRouter(grid)
        nets = [
            Net(i, f"n{i}", [Pin(i % 9, 1), Pin((i * 3) % 9, 7), Pin(4, i % 9)])
            for i in range(12)
        ]
        router.route(nets)
        for net in nets:
            topo = build_topology(net)
            assert topo.num_segments >= 1


class TestCongestion:
    def test_negotiation_reduces_overflow(self):
        grid = make_grid(n=8, tracks=1)
        config = RouterConfig(rounds=4)
        router = GlobalRouter(grid, config)
        # Many nets through the same corridor.
        nets = [Net(i, f"n{i}", [Pin(0, 3), Pin(7, 3)]) for i in range(6)]
        router.route(nets)
        single_round = GlobalRouter(make_grid(n=8, tracks=1), RouterConfig(rounds=1))
        nets2 = [Net(i, f"n{i}", [Pin(0, 3), Pin(7, 3)]) for i in range(6)]
        single_round.route(nets2)
        assert router.total_overflow() <= single_round.total_overflow()

    def test_overflowed_edges_reported(self):
        grid = make_grid(n=6, tracks=1)
        router = GlobalRouter(grid, RouterConfig(rounds=1))
        nets = [Net(i, f"n{i}", [Pin(0, 2), Pin(5, 2)]) for i in range(8)]
        router.route(nets)
        assert router.total_overflow() > 0
        assert router.overflowed_edges()


class TestExtractTree:
    def test_cycle_removed(self):
        # A 2x2 cycle of edges; pins at two corners.
        edges = {("H", 0, 0), ("H", 0, 1), ("V", 0, 0), ("V", 1, 0)}
        out = _extract_tree(edges, (0, 0), {(0, 0), (1, 1)}, "t")
        assert len(out) == 3 or len(out) == 2  # spanning tree, maybe pruned
        assert route_edges_connected(out, [(0, 0), (1, 1)])

    def test_dangling_stub_pruned(self):
        edges = {("H", 0, 0), ("H", 1, 0), ("V", 1, 0)}  # stub up at (1,0)
        out = _extract_tree(edges, (0, 0), {(0, 0), (2, 0)}, "t")
        assert ("V", 1, 0) not in out

    def test_unreachable_pin_raises(self):
        edges = {("H", 0, 0)}
        with pytest.raises(RuntimeError):
            _extract_tree(edges, (0, 0), {(0, 0), (5, 5)}, "t")

    def test_determinism_across_hash_seeds(self):
        """Three interpreters with different PYTHONHASHSEEDs emit the
        identical edge *order*.

        ``Edge2D`` starts with a "V"/"H" string, so iterating the input
        set directly would vary with hash randomization — and the emitted
        order decides segment enumeration, hence the assignment digest
        the fleet tier compares across shard processes.
        """
        script = (
            "from repro.route.router import _extract_tree\n"
            # Overlapping cyclic union: two 2x2 cycles sharing a corner,
            # plus a dangling stub — exercises BFS, cycle-break, pruning.
            "edges = {('H', 0, 0), ('H', 0, 1), ('V', 0, 0), ('V', 1, 0),\n"
            "         ('H', 1, 1), ('H', 1, 2), ('V', 1, 1), ('V', 2, 1),\n"
            "         ('H', 2, 0)}\n"
            "print(_extract_tree(edges, (0, 0), {(0, 0), (2, 2)}, 't'))\n"
        )
        outputs = []
        for seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), "..", "src")]
                + env.get("PYTHONPATH", "").split(os.pathsep)
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1] == outputs[2]


class TestMonotoneCandidates:
    def test_candidates_are_valid_paths(self):
        grid = make_grid()
        router = GlobalRouter(grid)
        for a, b in [((0, 0), (3, 2)), ((5, 5), (2, 1)), ((0, 4), (4, 4))]:
            for path in router._monotone_candidates(a, b):
                assert path[0] == a and path[-1] == b
                for u, v in zip(path, path[1:]):
                    assert abs(u[0] - v[0]) + abs(u[1] - v[1]) == 1

    def test_l_and_z_counts(self):
        grid = make_grid()
        router = GlobalRouter(grid)
        cands = router._monotone_candidates((0, 0), (3, 3))
        # 4 vertical-jog paths (incl. both Ls) + 2 interior horizontal jogs
        assert len(cands) == 6


@settings(max_examples=20, deadline=None)
@given(
    pins=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=2,
        max_size=6,
        unique=True,
    )
)
def test_router_always_produces_buildable_trees(pins):
    grid = make_grid(n=8)
    router = GlobalRouter(grid)
    net = Net(0, "p", [Pin(x, y) for x, y in pins])
    router.route([net])
    topo = build_topology(net)
    covered = set()
    for seg in topo.segments:
        covered.update(seg.tiles())
    if topo.segments:
        assert all(t in covered for t in net.pin_tiles)
