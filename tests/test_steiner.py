"""Tests for the rectilinear Steiner topology builder."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.route.steiner import (
    manhattan,
    mst_connections,
    steiner_tree_edges,
    tree_cost,
)


def as_graph(connections):
    g = nx.Graph()
    for a, b in connections:
        g.add_edge(a, b)
    return g


class TestMst:
    def test_empty_and_single(self):
        assert mst_connections([]) == []
        assert mst_connections([(0, 0)]) == []

    def test_two_points(self):
        conns = mst_connections([(0, 0), (3, 4)])
        assert conns == [((0, 0), (3, 4))]
        assert tree_cost(conns) == 7

    def test_collinear_chain(self):
        pts = [(0, 0), (2, 0), (1, 0)]
        conns = mst_connections(pts)
        assert tree_cost(conns) == 2

    def test_duplicates_removed(self):
        conns = mst_connections([(0, 0), (0, 0), (1, 0)])
        assert len(conns) == 1

    def test_known_square(self):
        pts = [(0, 0), (0, 2), (2, 0), (2, 2)]
        conns = mst_connections(pts)
        assert tree_cost(conns) == 6  # 3 edges of length 2

    def test_spans_all_points(self):
        pts = [(0, 0), (5, 1), (2, 7), (9, 9), (4, 4)]
        g = as_graph(mst_connections(pts))
        assert set(g.nodes) == set(pts)
        assert nx.is_connected(g)
        assert g.number_of_edges() == len(pts) - 1


class TestSteinerRefinement:
    def test_cross_benefits_from_steiner_point(self):
        # Plus-shaped pins: the centre Steiner point saves wirelength.
        pts = [(1, 0), (0, 1), (2, 1), (1, 2)]
        mst = tree_cost(mst_connections(pts))
        refined = steiner_tree_edges(pts)
        assert tree_cost(refined) < mst
        assert tree_cost(refined) == 4

    def test_refined_tree_still_spans_pins(self):
        pts = [(0, 0), (4, 0), (2, 3), (0, 4), (4, 4)]
        g = as_graph(steiner_tree_edges(pts))
        for p in pts:
            assert p in g.nodes
        assert nx.is_connected(g)

    def test_large_nets_skip_refinement(self):
        pts = [(i, i % 5) for i in range(20)]
        refined = steiner_tree_edges(pts, max_refine_points=12)
        assert tree_cost(refined) == tree_cost(mst_connections(pts))

    def test_refine_flag_off(self):
        pts = [(1, 0), (0, 1), (2, 1), (1, 2)]
        assert tree_cost(steiner_tree_edges(pts, refine=False)) == tree_cost(
            mst_connections(pts)
        )


@settings(max_examples=50, deadline=None)
@given(
    pts=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=2,
        max_size=9,
        unique=True,
    )
)
def test_steiner_tree_properties(pts):
    """Spanning, acyclic, and never worse than the MST."""
    conns = steiner_tree_edges(pts)
    g = as_graph(conns)
    for p in pts:
        assert p in g.nodes
    assert nx.is_connected(g)
    assert g.number_of_edges() == g.number_of_nodes() - 1  # a tree
    assert tree_cost(conns) <= tree_cost(mst_connections(pts))


@settings(max_examples=30, deadline=None)
@given(
    a=st.tuples(st.integers(0, 50), st.integers(0, 50)),
    b=st.tuples(st.integers(0, 50), st.integers(0, 50)),
)
def test_manhattan_metric(a, b):
    assert manhattan(a, b) == manhattan(b, a) >= 0
    assert manhattan(a, a) == 0
