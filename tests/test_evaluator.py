"""Tests for the contest-style solution evaluator."""

import pytest

from repro.ispd.evaluator import evaluate_solution
from repro.ispd.routes import write_routes
from repro.ispd.synthetic import generate
from repro.pipeline import prepare, run_method

from tests.conftest import tiny_spec


class TestEvaluator:
    def test_prepared_solution_is_legal(self):
        bench = prepare(generate(tiny_spec()))
        result = evaluate_solution(bench)
        assert result.legal, result.summary()
        assert result.wirelength == bench.grid.total_wirelength()
        assert result.vias == bench.grid.total_vias()

    def test_optimized_solution_stays_legal(self):
        bench = prepare(generate(tiny_spec()))
        run_method(bench, "sdp", critical_ratio=0.05)
        result = evaluate_solution(bench)
        assert result.legal
        assert result.wire_overflow == 0

    def test_routes_file_evaluation_matches_in_memory(self):
        bench = prepare(generate(tiny_spec()))
        direct = evaluate_solution(bench)
        text = write_routes(bench)
        fresh = generate(tiny_spec())
        via_file = evaluate_solution(fresh, routes=text)
        assert via_file.wirelength == direct.wirelength
        assert via_file.vias == direct.vias
        assert via_file.legal == direct.legal

    def test_total_cost_weights_vias(self):
        bench = prepare(generate(tiny_spec()))
        cheap = evaluate_solution(bench, via_cost=0.0)
        pricey = evaluate_solution(bench, via_cost=3.0)
        assert pricey.total_cost == cheap.total_cost + 3.0 * pricey.vias

    def test_unrouted_net_rejected(self):
        bench = generate(tiny_spec())
        with pytest.raises(ValueError):
            evaluate_solution(bench)

    def test_grid_restored_after_evaluation(self):
        bench = prepare(generate(tiny_spec()))
        grid_before = bench.grid
        evaluate_solution(bench)
        assert bench.grid is grid_before

    def test_summary_text(self):
        bench = prepare(generate(tiny_spec()))
        text = evaluate_solution(bench).summary()
        assert "LEGAL" in text and "wirelength" in text
